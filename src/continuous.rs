//! Continuous-query wiring across crate boundaries: driving designer
//! triggers from standing-view changelogs.
//!
//! `gamedb-content`'s `stat_below` triggers classically require the
//! engine to poll every watched entity every tick and synthesize
//! `StatChanged` events from before/after values. With the core's
//! continuous-query subsystem the polling disappears: each `stat_below`
//! trigger becomes a standing view over its threshold predicate
//! (`component < threshold`), and a downward crossing is precisely an
//! `entered` row in that view's per-tick changelog. The views fold the
//! world's unified change stream (`gamedb_core::change`) — the same
//! ordered record sequence the WAL taps for durability and the
//! replicator taps for shipping — so the watcher rides every write
//! path, scripted ticks and effect batches included, for free.
//!
//! Semantics note: the view defines a crossing as *the predicate
//! becoming true for a row*. For writes on existing entities this is
//! identical to the polling driver; an entity **spawned already below
//! the threshold** additionally counts as a crossing here (it entered
//! the view), where a poller that never saw a pre-spawn value would stay
//! silent. That is the set-oriented reading the paper advocates, and
//! [`ThresholdWatcher::pump`]'s equivalence test pins down both halves.

use gamedb_content::{Action, CmpOp, EventKind, GameEvent, TriggerSet, Value};
use gamedb_core::{EntityId, Query, ViewId, World};

/// One standing view per `stat_below` trigger, pumping changelog entries
/// into the trigger set.
#[derive(Debug, Clone)]
pub struct ThresholdWatcher {
    /// `(trigger id, view, component, threshold)` per watched trigger.
    entries: Vec<(String, ViewId, String, f64)>,
}

impl ThresholdWatcher {
    /// Register a standing `component < threshold` view for every
    /// `stat_below` trigger in `triggers`. Entities already below a
    /// threshold at registration are part of the initial
    /// materialization, not crossings — matching a poller that starts
    /// observing now.
    pub fn register(world: &mut World, triggers: &TriggerSet) -> Self {
        Self::build(world, triggers, false)
    }

    /// [`ThresholdWatcher::register`] for a world recovered from the
    /// persistence layer: the standing views survived the crash (the
    /// snapshot/WAL catalog re-materializes them with changelogs
    /// re-anchored at the recovery tick), so the watcher **re-attaches**
    /// to each existing view instead of registering duplicates. Entities
    /// already below a threshold at recovery are materialized rows, not
    /// crossings — exactly the pre-crash subscription state, so nothing
    /// double-fires on restart. Triggers whose views did not survive
    /// (e.g. first boot) register fresh ones.
    pub fn reattach(world: &mut World, triggers: &TriggerSet) -> Self {
        Self::build(world, triggers, true)
    }

    fn build(world: &mut World, triggers: &TriggerSet, adopt: bool) -> Self {
        let mut entries: Vec<(String, ViewId, String, f64)> = Vec::new();
        for t in triggers.iter() {
            if let EventKind::StatBelow {
                component,
                threshold,
            } = &t.event
            {
                let query = Query::select().filter(
                    component.clone(),
                    CmpOp::Lt,
                    Value::Float(*threshold as f32),
                );
                // Fresh registrations go through the differential view
                // engine: the threshold predicate lowers into a
                // single-operator plan (Scan with the filter fused in),
                // maintained by the same delta rules as joins and
                // aggregates. Adopt each recovered view at most once:
                // two triggers with the same (component, threshold)
                // registered two views on first boot, and each must
                // reclaim its own — sharing one would leave the second
                // trigger reading an already-taken changelog (silent
                // starvation) and the other recovered view orphaned.
                // Worlds recovered from pre-operator-tree snapshots
                // carry legacy single-table views instead; those adopt
                // too (pump reads both kinds through the same
                // changelog API).
                let plan = query.clone().into_plan();
                let view = adopt
                    .then(|| {
                        let used =
                            |v: ViewId| entries.iter().any(|(_, u, _, _)| *u == v);
                        world
                            .plan_view_ids()
                            .into_iter()
                            .find(|&v| world.view_plan(v) == Some(&plan) && !used(v))
                            .or_else(|| {
                                world.view_ids().into_iter().find(|&v| {
                                    world.view_query(v) == &query && !used(v)
                                })
                            })
                    })
                    .flatten()
                    .unwrap_or_else(|| {
                        world
                            .register_view_plan(plan)
                            .expect("a bare scan plan is always valid")
                    });
                entries.push((t.id.clone(), view, component.clone(), *threshold));
            }
        }
        ThresholdWatcher { entries }
    }

    /// Number of watched triggers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no `stat_below` triggers were found.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold pending deltas, then fire every watched trigger once per
    /// entity that crossed below its threshold since the last pump.
    /// Returns `(entity, trigger id, action)` for every requested
    /// action, in (view registration, entity id) order — deterministic
    /// because changelogs are.
    ///
    /// Crossings resolve at pump cadence: an entity that entered the
    /// view but left it again (recovered, lost the component, or
    /// despawned) before the pump is skipped — there is nothing sane to
    /// act on. The standing view *is* the event matcher, so the
    /// synthesized `StatChanged` payload is constructed to always pass
    /// the trigger's own crossing test (its guards and once-bookkeeping
    /// still apply); membership is decided in the engine's `f32` value
    /// domain, so a threshold that is not `f32`-representable resolves
    /// to its nearest-`f32` boundary rather than the trigger's `f64`
    /// reading of it.
    pub fn pump(
        &self,
        world: &mut World,
        triggers: &mut TriggerSet,
    ) -> Vec<(EntityId, String, Action)> {
        world.refresh_views();
        let mut out = Vec::new();
        for (trigger_id, view, component, threshold) in &self.entries {
            let log = world.take_view_changelog(*view);
            for &e in &log.entered {
                if !world.view_contains(*view, e) {
                    // entered and left again between pumps (despawn,
                    // recovery, component removal): nothing to fire on
                    continue;
                }
                let event = GameEvent::StatChanged {
                    component: component.clone(),
                    old: *threshold,
                    new: f64::NEG_INFINITY,
                };
                for (id, action) in triggers.fire_id(trigger_id, &event, &world.view(e)) {
                    out.push((e, id, action));
                }
            }
        }
        out
    }

    /// Drop the underlying views.
    pub fn release(self, world: &mut World) {
        for (_, view, _, _) in self.entries {
            world.drop_view(view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::{gdml, ComponentView, ValueType};
    use gamedb_spatial::Vec2;
    use std::collections::HashMap;

    const TRIGGERS: &str = r#"
      <triggers>
        <trigger id="low_hp" event="stat_below" component="hp" threshold="20">
          <action kind="run_script" script="flee"/>
        </trigger>
        <trigger id="critical_hp" event="stat_below" component="hp" threshold="5">
          <action kind="emit" event="last_stand"/>
        </trigger>
        <trigger id="oom" event="stat_below" component="mana" threshold="10">
          <when component="class" op="eq" value="mage"/>
          <action kind="emit" event="drink_potion"/>
        </trigger>
        <trigger id="door" event="enter_area" x="0" y="0" w="5" h="5">
          <action kind="emit" event="creak"/>
        </trigger>
      </triggers>"#;

    fn trigger_set() -> TriggerSet {
        TriggerSet::from_gdml(&gdml::parse(TRIGGERS).unwrap()).unwrap()
    }

    fn arena() -> (World, Vec<gamedb_core::EntityId>) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("mana", ValueType::Float).unwrap();
        w.define_component("class", ValueType::Str).unwrap();
        let mut ids = Vec::new();
        for i in 0..4 {
            let e = w.spawn_at(Vec2::new(i as f32 * 10.0, 0.0));
            w.set_f32(e, "hp", 100.0).unwrap();
            w.set_f32(e, "mana", 50.0).unwrap();
            w.set(
                e,
                "class",
                Value::Str(if i % 2 == 0 { "mage" } else { "rogue" }.into()),
            )
            .unwrap();
            ids.push(e);
        }
        (w, ids)
    }

    /// The classical polling driver: remember every entity's watched
    /// values, and after each tick synthesize `StatChanged` per entity
    /// whose value moved, addressed to each trigger individually (so
    /// both drivers fan out identically).
    struct Poller {
        last: HashMap<(gamedb_core::EntityId, String), f64>,
    }

    impl Poller {
        fn new() -> Self {
            Poller { last: HashMap::new() }
        }

        fn prime(&mut self, world: &World) {
            for e in world.entities() {
                for comp in ["hp", "mana"] {
                    if let Some(v) = world.get_number(e, comp) {
                        self.last.insert((e, comp.to_string()), v);
                    }
                }
            }
        }

        fn poll(
            &mut self,
            world: &World,
            triggers: &mut TriggerSet,
        ) -> Vec<(gamedb_core::EntityId, String, Action)> {
            let watched: Vec<String> = triggers
                .iter()
                .filter_map(|t| match &t.event {
                    EventKind::StatBelow { .. } => Some(t.id.clone()),
                    _ => None,
                })
                .collect();
            let mut out = Vec::new();
            for e in world.entities() {
                for comp in ["hp", "mana"] {
                    let Some(new) = world.get_number(e, comp) else { continue };
                    let old = self
                        .last
                        .insert((e, comp.to_string()), new)
                        .unwrap_or(new);
                    if old == new {
                        continue;
                    }
                    let event = GameEvent::StatChanged {
                        component: comp.to_string(),
                        old,
                        new,
                    };
                    for tid in &watched {
                        for (id, a) in triggers.fire_id(tid, &event, &world.view(e)) {
                            out.push((e, id, a));
                        }
                    }
                }
            }
            self.last.retain(|(e, _), _| world.is_live(*e));
            out
        }
    }

    fn fired_keys(fired: &[(gamedb_core::EntityId, String, Action)]) -> Vec<(gamedb_core::EntityId, String)> {
        let mut keys: Vec<_> = fired.iter().map(|(e, id, _)| (*e, id.clone())).collect();
        keys.sort();
        keys
    }

    #[test]
    fn watcher_fires_on_downward_crossings_only() {
        let (mut w, ids) = arena();
        let mut triggers = trigger_set();
        let watcher = ThresholdWatcher::register(&mut w, &triggers);
        assert_eq!(watcher.len(), 3, "three stat_below triggers");

        // drop ids[0] across both hp thresholds in one tick
        w.set_f32(ids[0], "hp", 2.0).unwrap();
        // ids[1] crosses only the outer threshold
        w.set_f32(ids[1], "hp", 15.0).unwrap();
        // ids[2] (a mage) runs out of mana
        w.set_f32(ids[2], "mana", 3.0).unwrap();
        // ids[3] (a rogue) also runs dry — the class guard must block it
        w.set_f32(ids[3], "mana", 3.0).unwrap();
        let fired = watcher.pump(&mut w, &mut triggers);
        assert_eq!(
            fired_keys(&fired),
            vec![
                (ids[0], "critical_hp".to_string()),
                (ids[0], "low_hp".to_string()),
                (ids[1], "low_hp".to_string()),
                (ids[2], "oom".to_string()),
            ]
        );

        // already below: further drops fire nothing
        w.set_f32(ids[0], "hp", 1.0).unwrap();
        assert!(watcher.pump(&mut w, &mut triggers).is_empty());

        // recover above, then cross again: fires again
        w.set_f32(ids[0], "hp", 50.0).unwrap();
        watcher.pump(&mut w, &mut triggers);
        w.set_f32(ids[0], "hp", 10.0).unwrap();
        let fired = watcher.pump(&mut w, &mut triggers);
        assert_eq!(fired_keys(&fired), vec![(ids[0], "low_hp".to_string())]);
        watcher.release(&mut w);
    }

    /// ISSUE-2 satellite: the changelog-driven watcher fires exactly the
    /// (entity, trigger) pairs the per-entity polling driver fires, tick
    /// for tick, over a scripted workload of writes on live entities.
    #[test]
    fn watcher_equals_polling_driver() {
        let (mut w_view, ids_v) = arena();
        let (mut w_poll, ids_p) = arena();
        let mut trig_view = trigger_set();
        let mut trig_poll = trigger_set();
        let watcher = ThresholdWatcher::register(&mut w_view, &trig_view);
        let mut poller = Poller::new();
        poller.prime(&w_poll);

        let script: Vec<Vec<(usize, &str, f32)>> = vec![
            vec![(0, "hp", 18.0), (1, "mana", 5.0)],
            vec![(0, "hp", 3.0)],          // second threshold
            vec![(0, "hp", 3.0)],          // no change: silence
            vec![(2, "mana", 9.0)],        // mage oom
            vec![(0, "hp", 90.0)],         // recovery: silence
            vec![(0, "hp", 19.5), (3, "hp", 1.0)],
        ];
        for (tick, writes) in script.iter().enumerate() {
            for &(i, comp, v) in writes {
                w_view.set_f32(ids_v[i], comp, v).unwrap();
                w_poll.set_f32(ids_p[i], comp, v).unwrap();
            }
            let from_view = fired_keys(&watcher.pump(&mut w_view, &mut trig_view));
            let from_poll = fired_keys(&poller.poll(&w_poll, &mut trig_poll));
            assert_eq!(from_view, from_poll, "tick {tick}");
        }
    }

    #[test]
    fn spawning_below_threshold_counts_as_entering() {
        let (mut w, _) = arena();
        let mut triggers = trigger_set();
        let watcher = ThresholdWatcher::register(&mut w, &triggers);
        let newborn = w.spawn_at(Vec2::ZERO);
        w.set_f32(newborn, "hp", 1.0).unwrap();
        let fired = watcher.pump(&mut w, &mut triggers);
        assert_eq!(
            fired_keys(&fired),
            vec![
                (newborn, "critical_hp".to_string()),
                (newborn, "low_hp".to_string()),
            ],
            "view semantics: the predicate became true for a new row"
        );
    }

    #[test]
    fn crossings_resolved_by_pump_time_do_not_fire() {
        let (mut w, ids) = arena();
        let mut triggers = trigger_set();
        let watcher = ThresholdWatcher::register(&mut w, &triggers);
        // crossed below, then despawned before the pump
        w.set_f32(ids[0], "hp", 1.0).unwrap();
        w.refresh_views();
        w.despawn(ids[0]);
        // crossed below, then recovered before the pump
        w.set_f32(ids[1], "hp", 1.0).unwrap();
        w.refresh_views();
        w.set_f32(ids[1], "hp", 80.0).unwrap();
        assert!(
            watcher.pump(&mut w, &mut triggers).is_empty(),
            "dead or recovered entities must not fire"
        );
    }

    #[test]
    fn reattach_gives_identical_triggers_their_own_views() {
        const DUPES: &str = r#"
          <triggers>
            <trigger id="flee" event="stat_below" component="hp" threshold="20">
              <action kind="emit" event="flee"/>
            </trigger>
            <trigger id="alarm" event="stat_below" component="hp" threshold="20">
              <action kind="emit" event="alarm"/>
            </trigger>
          </triggers>"#;
        let dupes = || TriggerSet::from_gdml(&gdml::parse(DUPES).unwrap()).unwrap();
        let (mut w, ids) = arena();
        let trig = dupes();
        let first_boot = ThresholdWatcher::register(&mut w, &trig);
        assert_eq!(w.plan_view_ids().len(), 2, "one operator view per trigger");
        drop(first_boot); // "crash": both views survive in the world

        // restart: each trigger must reclaim its OWN view — sharing one
        // would hand the second trigger an already-taken changelog
        let mut trig2 = dupes();
        let watcher = ThresholdWatcher::reattach(&mut w, &trig2);
        assert_eq!(w.plan_view_ids().len(), 2, "adopted, not re-registered");
        w.set_f32(ids[0], "hp", 5.0).unwrap();
        let fired = watcher.pump(&mut w, &mut trig2);
        assert_eq!(
            fired_keys(&fired),
            vec![
                (ids[0], "alarm".to_string()),
                (ids[0], "flee".to_string()),
            ],
            "both identical-threshold triggers fire after reattach"
        );
        let _ = trig;
    }

    #[test]
    fn preexisting_rows_are_not_crossings() {
        let (mut w, ids) = arena();
        w.set_f32(ids[0], "hp", 1.0).unwrap();
        let mut triggers = trigger_set();
        // registered after the drop: ids[0] is initial materialization
        let watcher = ThresholdWatcher::register(&mut w, &triggers);
        assert!(watcher.pump(&mut w, &mut triggers).is_empty());
    }

    #[test]
    fn world_entity_view_feeds_guards() {
        // the `oom` guard reads `class` through the world's ComponentView
        let (w, ids) = arena();
        assert_eq!(w.view(ids[0]).get("class"), Some(Value::Str("mage".into())));
    }
}
