//! # gamedb — database technology for computer games
//!
//! Umbrella crate re-exporting every subsystem of this workspace, a full
//! Rust implementation of the systems surveyed in *Database Research in
//! Computer Games* (Demers, Gehrke, Koch, Sowell, White — SIGMOD 2009).
//!
//! * [`content`] — data-driven design: GDML markup, entity templates,
//!   triggers, UI specs, expansion-pack patches.
//! * [`script`] — GSL: the designer scripting language with a restricted
//!   level, an AST optimizer, and a set-at-a-time compiler.
//! * [`spatial`] — grid / BSP / quadtree / octree indices and annotated
//!   navigation meshes.
//! * [`core`] — the world database: columnar components, declarative
//!   queries + aggregates, a cost-based planner, state–effect ticks.
//! * [`sync`] — MMO consistency: action transactions, 2PL / OCC /
//!   causality-bubble executors, shard placement, cluster execution,
//!   aggro management, replication, exploit auditing.
//! * [`persist`] — the engineering layer: snapshots, WAL, intelligent
//!   checkpointing, incremental deltas, crash recovery, schema
//!   migration.
//! * [`metrics`] — the observability surface: lock-cheap counters,
//!   gauges, and histograms every subsystem reports through when a
//!   [`metrics::MetricsRegistry`] is attached (`World::attach_metrics`,
//!   `WalStore::attach_metrics`, …), with mergeable snapshots and text
//!   / JSON export.
//! * [`continuous`] — cross-crate continuous-query wiring: designer
//!   `stat_below` triggers driven by standing-view changelogs instead of
//!   per-entity polling ([`ThresholdWatcher`]).
//!
//! See the repository's `README.md` for the architecture diagram,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-claim-vs-measured record (experiments E1–E14).
//!
//! ```
//! use gamedb::core::World;
//! use gamedb::spatial::Vec2;
//!
//! let mut world = World::new();
//! let hero = world.spawn_at(Vec2::new(1.0, 2.0));
//! assert_eq!(world.pos(hero), Some(Vec2::new(1.0, 2.0)));
//! ```

pub mod continuous;

pub use continuous::ThresholdWatcher;
pub use gamedb_content as content;
pub use gamedb_core as core;
pub use gamedb_metrics as metrics;
pub use gamedb_persist as persist;
pub use gamedb_script as script;
pub use gamedb_spatial as spatial;
pub use gamedb_sync as sync;
