//! End-to-end async durability: the real background-writer [`WalStore`]
//! feeding a `Strict` replicator that gates on the store's durable
//! watermark. The loop a production shard runs: mutate, commit
//! (enqueue-and-return), ship to clients only what the WAL writer has
//! already made durable — so no replica ever observes state a primary
//! crash could un-happen — then prove it by crashing.

use gamedb::content::{Value, ValueType};
use gamedb::core::{DurabilityWatermark, World};
use gamedb::persist::{temp_dir, Backend, FlushPolicy, WalStore};
use gamedb::spatial::Vec2;
use gamedb::sync::{ConsistencyLevel, Replica, Replicator};

fn shard(label: &str, policy: FlushPolicy) -> WalStore {
    let mut world = World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    let backend = Backend::open(temp_dir(label)).unwrap();
    WalStore::new_async(world, backend, policy, 64).unwrap()
}

/// A Strict replicator never ships past the durable watermark: a
/// refused tick ships nothing, a drained pipeline ships everything —
/// and what the client saw is exactly what recovery hands back.
#[test]
fn strict_replication_gates_on_the_real_walstore_watermark() {
    // a policy lazy enough that nothing flushes until someone waits:
    // the unacked window is deterministic in this test
    let mut store = shard("async-e2e-strict", FlushPolicy::flush_every(512, 10_000));
    let mut rep = Replicator::new(ConsistencyLevel::Strict);
    rep.attach_stream(store.world_mut());
    let mut client = Replica::default();

    // prime the replica from the (empty) durable state
    let mark = store.snapshot_watermark();
    assert!(rep.sync_stream_durable(store.world_mut(), &mut client, &mark));

    // mutate + commit: enqueued, but the writer has no reason to flush
    let e = store.world_mut().spawn_at(Vec2::new(1.0, 2.0));
    store.world_mut().set(e, "hp", Value::Float(42.0)).unwrap();
    store.commit().unwrap();
    let mark = store.snapshot_watermark();
    assert!(!mark.is_drained(), "commit must not have waited on a flush");
    assert!(
        !rep.sync_stream_durable(store.world_mut(), &mut client, &mark),
        "Strict must refuse while commits sit behind the writer"
    );
    assert_eq!(client.pos(e), None, "a refused tick ships nothing");

    // ack-track: drain the writer, then the same tick ships
    store.wait_durable(store.last_enqueued()).unwrap();
    let mark = store.snapshot_watermark();
    assert!(mark.is_drained());
    assert_eq!(store.unacked(), 0);
    assert!(rep.sync_stream_durable(store.world_mut(), &mut client, &mark));
    assert_eq!(client.pos(e), Some((1.0, 2.0)));

    // everything the client observed survives the crash — the gating
    // invariant, closed end to end
    let (recovered, _) = store.crash_and_recover().unwrap();
    assert_eq!(recovered.world().get_f32(e, "hp"), Some(42.0));
    let p = recovered.world().pos(e).unwrap();
    assert_eq!((p.x, p.y), (1.0, 2.0));
}

/// The weaker levels ship through the same call without gating — the
/// durability pipeline catches up underneath, and a later crash rolls
/// the *replica* ahead of the primary only by state the level already
/// declared loss-tolerant.
#[test]
fn coarse_epoch_ships_ahead_of_the_watermark() {
    let mut store = shard("async-e2e-coarse", FlushPolicy::flush_every(512, 10_000));
    let mut rep = Replicator::new(ConsistencyLevel::CoarseEpoch { pos_period: 1 });
    rep.attach_stream(store.world_mut());
    let mut client = Replica::default();

    let e = store.world_mut().spawn_at(Vec2::new(3.0, 4.0));
    store.commit().unwrap();
    let mark = store.snapshot_watermark();
    assert!(!mark.is_drained());
    assert!(
        rep.sync_stream_durable(store.world_mut(), &mut client, &mark),
        "CoarseEpoch ships regardless of the watermark"
    );
    assert_eq!(client.pos(e), Some((3.0, 4.0)));
}
