//! ISSUE-4 regression: the durability hole is closed.
//!
//! Before the unified change pipeline, `WalStore` mirrored the `World`
//! write API method-by-method; any mutation that bypassed the mirror —
//! most notably a whole `ScriptEngine::tick`, which applies a merged
//! effect batch straight to `&mut World` — was **silently not durable**
//! (there was no API through which it could be). With durability as a
//! change-stream tap, scripted ticks, effect batches, and executor
//! ticks against `WalStore::world_mut()` all survive
//! `crash_and_recover` bit-identically after a single `commit()`.

use gamedb::content::{CmpOp, Value, ValueType};
use gamedb::core::{IndexKind, Query};
use gamedb::persist::{temp_dir, Backend, WalStore};
use gamedb::script::{Level, ScriptEngine};
use gamedb::spatial::Vec2;

/// The headline regression: a scripted tick against a WAL-backed world
/// is durable. On main-before-this-PR the mutation path simply did not
/// exist in the store's API — scripts ran against a world reference and
/// the log never heard about it.
#[test]
fn script_engine_tick_survives_crash_bit_identically() {
    let mut world = gamedb::core::World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    world.define_component("mana", ValueType::Float).unwrap();

    let mut engine = ScriptEngine::new(Level::Full);
    engine.ensure_binding_component(&mut world);
    engine
        .load("regen", "self.hp += 5; self.mana -= 1;", &world)
        .unwrap();
    engine
        .load("drain", "foreach within (10) { other.hp -= 2; }", &world)
        .unwrap();

    let backend = Backend::open(temp_dir("pipeline-script-tick")).unwrap();
    let mut store = WalStore::new(world, backend, 1).unwrap();

    // bind entities through the same tap-covered surface
    let a = store.world_mut().spawn_at(Vec2::new(0.0, 0.0));
    let b = store.world_mut().spawn_at(Vec2::new(3.0, 0.0));
    let c = store.world_mut().spawn_at(Vec2::new(100.0, 0.0));
    for id in [a, b, c] {
        store.world_mut().set(id, "hp", Value::Float(50.0)).unwrap();
        store
            .world_mut()
            .set(id, "mana", Value::Float(20.0))
            .unwrap();
    }
    engine.bind(store.world_mut(), a, "regen").unwrap();
    engine.bind(store.world_mut(), b, "drain").unwrap();
    store.commit().unwrap();

    // derived state rides the same stream: index + standing view
    store.world_mut().create_index("hp", IndexKind::Sorted).unwrap();
    let wounded = store
        .ensure_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(49.0)))
        .unwrap();
    store.commit().unwrap();

    // several scripted ticks, each made durable by one commit
    for _ in 0..5 {
        engine.tick(store.world_mut()).unwrap();
        let t = store.world().tick();
        store.world_mut().advance_tick_to(t + 1);
        store.commit().unwrap();
    }
    // a's regen (+5) and b's drain (−2) both hit a every tick; b runs
    // drain only (no self-effect), c is out of range of everything
    assert_eq!(store.world().get_f32(a, "hp"), Some(65.0));
    assert_eq!(store.world().get_f32(a, "mana"), Some(15.0));
    assert_eq!(store.world().get_f32(b, "hp"), Some(50.0));
    assert_eq!(store.world().get_f32(c, "hp"), Some(50.0), "c out of range");

    let live_rows = store.world().rows();
    let live_tick = store.world().tick();
    let live_catalog = store.world().export_catalog();
    let live_wounded = store.world().view_rows(wounded).to_vec();

    let (recovered, _) = store.crash_and_recover().unwrap();
    let w = recovered.world();
    assert_eq!(w.rows(), live_rows, "rows recover bit-identically");
    assert_eq!(w.tick(), live_tick, "tick counter recovers");
    assert_eq!(w.export_catalog(), live_catalog, "catalog recovers");
    assert!(w.has_view(wounded), "pre-crash view handle resolves");
    assert_eq!(w.view_rows(wounded), live_wounded.as_slice());
    assert_eq!(
        w.view_rows(wounded),
        w.view_query(wounded).run_scan(w),
        "recovered view equals its scan oracle"
    );
    // the rebuilt index answers probes exactly
    let mut probe = vec![];
    assert!(w.index_probe("hp", CmpOp::Lt, &Value::Float(49.0), &mut probe));
    assert_eq!(
        probe,
        Query::select()
            .filter("hp", CmpOp::Lt, Value::Float(49.0))
            .run_scan(w)
    );
}

/// Un-committed scripted mutation is lost by a crash — the commit call
/// is the durability boundary, not a formality.
#[test]
fn uncommitted_script_tick_is_rolled_back() {
    let mut world = gamedb::core::World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    let mut engine = ScriptEngine::new(Level::Restricted);
    engine.ensure_binding_component(&mut world);
    engine.load("regen", "self.hp += 5;", &world).unwrap();

    let backend = Backend::open(temp_dir("pipeline-uncommitted")).unwrap();
    let mut store = WalStore::new(world, backend, 1).unwrap();
    let e = store.world_mut().spawn_at(Vec2::ZERO);
    store.world_mut().set(e, "hp", Value::Float(10.0)).unwrap();
    engine.bind(store.world_mut(), e, "regen").unwrap();
    store.commit().unwrap();

    engine.tick(store.world_mut()).unwrap();
    assert_eq!(store.world().get_f32(e, "hp"), Some(15.0));
    assert!(store.uncommitted() > 0);
    // no commit: the tick vanishes with the crash
    let (recovered, _) = store.crash_and_recover().unwrap();
    assert_eq!(recovered.world().get_f32(e, "hp"), Some(10.0));
}
