//! Cross-crate recovery pipeline: after a crash, the persistence layer
//! hands back a world whose catalog — secondary indexes and standing
//! views — survived, and every subscriber class (designer-trigger
//! watcher, exploit auditor, aggro candidate view, interest-bubble
//! replicator) re-attaches to its recovered view instead of registering
//! a duplicate or silently losing its subscription.

use gamedb::content::{gdml, CmpOp, TriggerSet, Value, ValueType};
use gamedb::core::{IndexKind, Query, World};
use gamedb::persist::{decode, encode, temp_dir, Backend, WalStore};
use gamedb::spatial::Vec2;
use gamedb::sync::{Auditor, CandidateView, ConsistencyLevel, Interest, Replica, Replicator};
use gamedb::ThresholdWatcher;

fn triggers() -> TriggerSet {
    TriggerSet::from_gdml(
        &gdml::parse(
            r#"<triggers>
                 <trigger id="low_hp" event="stat_below" component="hp" threshold="20">
                   <action kind="emit" event="flee"/>
                 </trigger>
               </triggers>"#,
        )
        .unwrap(),
    )
    .unwrap()
}

/// The watcher's standing views survive WAL recovery; a re-attached
/// watcher neither double-fires pre-crash crossings nor misses new ones,
/// and the recovered tick counter keeps crossing bookkeeping coherent.
#[test]
fn threshold_watcher_survives_crash_without_refiring() {
    let mut world = World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    let mut trig = triggers();
    let backend = Backend::open(temp_dir("recovery-watcher")).unwrap();
    let mut store = WalStore::new(world, backend, 1).unwrap();

    // route the watcher's view THROUGH the store so it is committed to
    // the log; the watcher then adopts it (identical query)
    let watch_query = Query::select().filter("hp", CmpOp::Lt, Value::Float(20.0));
    store.ensure_view(watch_query.clone()).unwrap();
    let watcher = ThresholdWatcher::reattach(store.world_mut(), &trig);
    assert_eq!(watcher.len(), 1);

    let a = store.world_mut().spawn_at(Vec2::ZERO);
    let b = store.world_mut().spawn_at(Vec2::new(5.0, 0.0));
    store.world_mut().set(a, "hp", Value::Float(100.0)).unwrap();
    store.world_mut().set(b, "hp", Value::Float(100.0)).unwrap();
    // a crosses before the crash, and its firing is consumed
    store.world_mut().set(a, "hp", Value::Float(5.0)).unwrap();
    let t = store.world().tick();
    store.world_mut().advance_tick_to(t + 1);
    store.commit().unwrap();
    let fired = watcher.pump(store.world_mut(), &mut trig);
    assert_eq!(fired.len(), 1, "pre-crash crossing fires once");

    let tick_before = store.world().tick();
    let (mut store, _) = store.crash_and_recover().unwrap();
    assert_eq!(store.world().tick(), tick_before, "tick recovers exactly");

    // a fresh process re-attaches: same view, already-below rows are
    // materialization, not crossings — nothing re-fires
    let mut trig2 = triggers();
    let watcher2 = ThresholdWatcher::reattach(store.world_mut(), &trig2);
    assert_eq!(watcher2.len(), 1);
    assert_eq!(
        store.world().view_ids().len(),
        1,
        "re-attach must not register a duplicate view"
    );
    let refired = watcher2.pump(store.world_mut(), &mut trig2);
    assert!(refired.is_empty(), "recovered crossings must not double-fire");

    // but a genuinely new crossing after recovery fires exactly once
    store.world_mut().set(b, "hp", Value::Float(1.0)).unwrap();
    let t = store.world().tick();
    store.world_mut().advance_tick_to(t + 1);
    store.commit().unwrap();
    let fired = watcher2.pump(store.world_mut(), &mut trig2);
    assert_eq!(fired.len(), 1, "post-recovery crossings fire normally");
    assert_eq!(fired[0].0, b);
}

/// The auditor's `gold < 0` view survives a snapshot round-trip and a
/// fresh auditor adopts it rather than registering a second one.
#[test]
fn auditor_reattaches_to_recovered_overdraft_view() {
    let mut w = World::new();
    w.define_component("gold", ValueType::Int).unwrap();
    let e = w.spawn_at(Vec2::ZERO);
    w.set(e, "gold", Value::Int(-5)).unwrap();
    let mut auditor = Auditor::new(10.0);
    auditor.subscribe_overdrafts(&mut w);
    assert_eq!(w.view_ids().len(), 1);

    let (mut recovered, _) = decode(&encode(&w)).unwrap();
    let mut auditor2 = Auditor::new(10.0);
    auditor2.subscribe_overdrafts(&mut recovered);
    assert_eq!(
        recovered.view_ids().len(),
        1,
        "the recovered view is adopted, not duplicated"
    );
    let before = auditor2.snapshot(&recovered);
    let report = auditor2.audit_tick(&before, &mut recovered);
    assert_eq!(report.overdrafts, 1, "overdraft visible through the view");
}

/// A mob's aggro candidate view survives recovery; `reattach` finds it
/// by its excluded-mob fingerprint and keeps maintaining it.
#[test]
fn candidate_view_reattaches_after_recovery() {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    let mob = w.spawn_at(Vec2::ZERO);
    let prey = w.spawn_at(Vec2::new(3.0, 0.0));
    let cv = CandidateView::register(&mut w, mob, 10.0).unwrap();
    assert_eq!(cv.candidates(&w), &[prey]);

    let (mut recovered, _) = decode(&encode(&w)).unwrap();
    let cv2 = CandidateView::reattach(&mut recovered, mob, 10.0).unwrap();
    assert_eq!(cv2.view(), cv.view(), "same recovered view handle");
    assert_eq!(recovered.plan_view_ids().len(), 1);
    assert_eq!(cv2.candidates(&recovered), &[prey]);
    // and it stays live: the prey leaves the radius
    let mut table = gamedb::sync::AggroTable::new();
    table.add_threat(prey, gamedb::sync::Role::Dps, 5.0);
    recovered.set_pos(prey, Vec2::new(100.0, 0.0)).unwrap();
    let mut cv2 = cv2;
    let log = cv2.sync(&mut recovered, &mut table);
    assert_eq!(log.exited, vec![prey]);
    assert!(table.is_empty(), "evicted from the threat table");
}

/// A replicator rebuilt after recovery adopts the surviving interest
/// view and ships the exact same replica a full-walk sync would.
#[test]
fn replicator_reattaches_interest_view_after_recovery() {
    let interest = Interest {
        center: (0.0, 0.0),
        radius: 12.0,
        margin: 2.0,
    };
    let mut w = World::new();
    w.define_component("gold", ValueType::Int).unwrap();
    w.create_index("gold", IndexKind::Sorted).unwrap();
    for i in 0..20 {
        let e = w.spawn_at(Vec2::new(i as f32 * 2.0, 0.0));
        w.set(e, "gold", Value::Int(i)).unwrap();
    }
    let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
    rep.attach_view(&mut w);
    assert_eq!(w.view_ids().len(), 1);

    let (mut recovered, _) = decode(&encode(&w)).unwrap();
    let mut rep2 = Replicator::with_interest(ConsistencyLevel::Strict, interest);
    rep2.reattach_view(&mut recovered);
    assert_eq!(
        recovered.view_ids().len(),
        1,
        "interest view adopted, not re-registered"
    );
    let mut via_view = Replica::default();
    rep2.sync_live(&mut recovered, &mut via_view);
    let mut plain = Replicator::with_interest(ConsistencyLevel::Strict, interest);
    let mut via_walk = Replica::default();
    plain.sync(&recovered, &mut via_walk);
    assert_eq!(via_view.rows, via_walk.rows, "identical replica state");
}
