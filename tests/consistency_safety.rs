//! Cross-crate property tests for the consistency layer:
//! * every executor produces the same final state on commutative batches;
//! * causality bubbles never separate entities that are within
//!   interaction range (the partitioning safety invariant);
//! * recovery always restores a prefix-consistent durable state.

use gamedb::core::EntityId;
use gamedb::persist::{temp_dir, Backend, CheckpointPolicy, GameStore};
use gamedb::spatial::Vec2;
use gamedb::sync::{
    arena_world, partition, Action, BubbleConfig, BubbleExecutor, Executor, LockingExecutor,
    OptimisticExecutor, SerialExecutor,
};
use proptest::prelude::*;

fn positions_strategy() -> impl Strategy<Value = Vec<(f32, f32)>> {
    proptest::collection::vec((-200.0f32..200.0, -200.0f32..200.0), 4..48)
}

/// Attack actions between random nearby pairs (attacks are commutative:
/// `dmg` is read-only, `hp` accumulates Adds).
fn attack_batch(ids: &[EntityId], pairs: &[(usize, usize)]) -> Vec<Action> {
    pairs
        .iter()
        .map(|&(a, b)| Action::Attack {
            attacker: ids[a % ids.len()],
            target: ids[b % ids.len()],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn executors_agree_on_attack_batches(
        positions in positions_strategy(),
        pairs in proptest::collection::vec((0usize..48, 0usize..48), 0..64),
    ) {
        let build = || arena_world(positions.len(), |i| {
            let (x, y) = positions[i];
            Vec2::new(x, y)
        });
        let (ids, reference) = {
            let (mut w, ids) = build();
            let batch = attack_batch(&ids, &pairs);
            SerialExecutor.execute(&mut w, &batch);
            (ids, w.rows())
        };
        let execs: Vec<Box<dyn Executor>> = vec![
            Box::new(LockingExecutor),
            Box::new(OptimisticExecutor::default()),
            Box::new(BubbleExecutor::default()),
        ];
        for exec in execs {
            let (mut w, ids2) = build();
            prop_assert_eq!(&ids2, &ids);
            let batch = attack_batch(&ids2, &pairs);
            let stats = exec.execute(&mut w, &batch);
            prop_assert_eq!(stats.executed, batch.len());
            prop_assert_eq!(w.rows(), reference.clone(), "{} diverged", exec.name());
        }
    }

    /// Safety: any two entities within (reach_i + reach_j + range) of each
    /// other must share a bubble — otherwise an interaction could cross a
    /// partition boundary mid-tick.
    #[test]
    fn bubbles_never_split_interacting_pairs(
        positions in positions_strategy(),
        range in 1.0f32..20.0,
    ) {
        let (w, ids) = arena_world(positions.len(), |i| {
            let (x, y) = positions[i];
            Vec2::new(x, y)
        });
        let cfg = BubbleConfig {
            dt: 1.0,
            max_accel: 2.0,
            interaction_range: range,
        };
        let part = partition(&w, &cfg);
        let reach = cfg.reach(0.0); // no velocities in this world
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let pa = w.pos(a).unwrap();
                let pb = w.pos(b).unwrap();
                let limit = reach * 2.0 + range;
                if pa.dist(pb) <= limit {
                    prop_assert_eq!(
                        part.bubble_of[&a], part.bubble_of[&b],
                        "interacting pair split across bubbles"
                    );
                }
            }
        }
        // and the partition covers every entity exactly once
        let total: usize = part.bubbles.iter().map(Vec::len).sum();
        prop_assert_eq!(total, ids.len());
    }

    /// Recovery restores exactly the state at the last checkpoint: running
    /// the same deterministic mutation sequence up to that point
    /// reproduces the recovered world.
    #[test]
    fn recovery_is_prefix_consistent(
        n in 2usize..20,
        total_steps in 1usize..40,
        period in 1usize..10,
    ) {
        let build = || arena_world(n, |i| Vec2::new(i as f32 * 2.0, 0.0));
        let (world, ids) = build();
        let backend = Backend::open(temp_dir("prefix")).unwrap();
        let mut store = GameStore::new(
            world,
            backend,
            CheckpointPolicy::Periodic { period: period as f64 },
        ).unwrap();
        // deterministic mutation: step k moves entity k%n and damages it
        for step in 0..total_steps {
            let e = ids[step % n];
            let p = store.world.pos(e).unwrap();
            store.world.set_pos(e, p + Vec2::new(1.0, 0.0)).unwrap();
            let hp = store.world.get_f32(e, "hp").unwrap();
            store.world.set_f32(e, "hp", hp - 1.0).unwrap();
            store.observe(1.0, 0.0).unwrap();
        }
        let cp_at = store.last_checkpoint_at() as usize;
        let (recovered, report) = store.crash_and_recover().unwrap();
        prop_assert!(report.lost_game_seconds < period as f64 + 1e-6);

        // replay the prefix on a fresh world
        let (mut replay, ids2) = build();
        for step in 0..cp_at {
            let e = ids2[step % n];
            let p = replay.pos(e).unwrap();
            replay.set_pos(e, p + Vec2::new(1.0, 0.0)).unwrap();
            let hp = replay.get_f32(e, "hp").unwrap();
            replay.set_f32(e, "hp", hp - 1.0).unwrap();
        }
        prop_assert_eq!(recovered.world.rows(), replay.rows());
    }
}

#[test]
fn gold_is_conserved_by_every_executor_under_contention() {
    // ring of trades through one hot entity — heavy conflicts
    let (_, ids) = arena_world(10, |i| Vec2::new(i as f32, 0.0));
    let mut batch = Vec::new();
    for (k, &from) in ids.iter().enumerate() {
        batch.push(Action::Trade {
            from,
            to: ids[0],
            amount: 5 + k as i64,
        });
        batch.push(Action::Trade {
            from: ids[0],
            to: ids[(k + 1) % ids.len()],
            amount: 3,
        });
    }
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(SerialExecutor),
        Box::new(LockingExecutor),
        Box::new(OptimisticExecutor::default()),
        Box::new(BubbleExecutor::default()),
    ];
    for exec in execs {
        let (mut w, ids) = arena_world(10, |i| Vec2::new(i as f32, 0.0));
        exec.execute(&mut w, &batch);
        let total: i64 = ids.iter().map(|&e| w.get_i64(e, "gold").unwrap()).sum();
        assert_eq!(total, 1000, "{} lost or created gold", exec.name());
    }
}
