//! Crash-during-handoff: cross-shard change shipping meets the
//! persistence layer.
//!
//! A [`ShardRouter`] streams entity handoffs between nodes as
//! [`DeltaSegment`]s while the primary commits through a [`WalStore`].
//! These tests crash the primary **mid-handoff** — a torn log tail at
//! every byte offset across the handoff tick's WAL record, the
//! crash-point harness's fault model — and prove the rebuilt cluster is
//! exact: the recovered world equals the durable-boundary oracle
//! ([`assert_equivalent`]), a [`ShardManager`] seeded with the last
//! durable placement re-derives it (the torn handoff never happened),
//! and node-local state rebuilt purely from segments matches the
//! by-value oracle.

use gamedb::content::Value;
use gamedb::core::{EntityId, World};
use gamedb::persist::{assert_equivalent, decode_log, temp_dir, Backend, FaultKind, WalStore};
use gamedb::spatial::Vec2;
use gamedb::sync::{
    arena_world, node_oracle, step_flock, AssignPolicy, BubbleConfig, ShardAssignment,
    ShardManager, ShardRouter,
};

const NODES: usize = 3;
/// Committed rounds before the crash round.
const ROUNDS: usize = 8;

fn manager() -> ShardManager {
    ShardManager::new(
        NODES,
        AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.2 },
    )
}

/// Three squads far apart plus an unpositioned global flag — the same
/// cluster the router's unit tests migrate.
fn build_store(tag: &str) -> (WalStore, Vec<EntityId>) {
    let (mut world, ids) = arena_world(24, |i| {
        let squad = i / 8;
        Vec2::new(squad as f32 * 5000.0 + (i % 8) as f32 * 2.0, 0.0)
    });
    let flag = world.spawn();
    world.set(flag, "gold", Value::Int(777)).unwrap();
    let backend = Backend::open(temp_dir(tag)).unwrap();
    let store = WalStore::new(world, backend, 1).unwrap();
    (store, ids)
}

/// One round of deterministic churn: drift toward the origin plus
/// component writes, a despawn, and a spawn.
fn churn(w: &mut World, ids: &[EntityId], t: usize) {
    step_flock(w, ids, Vec2::new(0.0, 0.0), 120.0);
    for (i, &e) in ids.iter().enumerate() {
        if i % 3 == t % 3 && w.is_live(e) {
            w.set_f32(e, "hp", 40.0 + (t * 7 + i) as f32).unwrap();
        }
    }
    if t == 4 {
        w.despawn(ids[5]);
    }
    if t == 6 {
        let e = w.spawn_at(Vec2::new(300.0, 10.0));
        w.set_f32(e, "hp", 55.0).unwrap();
    }
}

/// The crash round's mutation: two squad-0 members teleport into squad
/// 2's bubble, so the tick's segments carry a genuine cross-node
/// handoff (full-row puts on the gaining link, drops on the losing
/// one) — the traffic the crash tears.
fn teleport_defectors(w: &mut World, ids: &[EntityId]) {
    let anchor = w.pos(ids[16]).expect("squad 2 lives");
    for &e in &ids[0..2] {
        w.set_pos(e, anchor + Vec2::new(1.0, 1.0)).unwrap();
    }
}

/// Run the scripted scenario: `ROUNDS` committed rounds, then the
/// crash round (teleports + handoff + commit) with an optional torn
/// fault scheduled `fault_off` bytes past the pre-crash log length.
/// Returns the store (crashed and recovered), the oracle trace of
/// `(log_len, world, assignment)` after each commit, and the handoff
/// entities the crash tick shipped.
fn scripted_run(
    tag: &str,
    fault_off: Option<u64>,
) -> (WalStore, Vec<(u64, World, ShardAssignment)>, usize) {
    let (mut store, ids) = build_store(tag);
    let mut mgr = manager();
    let mut router = ShardRouter::new(store.world_mut(), NODES);
    let mut oracle = Vec::new();
    for t in 0..ROUNDS {
        churn(store.world_mut(), &ids, t);
        let a = mgr.tick(store.world(), &[]);
        router.tick(store.world_mut(), &a);
        store.commit().unwrap();
        let len = store.backend().log_len().unwrap();
        oracle.push((len, store.world().clone(), a));
    }
    let before = store.backend().log_len().unwrap();
    if let Some(off) = fault_off {
        store.backend_mut().schedule_log_fault(before + off, FaultKind::Torn);
    }
    // the crash round: a real cross-node handoff is in flight
    teleport_defectors(store.world_mut(), &ids);
    churn(store.world_mut(), &ids, ROUNDS);
    let a = mgr.tick(store.world(), &[]);
    let report = router.tick(store.world_mut(), &a);
    let moved = report.total_moved();
    store.commit().unwrap();
    let len = store.backend().log_len().unwrap();
    oracle.push((len, store.world().clone(), a));
    let (store, _) = store.crash_and_recover().unwrap();
    (store, oracle, moved)
}

/// Sweep torn-tail crash points across the handoff tick's WAL record.
/// At every offset: the recovered world equals the durable-boundary
/// oracle, and a cluster rebuilt on it — manager seeded with the last
/// durable placement, fresh router — re-derives that placement and
/// node states byte-identical to the by-value oracle.
#[test]
fn crash_during_handoff_recovers_exact_node_states_at_every_offset() {
    // probe: the crash tick's record spans [before, before + tail)
    let tail = {
        let (store, oracle, moved) = scripted_run("handoff-probe", None);
        assert!(moved >= 2, "crash tick must carry a real handoff");
        let durable = oracle.last().unwrap();
        assert_equivalent(store.world(), &durable.1).unwrap();
        durable.0 - oracle[ROUNDS - 1].0
    };
    assert!(tail > 0);
    // ~10 offsets across the record, endpoints included
    let stride = (tail as usize / 9).max(1);
    for off in (0..=tail).step_by(stride) {
        let (mut store, oracle, _) = scripted_run("handoff-sweep", Some(off));
        // expected durable state: the commit whose record the recovered
        // log decodes to — the harness's own oracle-matching rule (a
        // torn record is discarded whole, so the fault-time log length
        // is not a commit boundary)
        let log = store.backend().read_log().unwrap();
        let (_, consumed) = decode_log(&log);
        let (_, expected_world, expected_assignment) = oracle
            .iter()
            .find(|(len, _, _)| *len == consumed as u64)
            .expect("recovery stops at a durable commit boundary");
        assert_equivalent(store.world(), expected_world)
            .unwrap_or_else(|e| panic!("offset {off}: {e}"));
        // rebuild the cluster on the recovered primary: stickiness
        // seeded with the last durable placement re-derives it — the
        // torn handoff never happened
        let mut mgr = manager();
        mgr.seed_placement(expected_assignment.clone());
        let mut router = ShardRouter::new(store.world_mut(), NODES);
        let a = mgr.tick(store.world(), &[]);
        assert_eq!(
            a.node_of, expected_assignment.node_of,
            "offset {off}: seeded rebuild must re-derive the durable placement"
        );
        router.tick(store.world_mut(), &a);
        for n in 0..NODES {
            assert_eq!(
                router.node_state(n).rows,
                node_oracle(store.world(), &a, n),
                "offset {off}: node {n} diverged after the rebuild"
            );
        }
        router.detach(store.world_mut());
    }
}

/// After a clean crash-recovery the rebuilt cluster keeps streaming:
/// handoffs (including fresh defections) stay byte-identical to the
/// oracle, the delta framing keeps beating full-row shipping, and a
/// warm standby promoted mid-run carries zero divergence.
#[test]
fn recovered_cluster_resumes_streaming_and_standby_failover_is_exact() {
    let (mut store, oracle, _) = scripted_run("handoff-resume", None);
    let (_, _, last_placement) = oracle.last().unwrap();
    let mut mgr = manager();
    mgr.seed_placement(last_placement.clone());
    let mut router = ShardRouter::new(store.world_mut(), NODES);
    router.enable_standby(1, 2);
    let ids: Vec<EntityId> = store
        .world()
        .entities()
        .filter(|&e| store.world().pos(e).is_some())
        .collect();
    let mut last = ShardAssignment::default();
    for t in 0..6 {
        churn(store.world_mut(), &ids, ROUNDS + 1 + t);
        if t == 2 {
            teleport_defectors(store.world_mut(), &ids);
        }
        last = mgr.tick(store.world(), &[]);
        router.tick(store.world_mut(), &last);
        store.commit().unwrap();
        for n in 0..NODES {
            assert_eq!(
                router.node_state(n).rows,
                node_oracle(store.world(), &last, n),
                "node {n} diverged at resumed tick {t}"
            );
        }
        assert!(router.standby_lag(1).unwrap() <= 2);
    }
    assert!(
        router.handoff_bytes < router.baseline_bytes,
        "segments ({} B) must undercut full-row shipping ({} B)",
        router.handoff_bytes,
        router.baseline_bytes
    );
    // node 1 dies; its warm standby replays only the buffered tail
    let replayed = router.fail_over(1).expect("standby enabled");
    assert!(replayed <= 2, "failover replays at most the lag budget");
    assert_eq!(
        router.node_state(1).rows,
        node_oracle(store.world(), &last, 1),
        "promoted standby must carry zero divergence"
    );
    router.detach(store.world_mut());
}
