//! Integration tests across the extension subsystems: expansion-pack
//! patching feeds a world, the query planner answers over it, a sharded
//! multi-node tick loop keeps the auditor clean, and incremental
//! checkpointing recovers the whole thing after a crash.

use gamedb::content::{apply_all, CmpOp, ContentBundle, ContentPatch, Value};
use gamedb::core::{plan, Query, TableStats, World};
use gamedb::persist::{Backend, CheckpointPolicy, GameStore, SnapshotMode};
use gamedb::spatial::Vec2;
use gamedb::sync::{
    arena_world, collapse_moves, AssignPolicy, Auditor, BubbleConfig, BubbleExecutor, Executor,
    ShardManager, Workload, WorkloadConfig,
};

const BASE_CONTENT: &str = r#"
<content>
  <templates>
    <template name="monster" tags="hostile">
      <component name="hp" type="float" default="100"/>
      <component name="dmg" type="float" default="5"/>
    </template>
    <template name="rat" extends="monster">
      <component name="hp" type="float" default="10"/>
    </template>
  </templates>
</content>"#;

const EXPANSION: &str = r#"
<patch name="shadow-isles" version="1">
  <templates>
    <template name="wraith" extends="monster" tags="undead">
      <component name="hp" type="float" default="320"/>
      <component name="dmg" type="float" default="18"/>
    </template>
    <template name="rat" extends="monster">
      <component name="hp" type="float" default="15"/>
    </template>
  </templates>
</patch>"#;

/// Patch a shipped bundle, spawn from the patched templates, and query
/// the result through the cost-based planner.
#[test]
fn expansion_pack_to_planned_queries() {
    let mut bundle = ContentBundle::from_gdml_str(BASE_CONTENT).unwrap();
    let patch = ContentPatch::from_gdml_str(EXPANSION).unwrap();
    let (reports, conflicts) = apply_all(&mut bundle, std::slice::from_ref(&patch)).unwrap();
    assert!(conflicts.is_empty());
    assert_eq!(reports[0].added, 1, "wraith");
    assert_eq!(reports[0].overridden, 1, "buffed rat");
    assert!(bundle.validate().is_empty());

    // spawn a mixed population from the patched templates
    let mut world = World::new();
    world.define_component("hp", gamedb::content::ValueType::Float).unwrap();
    world.define_component("dmg", gamedb::content::ValueType::Float).unwrap();
    for i in 0..60 {
        let name = if i % 3 == 0 { "wraith" } else { "rat" };
        let resolved = bundle.templates.resolve(name).unwrap();
        let e = world.spawn_at(Vec2::new((i % 10) as f32 * 5.0, (i / 10) as f32 * 5.0));
        for (comp, value) in resolved.instantiate() {
            world.set(e, &comp, value).unwrap();
        }
    }

    // the planner answers "dangerous things near the gate" and must agree
    // with the reference evaluation
    let stats = TableStats::build(&world);
    let q = Query::select()
        .within(Vec2::new(10.0, 10.0), 12.0)
        .filter("dmg", CmpOp::Ge, Value::Float(10.0));
    let p = plan(&q, &stats);
    let found = p.run(&world);
    assert_eq!(found, q.run(&world), "plan: {}", p.explain());
    assert!(!found.is_empty(), "some wraiths are near the gate");
    for e in found {
        assert_eq!(world.get_f32(e, "hp"), Some(320.0), "only buffed wraiths pass");
    }
}

/// A sharded MMO tick loop: bubbles execute the batch, the shard manager
/// places them over four nodes, and the auditor confirms no wealth is
/// created or destroyed anywhere in the pipeline.
#[test]
fn sharded_tick_loop_stays_audit_clean() {
    let cfg = WorkloadConfig {
        players: 256,
        hotspot_fraction: 0.4,
        seed: 77,
        ..Default::default()
    };
    let mut wl = Workload::new(cfg);
    let exec = BubbleExecutor::new(BubbleConfig {
        dt: 1.0,
        max_accel: 2.0,
        interaction_range: cfg.interaction_range,
    });
    let mut shards = ShardManager::new(
        4,
        AssignPolicy::DynamicBubbles {
            cfg: BubbleConfig { dt: 1.0, max_accel: 2.0, interaction_range: 10.0 },
            max_overload: 1.5,
        },
    );
    let mut auditor = Auditor::new(2.0);
    for _ in 0..15 {
        let batch = collapse_moves(wl.next_batch());
        shards.tick(&wl.world, &batch);
        let before = auditor.snapshot(&wl.world);
        exec.execute(&mut wl.world, &batch);
        let report = auditor.audit(&before, &wl.world);
        assert!(report.clean(), "tick violated invariants: {report:?}");
    }
    let s = shards.stats();
    assert_eq!(s.ticks, 15);
    assert!(s.mean_imbalance >= 1.0);
}

/// Run a bubble-executed workload over an incrementally-checkpointed
/// store, crash, recover, and verify the world equals the last durable
/// state — snapshot plus delta chain.
#[test]
fn incremental_checkpoint_recovers_mmo_world() {
    let (world, ids) = arena_world(128, |i| {
        Vec2::new((i % 16) as f32 * 8.0, (i / 16) as f32 * 8.0)
    });
    let backend = Backend::open(gamedb::persist::temp_dir("ext-incr")).unwrap();
    let mut store = GameStore::with_mode(
        world,
        backend,
        CheckpointPolicy::Periodic { period: 2.0 },
        SnapshotMode::Incremental { full_every: 4 },
    )
    .unwrap();

    let exec = BubbleExecutor::default();
    let mut last_durable_rows = store.world.rows();
    // 11 checkpoints: fulls at seq 4 and 8, so deltas 9..11 survive for
    // the recovery path to replay
    for tick in 0..11 {
        let batch = vec![
            gamedb::sync::Action::Attack { attacker: ids[tick], target: ids[tick + 1] },
            gamedb::sync::Action::Trade { from: ids[tick + 2], to: ids[tick + 3], amount: 7 },
        ];
        exec.execute(&mut store.world, &batch);
        let wrote = store.observe(2.5, 0.1).unwrap();
        assert!(wrote, "period 2.0 < dt 2.5: every tick checkpoints");
        last_durable_rows = store.world.rows();
    }
    // post-checkpoint mutation is lost by design
    store.world.set_f32(ids[0], "hp", 0.5).unwrap();

    let (recovered, report) = store.crash_and_recover().unwrap();
    assert_eq!(recovered.world.rows(), last_durable_rows);
    // the crash happened right after a checkpoint: no game time lost,
    // only the unobserved post-checkpoint write
    assert_eq!(report.lost_game_seconds, 0.0);
    assert_ne!(recovered.world.get_f32(ids[0], "hp"), Some(0.5));
    // deltas were actually used: full snapshots only every 4th seq
    assert!(!recovered.backend().delta_seqs().unwrap().is_empty());
}

/// The optimizer pipeline end to end: a designer script with a foreach
/// loads through the optimizing engine, runs compiled, and produces the
/// same world as the unoptimized engine.
#[test]
fn optimizing_engine_matches_plain_engine() {
    use gamedb::script::{Level, ScriptEngine};

    let build = || {
        let mut w = World::new();
        w.define_component("hp", gamedb::content::ValueType::Float).unwrap();
        let ids: Vec<_> = (0..20)
            .map(|i| {
                let e = w.spawn_at(Vec2::new(i as f32 * 2.0, 0.0));
                w.set_f32(e, "hp", 50.0).unwrap();
                e
            })
            .collect();
        (w, ids)
    };
    const SRC: &str = "foreach within (5) { self.hp -= 0.5; } if 1 < 2 { self.hp += 1 * 2; }";

    let run = |optimize: bool| {
        let (mut w, ids) = build();
        let mut engine = if optimize {
            ScriptEngine::new(Level::Full).with_optimizer()
        } else {
            ScriptEngine::new(Level::Full)
        };
        engine.ensure_binding_component(&mut w);
        engine.load("drain", SRC, &w).unwrap();
        for &e in &ids {
            engine.bind(&mut w, e, "drain").unwrap();
        }
        for _ in 0..3 {
            engine.tick(&mut w).unwrap();
        }
        w.rows()
    };
    assert_eq!(run(false), run(true));
}
