//! Metrics are observational only: attaching a [`MetricsRegistry`] to
//! every subsystem must not change a single observable bit of engine
//! behavior. Two identical seeded runs — one bare, one fully
//! instrumented — must produce byte-identical world snapshots, equal
//! replica contents, and equal durability watermarks. The instrumented
//! handles are relaxed atomic bumps behind an `Option` check on hot
//! paths; this test is the regression net that keeps them that way.

use gamedb::content::{CmpOp, Value};
use gamedb::core::{IndexKind, Query};
use gamedb::metrics::MetricsRegistry;
use gamedb::persist::{snapshot, temp_dir, Backend, FlushPolicy, WalStore};
use gamedb::script::{Level, ScriptEngine};
use gamedb::spatial::Vec2;
use gamedb::sync::{
    arena_world, Action, AssignPolicy, BubbleConfig, ConsistencyLevel, Executor, Interest,
    Replica, Replicator, SerialExecutor, ShardManager,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const SEED: u64 = 0xBEEF_CAFE;
const PLAYERS: usize = 120;
const MAP: f32 = 400.0;
const TICKS: usize = 60;

/// One full seeded run through every instrumented subsystem. When
/// `registry` is `Some`, every attach point is exercised; the run's
/// observable outputs must not depend on it.
fn run(label: &str, registry: Option<&MetricsRegistry>) -> (Vec<u8>, Replica, u64, usize) {
    let (mut world, players) = arena_world(PLAYERS, |i| {
        let x = (i as f32 * 0.754_877_7).fract() * MAP;
        let y = (i as f32 * 0.569_840_3).fract() * MAP;
        Vec2::new(x, y)
    });
    world.create_index("gold", IndexKind::Sorted).unwrap();

    let mut engine = ScriptEngine::new(Level::Restricted).with_optimizer();
    engine.ensure_binding_component(&mut world);
    engine
        .load("regen", "if self.hp < 95.0 { self.hp += 1.0; }", &world)
        .unwrap();
    for &p in players.iter().step_by(6) {
        engine.bind(&mut world, p, "regen").unwrap();
    }

    let backend = Backend::open(temp_dir(label)).unwrap();
    let mut store =
        WalStore::new_async(world, backend, FlushPolicy::flush_every(64, 2), 16).unwrap();
    let mut shards = ShardManager::new(
        3,
        AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.4 },
    );
    let mut rep = Replicator::with_interest(
        ConsistencyLevel::CoarseEpoch { pos_period: 2 },
        Interest { center: (MAP / 2.0, MAP / 2.0), radius: 120.0, margin: 15.0 },
    );
    rep.attach_stream(store.world_mut());
    let mut replica = Replica::default();

    if let Some(r) = registry {
        store.attach_metrics(r);
        store.world_mut().attach_metrics(r);
        engine.attach_metrics(r);
        shards.attach_metrics(r);
        rep.attach_metrics(r);
    }

    let mut rng = StdRng::seed_from_u64(SEED);
    let exec = SerialExecutor;
    let mut audited = 0usize;
    for t in 0..TICKS {
        let mut actions = Vec::with_capacity(PLAYERS / 3);
        for _ in 0..PLAYERS / 3 {
            let a = players[rng.gen_range(0..players.len())];
            let b = players[rng.gen_range(0..players.len())];
            actions.push(match rng.gen_range(0..4u32) {
                0 => Action::Move {
                    who: a,
                    to: Vec2::new(rng.gen_range(0.0..MAP), rng.gen_range(0.0..MAP)),
                    speed: rng.gen_range(1.0..6.0f32),
                },
                1 => Action::Attack { attacker: a, target: b },
                2 => Action::Heal { healer: a, target: b },
                _ => Action::Trade { from: a, to: b, amount: rng.gen_range(1..15i64) },
            });
        }
        shards.tick(store.world(), &actions);
        exec.execute(store.world_mut(), &actions);
        engine.tick(store.world_mut()).unwrap();
        if t % 4 == 0 {
            audited += Query::select()
                .filter("gold", CmpOp::Ge, Value::Int(110))
                .count(store.world());
        }
        // drifting interest bubble: exercises the retarget path too
        rep.interest.center = (
            MAP / 2.0 + 40.0 * (t as f32 * 0.1).cos(),
            MAP / 2.0 + 40.0 * (t as f32 * 0.1).sin(),
        );
        store.commit().unwrap();
        rep.sync_stream(store.world_mut(), &mut replica);
    }
    store.wait_durable(store.last_enqueued()).unwrap();
    let mut bytes = snapshot::encode(store.world()).to_vec();
    // The frame header embeds the world's *lineage* id (bytes 12..20),
    // drawn from a process-global counter at `World::new` — it differs
    // between any two worlds built in one process, metrics or not.
    // Mask it; everything else (schema, rows, catalog, body checksum)
    // must still match bit for bit.
    bytes[12..20].fill(0);
    (bytes, replica, store.last_enqueued().0, audited)
}

#[test]
fn metrics_attachment_changes_no_observable_behavior() {
    let (bare_bytes, bare_replica, bare_seq, bare_audit) = run("transparency_bare", None);

    let registry = MetricsRegistry::new();
    let (inst_bytes, inst_replica, inst_seq, inst_audit) =
        run("transparency_instrumented", Some(&registry));

    if bare_bytes != inst_bytes {
        let i = bare_bytes
            .iter()
            .zip(&inst_bytes)
            .position(|(a, b)| a != b)
            .unwrap_or(bare_bytes.len().min(inst_bytes.len()));
        eprintln!(
            "first diff at byte {i} of {}/{}: bare={:?} inst={:?}",
            bare_bytes.len(),
            inst_bytes.len(),
            &bare_bytes[i.saturating_sub(8)..(i + 24).min(bare_bytes.len())],
            &inst_bytes[i.saturating_sub(8)..(i + 24).min(inst_bytes.len())],
        );
    }
    assert_eq!(bare_bytes, inst_bytes, "world snapshots must be byte-identical");
    assert_eq!(bare_replica.rows, inst_replica.rows, "replicas must match");
    assert_eq!(bare_seq, inst_seq, "commit sequences must match");
    assert_eq!(bare_audit, inst_audit, "query results must match");

    // and the instrumented run must actually have measured something —
    // a silent no-op attachment would make this test vacuous
    let snap = registry.snapshot();
    for name in [
        "change.records",
        "wal.commits",
        "script.ticks",
        "shard.ticks",
        "repl.segments",
        "planner.plans",
    ] {
        assert!(snap.counter(name) > 0, "{name} not reported");
    }

    // a second bare run replays bit-identically too (the workload
    // itself is deterministic, so the comparison above is meaningful)
    let (again, ..) = run("transparency_bare_2", None);
    assert_eq!(bare_bytes, again, "workload must be deterministic");
}
