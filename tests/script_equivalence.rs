//! Property test: for randomly generated restricted-level scripts, the
//! compiled form AND the bytecode VM produce exactly the effects of the
//! interpreter (the oracle), index-backed neighbor enumeration agrees
//! with the naive scan, and the engine lands on identical world state in
//! both [`ExecMode`]s across random world churn.

use gamedb::content::ValueType;
use gamedb::core::{EffectBuffer, World};
use gamedb::script::{
    check_script, compile, compile_program, parse_script, run_script, ExecMode, ExecOptions,
    Level, ScriptEngine, ScriptLibrary, Vm,
};
use gamedb::spatial::Vec2;
use proptest::prelude::*;

/// Generate a random restricted-level script from composable fragments.
/// Fragments only use components the test world defines, so every
/// generated script type-checks.
fn script_strategy() -> impl Strategy<Value = String> {
    let num_expr = prop_oneof![
        Just("self.hp".to_string()),
        Just("self.dmg".to_string()),
        Just("count(7)".to_string()),
        Just("count(9; other.team != self.team)".to_string()),
        Just("sum(6; other.dmg)".to_string()),
        Just("maxof(8; other.hp; other.hp > self.hp)".to_string()),
        Just("avgof(5; other.dmg)".to_string()),
        Just("nearest_dist(10)".to_string()),
        Just("min(self.hp, 50)".to_string()),
        Just("abs(self.dmg - 3)".to_string()),
        Just("clamp(self.hp, 0, 80)".to_string()),
        (1..50i32).prop_map(|n| n.to_string()),
    ];
    let stmt = num_expr.prop_flat_map(|e| {
        prop_oneof![
            Just(format!("self.hp += {e};")),
            Just(format!("self.hp -= {e} * 0.5;")),
            Just(format!("self.dmg = {e};")),
            // VAR is renamed per statement index below (unique names)
            Just(format!("let VAR = {e}; self.hp += VAR;")),
            Just(format!("if {e} > 10 {{ self.hp += 1; }} else {{ self.hp -= 1; }}")),
            Just(format!("if count(4) > 1 {{ move({e} * 0.01, 0 - 0.5); }}")),
            Just(format!(
                "if self.team == \"red\" {{ self.hp += {e} * 0.1; }}"
            )),
        ]
    });
    proptest::collection::vec(stmt, 1..6).prop_map(|stmts| {
        stmts
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.replace("VAR", &format!("v{i}")))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn test_world(positions: &[(f32, f32)]) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let e = w.spawn_at(Vec2::new(x, y));
        w.set_f32(e, "hp", 40.0 + (i % 7) as f32 * 9.0).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 4) as f32).unwrap();
        w.set(
            e,
            "team",
            gamedb::content::Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
        )
        .unwrap();
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_equals_interpreted(
        src in script_strategy(),
        positions in proptest::collection::vec((-40.0f32..40.0, -40.0f32..40.0), 2..24),
    ) {
        let world = test_world(&positions);
        let script = parse_script("s", &src).unwrap();
        // generated scripts are restricted-level by construction
        let errors = check_script(&script, &world, Level::Restricted);
        prop_assert!(errors.is_empty(), "{errors:?}\n--- script:\n{src}");

        let mut lib = ScriptLibrary::new();
        lib.insert(script);
        let compiled = compile(&lib, "s", &world).unwrap();
        let program = compile_program(&lib, "s", &world).unwrap();
        let mut vm = Vm::new();

        for id in world.entity_vec() {
            let mut b_interp = EffectBuffer::new();
            let mut b_comp = EffectBuffer::new();
            let mut b_vm = EffectBuffer::new();
            let out_i = run_script(&lib, "s", &world, id, &mut b_interp, ExecOptions::default())
                .unwrap();
            let out_c = compiled.run(&world, id, &mut b_comp, true).unwrap();
            let out_v = vm
                .run(&program, &world, id, &mut b_vm, ExecOptions::default())
                .unwrap();
            prop_assert_eq!(&out_i.events, &out_c);
            prop_assert_eq!(&out_i.events, &out_v);

            // the VM must agree on the exact write stream, not just the
            // post-apply state
            let ops_i: Vec<_> = b_interp.ops().cloned().collect();
            let ops_v: Vec<_> = b_vm.ops().cloned().collect();
            prop_assert_eq!(ops_i, ops_v, "script:\n{}", src);

            let mut w_i = world.clone();
            let mut w_c = world.clone();
            let mut w_v = world.clone();
            b_interp.apply(&mut w_i).unwrap();
            b_comp.apply(&mut w_c).unwrap();
            b_vm.apply(&mut w_v).unwrap();
            prop_assert_eq!(w_i.rows(), w_c.rows(), "script:\n{}", src);
            prop_assert_eq!(w_i.rows(), w_v.rows(), "script:\n{}", src);
        }
    }

    #[test]
    fn indexed_equals_naive_neighbors(
        src in script_strategy(),
        positions in proptest::collection::vec((-40.0f32..40.0, -40.0f32..40.0), 2..24),
    ) {
        let world = test_world(&positions);
        let mut lib = ScriptLibrary::new();
        lib.insert(parse_script("s", &src).unwrap());
        for id in world.entity_vec() {
            let mut b_idx = EffectBuffer::new();
            let mut b_scan = EffectBuffer::new();
            run_script(&lib, "s", &world, id, &mut b_idx, ExecOptions::default()).unwrap();
            run_script(
                &lib,
                "s",
                &world,
                id,
                &mut b_scan,
                ExecOptions { use_index: false, ..Default::default() },
            )
            .unwrap();
            let mut w_idx = world.clone();
            let mut w_scan = world.clone();
            b_idx.apply(&mut w_idx).unwrap();
            b_scan.apply(&mut w_scan).unwrap();
            prop_assert_eq!(w_idx.rows(), w_scan.rows(), "script:\n{}", src);
        }
    }

    /// VM-vs-interpreter parity under random world churn: entities are
    /// despawned mid-population and position-less "ghost" entities are
    /// spawned, so scripts hit dead-entity reads and `NoPosition` errors.
    /// Both engines must agree on Ok output (events, the exact effect-op
    /// stream, despawn list, applied rows) AND on every `RuntimeError`.
    #[test]
    fn vm_equals_interp_under_churn(
        src in script_strategy(),
        positions in proptest::collection::vec((-40.0f32..40.0, -40.0f32..40.0), 3..20),
        despawn_mask in proptest::collection::vec(any::<bool>(), 3..20),
        ghosts in 0usize..3,
        loop_fuel in prop_oneof![Just(4usize), Just(64usize), Just(100_000usize)],
    ) {
        let mut world = test_world(&positions);
        // churn: cull a random subset of the seeded entities...
        let seeded = world.entity_vec();
        for (i, id) in seeded.iter().enumerate() {
            if despawn_mask.get(i).copied().unwrap_or(false) && i + 1 < seeded.len() {
                world.despawn(*id);
            }
        }
        // ...and add entities with components but no position
        for g in 0..ghosts {
            let e = world.spawn();
            world.set_f32(e, "hp", 10.0 + g as f32).unwrap();
            world.set_f32(e, "dmg", 2.0).unwrap();
        }

        let mut lib = ScriptLibrary::new();
        lib.insert(parse_script("s", &src).unwrap());
        let program = compile_program(&lib, "s", &world).unwrap();
        let mut vm = Vm::new();
        let opts = ExecOptions { loop_fuel, ..Default::default() };

        for id in world.entity_vec() {
            let mut b_i = EffectBuffer::new();
            let mut b_v = EffectBuffer::new();
            let res_i = run_script(&lib, "s", &world, id, &mut b_i, opts);
            let res_v = vm.run(&program, &world, id, &mut b_v, opts);
            match (res_i, res_v) {
                (Ok(out_i), Ok(out_v)) => {
                    prop_assert_eq!(&out_i.events, &out_v, "script:\n{}", src);
                    let ops_i: Vec<_> = b_i.ops().cloned().collect();
                    let ops_v: Vec<_> = b_v.ops().cloned().collect();
                    prop_assert_eq!(ops_i, ops_v, "script:\n{}", src);
                    prop_assert_eq!(b_i.despawned(), b_v.despawned(), "script:\n{}", src);
                    let mut w_i = world.clone();
                    let mut w_v = world.clone();
                    b_i.apply(&mut w_i).unwrap();
                    b_v.apply(&mut w_v).unwrap();
                    prop_assert_eq!(w_i.rows(), w_v.rows(), "script:\n{}", src);
                }
                (Err(e_i), Err(e_v)) => {
                    prop_assert_eq!(e_i, e_v, "script:\n{}", src);
                }
                (i, v) => {
                    return Err(TestCaseError::fail(format!(
                        "outcome mismatch: interp={i:?} vm={v:?}\nscript:\n{src}"
                    )));
                }
            }
        }
    }
}

/// Run a multi-tick engine scenario in both [`ExecMode`]s from cloned
/// worlds; they must land on identical state, and the stats must show
/// the dispatch actually took the mode's path.
#[test]
fn engine_modes_agree_across_ticks() {
    let scenario = |mode: ExecMode| {
        let mut world = test_world(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.5, 0.5),
            (4.0, 3.0),
            (6.0, 6.0),
            (-3.0, 2.0),
        ]);
        let mut engine = ScriptEngine::new(Level::Full).with_mode(mode);
        engine.ensure_binding_component(&mut world);
        engine
            .load(
                "skirmish",
                "let threat = count(5; other.team != self.team);\n\
                 self.hp -= threat * 0.5;\n\
                 if self.hp < 20 { move(0 - 0.5, 0.25); }\n\
                 if self.hp < 1 { despawn; }",
                &world,
            )
            .unwrap();
        // string-valued locals don't lower to bytecode: exercises the
        // VM-mode interpreter fallback
        engine
            .load(
                "taunt",
                "let label = self.team;\nif label == \"red\" { emit \"taunted\"; }\nself.dmg += 1;",
                &world,
            )
            .unwrap();
        let ids = world.entity_vec();
        for (i, id) in ids.iter().enumerate() {
            let script = if i % 3 == 2 { "taunt" } else { "skirmish" };
            engine.bind(&mut world, *id, script).unwrap();
        }
        let mut vm_runs = 0;
        let mut interp_runs = 0;
        for _ in 0..8 {
            let stats = engine.tick(&mut world).unwrap();
            vm_runs += stats.vm_runs;
            interp_runs += stats.interp_runs;
        }
        (world.rows(), vm_runs, interp_runs)
    };

    let (rows_i, vm_i, interp_i) = scenario(ExecMode::Interp);
    let (rows_v, vm_v, interp_v) = scenario(ExecMode::Vm);
    assert_eq!(rows_i, rows_v, "engine modes diverged on world state");
    assert_eq!(vm_i, 0, "interp mode must not dispatch through the VM");
    assert!(interp_i > 0);
    assert!(vm_v > 0, "vm mode should dispatch compilable scripts to the VM");
    assert!(
        interp_v > 0,
        "string-local script should fall back to the interpreter in vm mode"
    );
}
