//! Property test: for randomly generated restricted-level scripts, the
//! compiled form produces exactly the effects of the interpreter, and
//! index-backed neighbor enumeration agrees with the naive scan.

use gamedb::content::ValueType;
use gamedb::core::{EffectBuffer, World};
use gamedb::script::{
    check_script, compile, parse_script, run_script, ExecOptions, Level, ScriptLibrary,
};
use gamedb::spatial::Vec2;
use proptest::prelude::*;

/// Generate a random restricted-level script from composable fragments.
/// Fragments only use components the test world defines, so every
/// generated script type-checks.
fn script_strategy() -> impl Strategy<Value = String> {
    let num_expr = prop_oneof![
        Just("self.hp".to_string()),
        Just("self.dmg".to_string()),
        Just("count(7)".to_string()),
        Just("count(9; other.team != self.team)".to_string()),
        Just("sum(6; other.dmg)".to_string()),
        Just("maxof(8; other.hp; other.hp > self.hp)".to_string()),
        Just("avgof(5; other.dmg)".to_string()),
        Just("nearest_dist(10)".to_string()),
        Just("min(self.hp, 50)".to_string()),
        Just("abs(self.dmg - 3)".to_string()),
        Just("clamp(self.hp, 0, 80)".to_string()),
        (1..50i32).prop_map(|n| n.to_string()),
    ];
    let stmt = num_expr.prop_flat_map(|e| {
        prop_oneof![
            Just(format!("self.hp += {e};")),
            Just(format!("self.hp -= {e} * 0.5;")),
            Just(format!("self.dmg = {e};")),
            // VAR is renamed per statement index below (unique names)
            Just(format!("let VAR = {e}; self.hp += VAR;")),
            Just(format!("if {e} > 10 {{ self.hp += 1; }} else {{ self.hp -= 1; }}")),
            Just(format!("if count(4) > 1 {{ move({e} * 0.01, 0 - 0.5); }}")),
            Just(format!(
                "if self.team == \"red\" {{ self.hp += {e} * 0.1; }}"
            )),
        ]
    });
    proptest::collection::vec(stmt, 1..6).prop_map(|stmts| {
        stmts
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.replace("VAR", &format!("v{i}")))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn test_world(positions: &[(f32, f32)]) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let e = w.spawn_at(Vec2::new(x, y));
        w.set_f32(e, "hp", 40.0 + (i % 7) as f32 * 9.0).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 4) as f32).unwrap();
        w.set(
            e,
            "team",
            gamedb::content::Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
        )
        .unwrap();
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_equals_interpreted(
        src in script_strategy(),
        positions in proptest::collection::vec((-40.0f32..40.0, -40.0f32..40.0), 2..24),
    ) {
        let world = test_world(&positions);
        let script = parse_script("s", &src).unwrap();
        // generated scripts are restricted-level by construction
        let errors = check_script(&script, &world, Level::Restricted);
        prop_assert!(errors.is_empty(), "{errors:?}\n--- script:\n{src}");

        let mut lib = ScriptLibrary::new();
        lib.insert(script);
        let compiled = compile(&lib, "s", &world).unwrap();

        for id in world.entity_vec() {
            let mut b_interp = EffectBuffer::new();
            let mut b_comp = EffectBuffer::new();
            let out_i = run_script(&lib, "s", &world, id, &mut b_interp, ExecOptions::default())
                .unwrap();
            let out_c = compiled.run(&world, id, &mut b_comp, true).unwrap();
            prop_assert_eq!(out_i.events, out_c);

            let mut w_i = world.clone();
            let mut w_c = world.clone();
            b_interp.apply(&mut w_i).unwrap();
            b_comp.apply(&mut w_c).unwrap();
            prop_assert_eq!(w_i.rows(), w_c.rows(), "script:\n{}", src);
        }
    }

    #[test]
    fn indexed_equals_naive_neighbors(
        src in script_strategy(),
        positions in proptest::collection::vec((-40.0f32..40.0, -40.0f32..40.0), 2..24),
    ) {
        let world = test_world(&positions);
        let mut lib = ScriptLibrary::new();
        lib.insert(parse_script("s", &src).unwrap());
        for id in world.entity_vec() {
            let mut b_idx = EffectBuffer::new();
            let mut b_scan = EffectBuffer::new();
            run_script(&lib, "s", &world, id, &mut b_idx, ExecOptions::default()).unwrap();
            run_script(
                &lib,
                "s",
                &world,
                id,
                &mut b_scan,
                ExecOptions { use_index: false, ..Default::default() },
            )
            .unwrap();
            let mut w_idx = world.clone();
            let mut w_scan = world.clone();
            b_idx.apply(&mut w_idx).unwrap();
            b_scan.apply(&mut w_scan).unwrap();
            prop_assert_eq!(w_idx.rows(), w_scan.rows(), "script:\n{}", src);
        }
    }
}
