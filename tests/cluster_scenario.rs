//! Instrumented cluster scenario — the observability tentpole's cap.
//!
//! One seeded run exercises every instrumented subsystem at once, the
//! way a production shard cluster would: an async-durability
//! [`WalStore`] primary under sustained action churn, a scripted tick,
//! a [`ShardManager`] placing causality bubbles across N nodes, and M
//! streaming replicators with *migrating* interest bubbles — each
//! shadowed by a full-walk mirror replicator that establishes the
//! bandwidth baseline the delta stream must beat. Everything reports
//! into one shared [`MetricsRegistry`].
//!
//! The run gates on five invariants (CI runs this as the named
//! `cluster-scenario` step and uploads the metrics report it writes):
//!
//! 1. **Durable watermark lag stays bounded** — the background WAL
//!    writer keeps up with commit churn (and drains to zero at the end).
//! 2. **Zero unpinned-tap evictions** — replicator taps ack fast enough
//!    that the retention window never has to cut one loose.
//! 3. **Delta bytes < full-walk bytes** — the streamed segments beat
//!    the full-walk baseline over the same interest bubbles, while
//!    producing byte-identical replicas.
//! 4. **Handoff bytes < full-row shipping** — cross-shard entity
//!    handoff streamed as delta segments over per-node links undercuts
//!    the by-value baseline, while every node's segment-built state is
//!    byte-identical to the by-value oracle at every tick.
//! 5. **Zero standby divergence** — the warm standby promoted at the
//!    end of the run equals its node's oracle after replaying only its
//!    buffered tail.

use std::fs;

use gamedb::content::{CmpOp, Value};
use gamedb::core::{AggFn, DurabilityWatermark, IndexKind, Query};
use gamedb::metrics::{MetricsRegistry, Snapshot};
use gamedb::persist::{temp_dir, Backend, FlushPolicy, WalStore};
use gamedb::script::{Level, ScriptEngine};
use gamedb::spatial::Vec2;
use gamedb::sync::{
    arena_world, node_oracle, Action, AssignPolicy, BubbleConfig, ClusterExecutor,
    ConsistencyLevel, Interest, Replica, Replicator, ShardAssignment, ShardManager, ShardRouter,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const SEED: u64 = 0x5160_0d09;
const PLAYERS: usize = 400;
const MAP: f32 = 1000.0;
const TICKS: usize = 150;
const NODES: usize = 4;
const BUBBLE_RADIUS: f32 = 170.0;
/// Commit queue capacity (frames) handed to the async writer. The
/// watermark-lag gate is phrased against this: backpressure bounds the
/// channel at `QUEUE` frames and the writer buffers at most a few more
/// before its size trigger fires.
const QUEUE: usize = 32;
const LAG_BOUND: u64 = (QUEUE + 8) as u64;

/// The M replicated clients: consistency level + where their interest
/// bubble starts (phase on the migration orbit).
const CLIENTS: [(ConsistencyLevel, f32); 3] = [
    (ConsistencyLevel::Strict, 0.0),
    (ConsistencyLevel::CoarseEpoch { pos_period: 2 }, 2.1),
    (ConsistencyLevel::CoarseEpoch { pos_period: 4 }, 4.2),
];

/// Interest bubble for client `i` at tick `t`: orbits the map center so
/// every bubble migrates across shard boundaries during the run.
fn bubble_at(phase: f32, t: usize) -> Interest {
    let theta = phase + t as f32 * 0.05;
    Interest {
        center: (
            MAP / 2.0 + 0.3 * MAP * theta.cos(),
            MAP / 2.0 + 0.3 * MAP * theta.sin(),
        ),
        radius: BUBBLE_RADIUS,
        margin: 25.0,
    }
}

/// One tick of seeded churn: moves toward a drifting hotspot plus
/// pairwise combat/economy actions. Actions against despawned entities
/// are no-ops by construction, so the mix needs no liveness bookkeeping.
fn churn_batch(rng: &mut StdRng, players: &[gamedb::core::EntityId], t: usize) -> Vec<Action> {
    let hot = Vec2::new(
        MAP / 2.0 + 0.35 * MAP * (t as f32 * 0.03).cos(),
        MAP / 2.0 + 0.35 * MAP * (t as f32 * 0.03).sin(),
    );
    let mut batch = Vec::with_capacity(PLAYERS / 3);
    for _ in 0..PLAYERS / 3 {
        let a = players[rng.gen_range(0..players.len())];
        let b = players[rng.gen_range(0..players.len())];
        let roll = rng.gen_range(0..100u32);
        batch.push(match roll {
            0..=54 => Action::Move {
                who: a,
                to: hot + Vec2::new(rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0)),
                speed: rng.gen_range(2.0..8.0f32),
            },
            55..=74 => Action::Attack { attacker: a, target: b },
            75..=89 => Action::Heal { healer: a, target: b },
            _ => Action::Trade { from: a, to: b, amount: rng.gen_range(1..20i64) },
        });
    }
    batch
}

fn write_report(snap: &Snapshot, second_half: &Snapshot, summary: &str) {
    let mut text = String::new();
    text.push_str("# cluster-scenario metrics report\n\n");
    text.push_str(summary);
    text.push_str("\n## full run\n\n");
    text.push_str(&snap.render_text());
    text.push_str("\n## second half (delta vs mid-run snapshot)\n\n");
    text.push_str(&second_half.render_text());
    // Written under target/ so CI can pick the pair up as an artifact.
    let _ = fs::create_dir_all("target");
    fs::write("target/cluster-scenario-report.txt", &text).expect("write text report");
    fs::write("target/cluster-scenario-report.json", snap.to_json()).expect("write json report");
    println!("{text}");
}

#[test]
fn instrumented_cluster_scenario() {
    let registry = MetricsRegistry::new();

    // -- primary shard: arena world under an async-durability WAL -----
    let (mut world, players) = arena_world(PLAYERS, |i| {
        // low-discrepancy scatter; deterministic, no RNG state needed
        let x = (i as f32 * 0.754_877_7).fract() * MAP;
        let y = (i as f32 * 0.569_840_3).fract() * MAP;
        Vec2::new(x, y)
    });
    world.create_index("gold", IndexKind::Sorted).unwrap();

    // ONE operator-tree view rides the whole run: a global group
    // aggregate maintaining total gold while trades churn it — the
    // differential view engine's per-operator counters land in the same
    // shared registry, and the run periodically holds the maintained
    // value to a forced recompute of the plan.
    let wealth_view = world
        .register_view_plan(
            Query::select()
                .into_aggregate_plan(AggFn::Sum("gold".into()))
                .unwrap(),
        )
        .unwrap();

    let mut engine = ScriptEngine::new(Level::Restricted).with_optimizer();
    engine.ensure_binding_component(&mut world);
    engine
        .load("regen", "if self.hp < 95.0 { self.hp += 1.0; }", &world)
        .unwrap();
    for &p in players.iter().step_by(8) {
        engine.bind(&mut world, p, "regen").unwrap();
    }

    let backend = Backend::open(temp_dir("cluster_scenario")).unwrap();
    let mut store =
        WalStore::new_async(world, backend, FlushPolicy::flush_every(64, 2), QUEUE).unwrap();

    // generous retention: the eviction gate below proves the replicator
    // taps ack fast enough that this window is never exceeded
    store.world_mut().set_tap_retention(Some(200_000));

    // -- attach ONE registry to every subsystem -----------------------
    store.attach_metrics(&registry);
    store.world_mut().attach_metrics(&registry);
    engine.attach_metrics(&registry);

    let mut shards = ShardManager::new(
        NODES,
        AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.4 },
    );
    shards.attach_metrics(&registry);

    // cross-shard change shipping: per-node links on the primary's
    // change stream, one warm standby, handoff billed onto the cluster
    // cost model instead of being free by-value movement
    let mut router = ShardRouter::new(store.world_mut(), NODES);
    router.attach_metrics(&registry);
    router.enable_standby(0, 4);
    let cluster = ClusterExecutor::default();

    let mut streams: Vec<Replicator> = Vec::new();
    let mut mirrors: Vec<Replicator> = Vec::new();
    let mut stream_replicas: Vec<Replica> = Vec::new();
    let mut mirror_replicas: Vec<Replica> = Vec::new();
    for &(level, phase) in &CLIENTS {
        let mut rep = Replicator::with_interest(level, bubble_at(phase, 0));
        rep.attach_stream(store.world_mut());
        rep.attach_metrics(&registry);
        let mut mirror = Replicator::with_interest(level, bubble_at(phase, 0));
        mirror.attach_metrics(&registry);
        streams.push(rep);
        mirrors.push(mirror);
        stream_replicas.push(Replica::default());
        mirror_replicas.push(Replica::default());
    }

    // -- the run ------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut max_lag = 0u64;
    let mut mid_snapshot = Snapshot::default();
    let mut audited = 0usize;
    let mut last_assignment = ShardAssignment::default();
    let mut distributed_total = 0usize;
    let mut simulated_us = 0.0f64;
    let mut single_server_us = 0.0f64;

    for t in 0..TICKS {
        let actions = churn_batch(&mut rng, &players, t);
        let assignment = shards.tick(store.world(), &actions);
        let mut cstats = cluster.execute(store.world_mut(), &assignment, &actions);
        engine.tick(store.world_mut()).unwrap();

        if t % 5 == 0 {
            // auditor queries: exercise the planner's attribute-index
            // and spatial paths against the live primary
            audited += Query::select()
                .filter("gold", CmpOp::Ge, Value::Int(120))
                .count(store.world());
            audited += Query::select()
                .within(Vec2::new(MAP / 2.0, MAP / 2.0), 150.0)
                .run(store.world())
                .len();
            // the maintained wealth aggregate equals a forced recompute
            store.world_mut().refresh_views();
            let plan = store.world().view_plan(wealth_view).unwrap().clone();
            assert_eq!(
                store.world().view_output(wealth_view),
                plan.evaluate(store.world()).unwrap(),
                "tick {t}: maintained wealth diverged from its recompute"
            );
        }

        store.commit().unwrap();
        if t % 50 == 49 {
            store.checkpoint().unwrap();
        }

        // ship this tick's cross-shard handoff as delta segments and
        // bill the bytes onto the tick — then hold every node's
        // segment-built state to the by-value oracle, byte for byte
        let hreport = router.tick(store.world_mut(), &assignment);
        cluster.bill_handoff(&mut cstats, hreport.total_bytes());
        distributed_total += cstats.distributed;
        simulated_us += cstats.simulated_us;
        single_server_us += cstats.single_server_us;
        for n in 0..NODES {
            assert_eq!(
                router.node_state(n).rows,
                node_oracle(store.world(), &assignment, n),
                "tick {t}: node {n} segment-built state diverged from the by-value oracle"
            );
        }
        assert!(
            router.standby_lag(0).expect("standby enabled") <= 4,
            "tick {t}: standby lag exceeded its budget"
        );
        last_assignment = assignment;

        for (i, &(_, phase)) in CLIENTS.iter().enumerate() {
            let interest = bubble_at(phase, t);
            streams[i].interest = interest;
            mirrors[i].interest = interest;
            let mark = store.snapshot_watermark();
            if !streams[i].sync_stream_durable(
                store.world_mut(),
                &mut stream_replicas[i],
                &mark,
            ) {
                // Strict refused an undrained watermark: drain and retry
                // (the refusal itself is counted as repl.gated_ticks)
                store.wait_durable(store.last_enqueued()).unwrap();
                let mark = store.snapshot_watermark();
                assert!(
                    streams[i].sync_stream_durable(
                        store.world_mut(),
                        &mut stream_replicas[i],
                        &mark,
                    ),
                    "drained watermark must unblock a Strict tick"
                );
            }
            mirrors[i].sync(store.world(), &mut mirror_replicas[i]);
        }

        let wm = store.watermark_snapshot();
        max_lag = max_lag.max(wm.lag);
        assert!(
            wm.lag <= LAG_BOUND,
            "tick {t}: durable watermark lag {} exceeded bound {LAG_BOUND}",
            wm.lag
        );

        if t == TICKS / 2 {
            mid_snapshot = registry.snapshot();
        }
    }

    store.wait_durable(store.last_enqueued()).unwrap();
    let final_wm = store.watermark_snapshot();
    assert_eq!(final_wm.lag, 0, "drained store must report zero watermark lag");
    assert_eq!(final_wm.enqueued.0, store.last_enqueued().0);

    let snap = registry.snapshot();

    // -- gate 1: durable watermark lag stayed bounded ------------------
    assert!(max_lag <= LAG_BOUND);
    assert!(
        snap.gauge("wal.watermark_lag") >= 0 && (snap.gauge("wal.watermark_lag") as u64) <= LAG_BOUND,
        "reported watermark-lag gauge out of bounds"
    );

    // -- gate 2: zero unpinned-tap evictions ---------------------------
    assert_eq!(
        snap.counter("change.tap_evictions"),
        0,
        "no replicator tap may be evicted during the run"
    );
    for (i, rep) in streams.iter().enumerate() {
        let ts = store.world().tap_stats(rep.stream_tap().expect("stream attached"));
        assert!(ts.attached && !ts.evicted, "stream {i} tap evicted");
        // later clients' migrating bubbles append RetargetView catalog
        // ops after this tap's final ack — row data is fully drained
        assert!(
            ts.lag <= CLIENTS.len() as u64,
            "stream {i} tap lag {} exceeds the catalog-op allowance",
            ts.lag
        );
    }

    // -- gate 3: delta stream beats the full-walk baseline -------------
    let delta_bytes = snap.counter("repl.segment_bytes");
    let walk_bytes = snap.counter("repl.full_walk_bytes");
    assert!(delta_bytes > 0 && walk_bytes > 0, "both replication paths must have run");
    assert!(
        delta_bytes < walk_bytes,
        "delta stream ({delta_bytes} B) must undercut full walks ({walk_bytes} B)"
    );
    // ... while converging to the identical replica state
    for (i, (s, m)) in stream_replicas.iter().zip(&mirror_replicas).enumerate() {
        assert_eq!(s.rows, m.rows, "stream and mirror replicas diverged for client {i}");
    }

    // -- gate 4: handoff segments beat full-row shipping ----------------
    let handoff_bytes = snap.counter("shard.handoff_bytes");
    let handoff_baseline = snap.counter("shard.handoff_baseline_bytes");
    assert!(
        snap.counter("shard.handoff_entities") > 0,
        "migrating bubbles must hand entities across nodes"
    );
    assert!(handoff_bytes > 0 && handoff_baseline > 0, "handoff must have shipped");
    assert!(
        handoff_bytes < handoff_baseline,
        "handoff segments ({handoff_bytes} B) must undercut full-row shipping \
         ({handoff_baseline} B)"
    );
    assert_eq!(
        snap.counter("shard.handoff_resyncs"),
        0,
        "node links must never fall off the retention window"
    );

    // -- gate 5: warm standby promotes with zero divergence -------------
    let replayed = router.fail_over(0).expect("standby enabled on node 0");
    assert!(replayed <= 4, "failover must replay at most the lag budget");
    assert_eq!(
        router.node_state(0).rows,
        node_oracle(store.world(), &last_assignment, 0),
        "promoted standby diverged from node 0's oracle"
    );
    router.detach(store.world_mut());

    // -- cross-subsystem sanity over the shared registry ---------------
    assert!(snap.counter("change.records") > 0);
    assert!(snap.counter("change.batches") > 0);
    assert_eq!(snap.counter("script.ticks"), TICKS as u64);
    assert_eq!(snap.counter("shard.ticks"), TICKS as u64);
    assert!(snap.counter("wal.commits") >= TICKS as u64);
    assert!(snap.counter("wal.checkpoints") >= TICKS as u64 / 50);
    assert!(snap.counter("wal.flushes") > 0);
    assert!(snap.counter("planner.plans") > 0, "auditor queries must be planned");
    assert!(snap.counter("view.refreshes") > 0, "interest views must refresh");
    // the operator-tree view's per-operator counters flowed into the
    // shared registry: trades feed the fused scan, which feeds the
    // group aggregate
    assert!(
        snap.counter("view.op_scan.rows_in") > 0,
        "the wealth view's scan operator must have seen delta rows"
    );
    assert!(
        snap.counter("view.op_group.rows_in") > 0,
        "the wealth view's group operator must have folded delta rows"
    );
    assert!(
        snap.counter("repl.resyncs") == 0,
        "no tap eviction means no forced full resync"
    );
    let lat = snap
        .histogram("wal.enqueue_to_durable_us")
        .expect("latency histogram populated");
    assert!(lat.count > 0);
    assert!(audited > 0);

    // -- report artifact ----------------------------------------------
    let second_half = snap.delta(&mid_snapshot);
    let summary = format!(
        "players={PLAYERS} ticks={TICKS} nodes={NODES} clients={}\n\
         max watermark lag: {max_lag} commits (bound {LAG_BOUND})\n\
         delta stream: {delta_bytes} B vs full walk: {walk_bytes} B ({:.1}% of baseline)\n\
         shard handoff: {handoff_bytes} B vs full-row: {handoff_baseline} B \
         ({:.1}% of baseline), {} entities in {} segments\n\
         standby: replayed segments={} (failover tail={replayed})\n\
         cluster: {distributed_total} distributed actions, simulated {:.1} ms \
         vs single-server {:.1} ms\n\
         gated strict ticks: {}\n\
         dvm wealth view: op_scan rows_in={} rows_out={}, \
         op_group rows_in={} rows_out={}\n",
        CLIENTS.len(),
        100.0 * delta_bytes as f64 / walk_bytes as f64,
        100.0 * handoff_bytes as f64 / handoff_baseline as f64,
        snap.counter("shard.handoff_entities"),
        snap.counter("shard.handoff_segments"),
        registry.snapshot().counter("standby.replays"),
        simulated_us / 1000.0,
        single_server_us / 1000.0,
        snap.counter("repl.gated_ticks"),
        snap.counter("view.op_scan.rows_in"),
        snap.counter("view.op_scan.rows_out"),
        snap.counter("view.op_group.rows_in"),
        snap.counter("view.op_group.rows_out"),
    );
    write_report(&snap, &second_half, &summary);
}
