//! End-to-end integration: designer content → world → restricted scripts
//! → parallel ticks → triggers → checkpoint → crash → recovery.

use gamedb::content::{Action as TriggerAction, ContentBundle, GameEvent, Value};
use gamedb::core::{EffectBuffer, EntityId, TickExecutor, World};
use gamedb::persist::{temp_dir, Backend, CheckpointPolicy, GameStore};
use gamedb::script::{check_library, parse_script, run_script, ExecOptions, Level, ScriptLibrary};
use gamedb::spatial::Vec2;

const CONTENT: &str = r#"
<content>
  <templates>
    <template name="fighter" tags="combatant">
      <component name="hp" type="float" default="100"/>
      <component name="dmg" type="float" default="4"/>
      <component name="team" type="str" default="none"/>
      <script>skirmish</script>
    </template>
  </templates>
  <triggers>
    <trigger id="near_death" event="stat_below" component="hp" threshold="20">
      <action kind="emit" event="rescue_me"/>
    </trigger>
  </triggers>
</content>"#;

const SKIRMISH: &str = r#"
    let foes = count(5; other.team != self.team);
    let pain = sum(5; other.dmg; other.team != self.team);
    if foes > 0 { self.hp -= pain * 0.25; }
    self.hp += 0.5;
"#;

fn build_shard() -> (World, Vec<EntityId>, ScriptLibrary) {
    let bundle = ContentBundle::from_gdml_str(CONTENT).unwrap();
    assert!(bundle.validate().is_empty());
    let fighter = bundle.templates.resolve("fighter").unwrap();
    assert!(fighter.has_tag("combatant"));
    assert_eq!(fighter.scripts, vec!["skirmish"]);

    let mut world = World::new();
    let mut ids = Vec::new();
    for i in 0..40 {
        let e = world
            .spawn_from_template(&fighter, Vec2::new((i % 8) as f32 * 3.0, (i / 8) as f32 * 3.0))
            .unwrap();
        world
            .set(
                e,
                "team",
                Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
        ids.push(e);
    }

    let mut lib = ScriptLibrary::new();
    lib.insert(parse_script("skirmish", SKIRMISH).unwrap());
    let scripts: Vec<_> = lib.iter().cloned().collect();
    let errors = check_library(&scripts, &world, Level::Restricted);
    assert!(errors.is_empty(), "{errors:?}");
    (world, ids, lib)
}

#[test]
fn content_to_ticks_to_recovery() {
    let (world, ids, lib) = build_shard();
    let bundle = ContentBundle::from_gdml_str(CONTENT).unwrap();
    let mut triggers = bundle.triggers.clone();

    let backend = Backend::open(temp_dir("pipeline")).unwrap();
    let mut store = GameStore::new(
        world,
        backend,
        CheckpointPolicy::Periodic { period: 5.0 },
    )
    .unwrap();

    let mut rescue_events = 0usize;
    // 33 ticks: the last periodic(5) checkpoint lands at t=30, so three
    // ticks of progress exist to lose at the crash
    for _ in 0..33 {
        // run scripts as a tick system
        let lib_ref = &lib;
        let hp_before: Vec<(EntityId, f64)> = ids
            .iter()
            .filter(|&&e| store.world.is_live(e))
            .map(|&e| (e, store.world.get_number(e, "hp").unwrap_or(0.0)))
            .collect();
        let system = move |id: EntityId, w: &World, buf: &mut EffectBuffer| {
            run_script(lib_ref, "skirmish", w, id, buf, ExecOptions::default()).unwrap();
        };
        TickExecutor::sequential()
            .run_tick(&mut store.world, &[&system])
            .unwrap();
        // feed stat changes into the trigger set
        for (e, old) in hp_before {
            if !store.world.is_live(e) {
                continue;
            }
            let new = store.world.get_number(e, "hp").unwrap_or(0.0);
            if new != old {
                let fired = triggers.fire(
                    &GameEvent::StatChanged {
                        component: "hp".into(),
                        old,
                        new,
                    },
                    &store.world.view(e),
                );
                for (id, action) in fired {
                    assert_eq!(id, "near_death");
                    assert!(matches!(action, TriggerAction::Emit { .. }));
                    rescue_events += 1;
                }
            }
        }
        store.observe(1.0, 0.5).unwrap();
    }
    assert!(
        rescue_events > 0,
        "sustained combat must push someone below the trigger threshold"
    );
    assert!(store.stats.checkpoints >= 5, "periodic(5s) over 33s");

    // crash: world rolls back to a durable state with all entities intact
    let pre_crash_rows = store.world.rows();
    let (recovered, report) = store.crash_and_recover().unwrap();
    assert!(report.lost_game_seconds <= 5.0 + 1e-6);
    assert_eq!(recovered.world.len(), 40);
    // recovered state is a previous state, not the live one
    assert_ne!(recovered.world.rows(), pre_crash_rows);
    // spatial queries still work after recovery
    let mut near = Vec::new();
    recovered.world.within(Vec2::new(0.0, 0.0), 5.0, &mut near);
    assert!(!near.is_empty());
}

#[test]
fn parallel_and_sequential_shards_agree() {
    let (mut w1, _, lib) = build_shard();
    let (mut w2, _, _) = build_shard();
    let lib_ref = &lib;
    let system = move |id: EntityId, w: &World, buf: &mut EffectBuffer| {
        run_script(lib_ref, "skirmish", w, id, buf, ExecOptions::default()).unwrap();
    };
    for _ in 0..10 {
        TickExecutor::sequential().run_tick(&mut w1, &[&system]).unwrap();
        TickExecutor::parallel(4)
            .with_min_chunk(4)
            .run_tick(&mut w2, &[&system])
            .unwrap();
    }
    assert_eq!(w1.rows(), w2.rows());
}

#[test]
fn compiled_scripts_agree_with_interpreter_over_ticks() {
    let (mut w1, _, lib) = build_shard();
    let (mut w2, _, _) = build_shard();
    let compiled = gamedb::script::compile(&lib, "skirmish", &w1).unwrap();
    for _ in 0..10 {
        let mut b1 = EffectBuffer::new();
        for id in w1.entity_vec() {
            run_script(&lib, "skirmish", &w1, id, &mut b1, ExecOptions::default()).unwrap();
        }
        b1.apply(&mut w1).unwrap();

        let mut b2 = EffectBuffer::new();
        for id in w2.entity_vec() {
            compiled.run(&w2, id, &mut b2, true).unwrap();
        }
        b2.apply(&mut w2).unwrap();
    }
    assert_eq!(w1.rows(), w2.rows());
}
