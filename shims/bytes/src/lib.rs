//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network registry, so this workspace ships
//! a minimal local implementation of the exact API surface `gamedb-persist`
//! consumes: [`Bytes`] (cheaply cloneable immutable buffer with a read
//! cursor), [`BytesMut`] (growable write buffer), and the [`Buf`] /
//! [`BufMut`] traits with the little-endian accessors the snapshot / WAL
//! encoders use. Semantics match the real crate for this subset.

use std::ops::Deref;
use std::sync::Arc;

/// Read side: a consuming cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write side: append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            pos: 0,
        }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// Growable write buffer; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(42);
        w.put_i64_le(-5);
        w.put_f32_le(1.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 4 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(&r[..], b"hi");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from_static(b"alpha");
        let mut b = a.clone();
        assert_eq!(a, b);
        b.get_u8();
        assert_eq!(b, Bytes::from_static(b"lpha"));
        assert_eq!(a.len(), 5);
    }
}
