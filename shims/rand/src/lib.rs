//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng`] with `gen`, `gen_range`
//! (half-open ranges) and `gen_bool`. The generator is SplitMix64 —
//! deterministic per seed, which is all the workload generators and
//! benches rely on (they never ask for cryptographic quality).

/// Seed a generator from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from the "standard" distribution
    /// (unit-interval floats, uniform ints, fair bools).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range. Panics on empty ranges.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1)
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.gen::<f32>() * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.gen::<f64>() * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 generator — the workspace's deterministic workhorse.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
            let u = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}
