//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided — the
//! surface the tick executor uses to fan entity chunks out over worker
//! threads. Panics in workers propagate out of `scope` (std joins every
//! handle), which matches how the executor treats worker failure.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope`'s closure and to spawned workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. The closure receives the scope (unused by this
        /// workspace's callers, kept for crossbeam API parity).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope whose spawned threads all join before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_merge() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut partials = vec![0u64; 2];
        super::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(4).zip(partials.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
        })
        .unwrap();
        assert_eq!(partials.iter().sum::<u64>(), 36);
    }
}
