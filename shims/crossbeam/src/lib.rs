//! Offline stand-in for `crossbeam`, backed by the standard library.
//!
//! Two surfaces are provided:
//!
//! * [`thread::scope`] / `Scope::spawn` — what the tick executor uses to
//!   fan entity chunks out over worker threads. Panics in workers
//!   propagate out of `scope` (std joins every handle), which matches
//!   how the executor treats worker failure.
//! * [`channel::bounded`] — a bounded MPSC channel (Mutex + Condvar over
//!   a `VecDeque`) with blocking `send`/`recv`, `try_send`,
//!   `recv_timeout`, and crossbeam's disconnect semantics. This is the
//!   hand-off queue between the mutating tick thread and the background
//!   WAL writer: a full queue **blocks** the sender (backpressure), it
//!   never drops.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope`'s closure and to spawned workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. The closure receives the scope (unused by this
        /// workspace's callers, kept for crossbeam API parity).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope whose spawned threads all join before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Bounded MPSC channel, std-backed.
    //!
    //! Semantics mirror `crossbeam-channel`'s bounded flavor:
    //!
    //! * `send` blocks while the queue is full and the receiver is
    //!   alive; it fails (returning the value) once the receiver is
    //!   dropped.
    //! * `recv` blocks while the queue is empty and any sender is
    //!   alive; once every sender is dropped it drains the remaining
    //!   messages, then fails.
    //! * Messages are never dropped: everything successfully sent is
    //!   observable by the receiver (or returned in the send error).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// The receiver disconnected; the unsent value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` could not enqueue.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Queue at capacity (backpressure); the value is handed back.
        Full(T),
        /// Receiver dropped; the value is handed back.
        Disconnected(T),
    }

    /// Every sender disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Why a `recv_timeout` returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clonable (MPSC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; single consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel holding at most `cap` messages
    /// (`cap == 0` is clamped to 1 — rendezvous channels are not
    /// needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Fails only when the
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if !inner.receiver_alive {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .expect("channel poisoned");
            }
        }

        /// Enqueue without blocking; `Full` reports backpressure.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if !inner.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.queue.len() >= inner.cap {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel poisoned").queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // wake a blocked recv so it can observe the disconnect
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Fails once every sender is
        /// dropped **and** the queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .expect("channel poisoned");
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout` — the
        /// background writer's group-commit delay clock.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel poisoned");
                inner = guard;
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel poisoned").queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receiver_alive = false;
            // wake blocked senders so they can observe the disconnect
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, RecvTimeoutError, TryRecvError, TrySendError};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn scoped_threads_join_and_merge() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut partials = [0u64; 2];
        super::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(4).zip(partials.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
        })
        .unwrap();
        assert_eq!(partials.iter().sum::<u64>(), 36);
    }

    #[test]
    fn send_recv_preserves_fifo_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_reports_backpressure_without_dropping() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        // full: the value comes back, nothing is dropped
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    /// A full queue blocks `send` until the consumer drains — the
    /// backpressure contract the async WAL writer's commit path
    /// stands on (block, never drop).
    #[test]
    fn full_queue_blocks_send_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sent_second = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.send(1).unwrap(); // blocks: queue is full
                sent_second.store(true, Ordering::SeqCst);
            });
            // while the queue stays full, the send cannot complete
            std::thread::sleep(Duration::from_millis(40));
            assert!(
                !sent_second.load(Ordering::SeqCst),
                "send must block while the queue is full"
            );
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1), "blocked send completes after drain");
        });
        assert!(sent_second.load(Ordering::SeqCst));
    }

    #[test]
    fn dropping_all_senders_drains_then_disconnects() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send("a").unwrap();
        tx2.send("b").unwrap();
        drop(tx);
        drop(tx2);
        // queued messages survive the disconnect...
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        // ...then the channel reports closed
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_receiver_fails_send_and_returns_value() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpsc_fan_in_delivers_every_message() {
        let (tx, rx) = bounded(4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let txc = tx.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        txc.send(t * 1_000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got.len(), 200, "nothing dropped under contention");
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), 200, "nothing duplicated either");
        });
    }
}
