//! Offline stand-in for `criterion`: a small wall-clock benchmark harness
//! with the API subset the bench crate uses (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`,
//! `bench_function`, `Bencher::iter`, `black_box`, `BenchmarkId`).
//!
//! Measurement model: each sample times a batch of iterations sized so a
//! sample takes ≳1 ms (adaptive batching), and the reported figure is the
//! median per-iteration time over `sample_size` samples. No statistics
//! beyond that — enough to compare access paths by order of magnitude,
//! which is what the experiment benches assert.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Runs closures under timing; passed to bench bodies.
pub struct Bencher {
    /// Median per-iteration nanoseconds of the last run.
    last_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, batching iterations adaptively per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow until one batch costs >= ~1 ms.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(2) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns = samples[samples.len() / 2];
    }

    /// Time `routine` on a fresh `setup()` product per iteration; only
    /// the routine is measured.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size.max(2));
        for _ in 0..self.sample_size.max(2) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns = samples[samples.len() / 2];
    }

    /// `iter_batched` with per-iteration setup (batch size ignored).
    pub fn iter_batched<I, O, S, F>(&mut self, setup: S, routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter_with_setup(setup, routine)
    }
}

/// Batch sizing hint (accepted for API parity, unused).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's knob; here: median window size).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API parity; this harness sizes batches adaptively.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.name, b.last_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            last_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.name, b.last_ns);
        self
    }

    fn report(&mut self, bench: &str, ns: f64) {
        let line = format!("{}/{:<40} time: {}", self.name, bench, human_time(ns));
        println!("{line}");
        self.criterion.results.push((format!("{}/{bench}", self.name), ns));
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle; one per process, threaded through groups.
#[derive(Default)]
pub struct Criterion {
    /// `(group/bench, median ns)` per finished benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.starts_with("g/sum/10"));
        assert!(c.results[0].1 > 0.0);
    }
}
