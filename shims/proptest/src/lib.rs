//! Offline stand-in for `proptest`.
//!
//! The build environment has no crate registry, so this workspace carries a
//! small generation-only property-testing harness with proptest's API shape:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, [`prop_oneof!`], `collection::vec` / `hash_set`,
//! `option::of`, regex-literal string strategies, and `any::<T>()`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case reports its case number and message
//!   but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from its
//!   module path and name, so CI failures reproduce locally.
//! * Regex strategies support the subset the tests use: literals, char
//!   classes with ranges, `\PC` (printable), and `{m,n}` / `?` / `*` / `+`
//!   quantifiers.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{hash_set, vec, SizeRange};
}

pub mod option {
    pub use crate::strategy::of;
}

pub mod arbitrary {
    pub use crate::strategy::{any, Any};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0..100i32, b in 0..100i32) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..__pt_config.cases {
                    $( let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __pt_rng); )*
                    let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __pt_case + 1, __pt_config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
