//! Generation-only strategies: the value-producing half of proptest.

use std::collections::HashSet;
use std::hash::Hash;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
///
/// Object-safe core (`new_value`) plus `Sized` combinators, mirroring the
/// real crate's `Strategy` so test code compiles unchanged.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Produce a value, then use it to pick a second strategy to draw from.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive structures: `self` is the leaf case, `recurse` builds a
    /// branch from a strategy for the nested level. `depth` bounds nesting;
    /// the size hints are accepted for API parity.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth.max(1) {
            let branch = recurse(current.clone()).boxed();
            current = Union::new(vec![base.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erase (cheap to clone; strategies are immutable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

// ---- primitive ranges ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---- tuples ----

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- collections ----

/// Element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet`s; may undershoot the requested size when the
/// element space is small (the real crate retries with a cap, as do we).
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// `proptest::collection::hash_set`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// `proptest::option::of` — `Some` ~80% of the time.
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(5) == 0 {
            None
        } else {
            Some(self.0.new_value(rng))
        }
    }
}

pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy(element)
}

// ---- any::<T>() ----

/// Marker strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` for the primitive types tests ask for.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue {
    fn generate(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

impl ArbitraryValue for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f32 {
    fn generate(rng: &mut TestRng) -> f32 {
        rng.unit() as f32
    }
}

impl ArbitraryValue for f64 {
    fn generate(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

// ---- regex-literal string strategies ----

/// String literals act as regex generators, supporting the subset used in
/// this workspace: plain chars, `[...]` classes with ranges, `\PC`
/// (printable non-control), and `{m,n}` / `{n}` / `?` / `*` / `+`
/// quantifiers. Unparseable patterns degrade to literal strings.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

fn printable() -> Vec<char> {
    (0x20u8..0x7f).map(|b| b as char).collect()
}

fn parse_pattern(pattern: &str) -> Option<Vec<Atom>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i + 1..].iter().position(|&c| c == ']')? + i + 1;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        if lo > hi {
                            return None;
                        }
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                // \PC — "not a control character"; approximate as printable
                // ASCII. Other escapes produce the escaped char literally.
                if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' {
                    i += 3;
                    printable()
                } else if i + 1 < chars.len() {
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                } else {
                    return None;
                }
            }
            '(' | ')' | '|' => return None, // groups/alternation unsupported
            c => {
                i += 1;
                vec![c]
            }
        };
        if choices.is_empty() {
            return None;
        }
        // optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..].iter().position(|&c| c == '}')? + i + 1;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n: usize = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        if max < min {
            return None;
        }
        atoms.push(Atom { choices, min, max });
    }
    Some(atoms)
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse_pattern(pattern) {
        Some(atoms) => {
            let mut out = String::new();
            for atom in &atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
        None => pattern.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0usize..5).new_value(&mut r);
            assert!(v < 5);
            let f = (-1.0f32..1.0).new_value(&mut r);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = ((0..3), (10i64..12)).new_value(&mut r);
            assert!(a < 3 && (10..12).contains(&b));
        }
    }

    #[test]
    fn vec_and_map() {
        let mut r = rng();
        let strat = vec((0u32..10).prop_map(|x| x * 2), 2..5);
        for _ in 0..50 {
            let v = strat.new_value(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn regex_class_and_reps() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_.:-]{0,8}".new_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let g = "\\PC{0,80}".new_value(&mut r);
            assert!(g.len() <= 80);
            assert!(g.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_covers_arms() {
        let mut r = rng();
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.new_value(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(()).prop_map(|_| Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.new_value(&mut r);
            assert!(depth(&t) <= 5);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node);
    }
}
