//! Config, RNG, and failure type for the mini proptest harness.

use std::fmt;

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (carried out of the case closure by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// SplitMix64 RNG, seeded deterministically from the test's path so runs
/// are reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            });
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Unit-interval f64.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
