//! The [`SpatialIndex`] trait and a brute-force reference implementation.
//!
//! The paper observes that "game developers often rely on indices to speed
//! up computations that involve relationships between pairs of objects",
//! naming BSP trees and octrees. Every index in this crate implements this
//! one trait so that the query engine (and the E3 experiment) can swap them
//! freely. [`BruteForce`] is the O(n) oracle: correct by construction and
//! used as the baseline both in benchmarks and in property tests.

use crate::geom::{Aabb, Vec2};

/// Identifier for an indexed object. The engine crate maps its entity ids
/// onto these.
pub type ItemId = u64;

/// A dynamic point index over a 2-D game world.
///
/// Implementations must tolerate duplicate positions and must treat
/// `update` of an unknown id as an insert (games spawn and move entities
/// in the same tick; forcing callers to distinguish is a foot-gun).
pub trait SpatialIndex {
    /// Insert `id` at `pos`. If `id` is already present it is moved.
    fn insert(&mut self, id: ItemId, pos: Vec2);

    /// Remove `id`; returns `true` if it was present.
    fn remove(&mut self, id: ItemId) -> bool;

    /// Move `id` to `pos` (inserts if absent).
    fn update(&mut self, id: ItemId, pos: Vec2) {
        self.insert(id, pos);
    }

    /// Current position of `id`, if present.
    fn position(&self, id: ItemId) -> Option<Vec2>;

    /// Append every id within the closed disk `(center, radius)` to `out`.
    /// `out` is *not* cleared: callers reuse buffers across queries.
    fn query_range(&self, center: Vec2, radius: f32, out: &mut Vec<ItemId>);

    /// Append every id inside the box to `out` (closed-interval semantics).
    fn query_aabb(&self, bounds: &Aabb, out: &mut Vec<ItemId>);

    /// Append the `k` nearest ids to `center` to `out`, closest first.
    /// Ties are broken by id for determinism.
    fn query_knn(&self, center: Vec2, k: usize, out: &mut Vec<ItemId>);

    /// Number of indexed items.
    fn len(&self) -> usize;

    /// True when the index holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove everything.
    fn clear(&mut self);

    /// The id of the nearest item to `center` other than `exclude`
    /// (games constantly ask "nearest enemy that is not me").
    fn nearest_excluding(&self, center: Vec2, exclude: ItemId) -> Option<ItemId> {
        let mut out = Vec::with_capacity(2);
        self.query_knn(center, 2, &mut out);
        out.into_iter().find(|&id| id != exclude).or(None)
    }
}

/// Sort knn candidates by (distance, id) and truncate to `k`.
///
/// Shared by implementations that collect a superset of candidates.
pub(crate) fn finish_knn(
    center: Vec2,
    k: usize,
    candidates: &mut [(f32, ItemId)],
    out: &mut Vec<ItemId>,
) {
    let _ = center;
    candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    out.extend(candidates.iter().take(k).map(|&(_, id)| id));
}

/// O(n)-per-query reference index: a flat vector of `(id, pos)` pairs.
///
/// This is both the correctness oracle for property tests and the
/// "no index" baseline that the paper's Ω(n²) script complexity argument
/// assumes (n objects each scanning all n objects).
#[derive(Debug, Default, Clone)]
pub struct BruteForce {
    items: Vec<(ItemId, Vec2)>,
}

impl BruteForce {
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterate over all `(id, position)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, Vec2)> + '_ {
        self.items.iter().copied()
    }

    fn find(&self, id: ItemId) -> Option<usize> {
        self.items.iter().position(|&(i, _)| i == id)
    }
}

impl SpatialIndex for BruteForce {
    fn insert(&mut self, id: ItemId, pos: Vec2) {
        match self.find(id) {
            Some(i) => self.items[i].1 = pos,
            None => self.items.push((id, pos)),
        }
    }

    fn remove(&mut self, id: ItemId) -> bool {
        match self.find(id) {
            Some(i) => {
                self.items.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn position(&self, id: ItemId) -> Option<Vec2> {
        self.find(id).map(|i| self.items[i].1)
    }

    fn query_range(&self, center: Vec2, radius: f32, out: &mut Vec<ItemId>) {
        let r2 = radius * radius;
        out.extend(
            self.items
                .iter()
                .filter(|&&(_, p)| p.dist2(center) <= r2)
                .map(|&(id, _)| id),
        );
    }

    fn query_aabb(&self, bounds: &Aabb, out: &mut Vec<ItemId>) {
        out.extend(
            self.items
                .iter()
                .filter(|&&(_, p)| bounds.contains(p))
                .map(|&(id, _)| id),
        );
    }

    fn query_knn(&self, center: Vec2, k: usize, out: &mut Vec<ItemId>) {
        let mut cands: Vec<(f32, ItemId)> = self
            .items
            .iter()
            .map(|&(id, p)| (p.dist2(center), id))
            .collect();
        finish_knn(center, k, &mut cands, out);
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    #[test]
    fn insert_update_remove() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(0.0, 0.0));
        idx.insert(2, v(5.0, 5.0));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), Some(v(0.0, 0.0)));

        // insert with same id moves the item
        idx.insert(1, v(1.0, 1.0));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), Some(v(1.0, 1.0)));

        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.position(1), None);
    }

    #[test]
    fn range_query_closed_disk() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(0.0, 0.0));
        idx.insert(2, v(3.0, 4.0)); // dist 5 exactly
        idx.insert(3, v(6.0, 0.0));
        let mut out = vec![];
        idx.query_range(v(0.0, 0.0), 5.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn knn_orders_by_distance_then_id() {
        let mut idx = BruteForce::new();
        idx.insert(10, v(1.0, 0.0));
        idx.insert(5, v(2.0, 0.0));
        idx.insert(7, v(1.0, 0.0)); // same distance as 10, lower id
        let mut out = vec![];
        idx.query_knn(v(0.0, 0.0), 2, &mut out);
        assert_eq!(out, vec![7, 10]);
    }

    #[test]
    fn knn_with_k_larger_than_population() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(1.0, 1.0));
        let mut out = vec![];
        idx.query_knn(Vec2::ZERO, 10, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn nearest_excluding_self() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(0.0, 0.0));
        idx.insert(2, v(1.0, 0.0));
        idx.insert(3, v(2.0, 0.0));
        assert_eq!(idx.nearest_excluding(v(0.0, 0.0), 1), Some(2));
    }

    #[test]
    fn aabb_query() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(1.0, 1.0));
        idx.insert(2, v(9.0, 9.0));
        let mut out = vec![];
        idx.query_aabb(&Aabb::from_size(5.0, 5.0), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn clear_empties() {
        let mut idx = BruteForce::new();
        idx.insert(1, v(0.0, 0.0));
        idx.clear();
        assert!(idx.is_empty());
    }
}
