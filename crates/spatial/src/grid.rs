//! Uniform grid (spatial hash) index.
//!
//! The workhorse index for open-world games with roughly uniform entity
//! density: O(1) updates and range queries that touch only the cells
//! overlapping the query disk. Degrades when entities cluster into few
//! cells — exactly the regime where the tree indices win (experiment E3).

use std::collections::HashMap;

use crate::geom::{Aabb, Vec2};
use crate::index::{finish_knn, ItemId, SpatialIndex};

/// Key of a grid cell. Positions are divided by the cell size and floored,
/// so the grid is unbounded and supports negative coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    cx: i32,
    cy: i32,
}

/// A uniform grid over 2-D points.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell_size: f32,
    inv_cell: f32,
    cells: HashMap<CellKey, Vec<ItemId>>,
    positions: HashMap<ItemId, Vec2>,
}

impl UniformGrid {
    /// Create a grid with the given cell edge length.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f32) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite, got {cell_size}"
        );
        UniformGrid {
            cell_size,
            inv_cell: 1.0 / cell_size,
            cells: HashMap::new(),
            positions: HashMap::new(),
        }
    }

    /// Cell edge length this grid was built with.
    pub fn cell_size(&self) -> f32 {
        self.cell_size
    }

    /// Number of non-empty cells (diagnostic; used by E3's density report).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Mean number of items per occupied cell.
    pub fn mean_occupancy(&self) -> f32 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.positions.len() as f32 / self.cells.len() as f32
        }
    }

    #[inline]
    fn key_for(&self, p: Vec2) -> CellKey {
        CellKey {
            cx: (p.x * self.inv_cell).floor() as i32,
            cy: (p.y * self.inv_cell).floor() as i32,
        }
    }

    fn unlink(&mut self, id: ItemId, pos: Vec2) {
        let key = self.key_for(pos);
        if let Some(v) = self.cells.get_mut(&key) {
            if let Some(i) = v.iter().position(|&x| x == id) {
                v.swap_remove(i);
            }
            if v.is_empty() {
                self.cells.remove(&key);
            }
        }
    }

    /// Visit each cell overlapping the box and run `f` on its item list.
    fn for_cells_in_aabb(&self, bounds: &Aabb, mut f: impl FnMut(&[ItemId])) {
        let lo = self.key_for(bounds.min);
        let hi = self.key_for(bounds.max);
        for cx in lo.cx..=hi.cx {
            for cy in lo.cy..=hi.cy {
                if let Some(v) = self.cells.get(&CellKey { cx, cy }) {
                    f(v);
                }
            }
        }
    }
}

impl SpatialIndex for UniformGrid {
    fn insert(&mut self, id: ItemId, pos: Vec2) {
        debug_assert!(pos.is_finite(), "non-finite position for item {id}");
        if let Some(old) = self.positions.insert(id, pos) {
            let same_cell = self.key_for(old) == self.key_for(pos);
            if same_cell {
                return;
            }
            self.unlink(id, old);
        }
        let key = self.key_for(pos);
        self.cells.entry(key).or_default().push(id);
    }

    fn remove(&mut self, id: ItemId) -> bool {
        match self.positions.remove(&id) {
            Some(pos) => {
                self.unlink(id, pos);
                true
            }
            None => false,
        }
    }

    fn position(&self, id: ItemId) -> Option<Vec2> {
        self.positions.get(&id).copied()
    }

    fn query_range(&self, center: Vec2, radius: f32, out: &mut Vec<ItemId>) {
        if radius < 0.0 {
            return;
        }
        let bounds = Aabb::around_circle(center, radius);
        let r2 = radius * radius;
        self.for_cells_in_aabb(&bounds, |items| {
            for &id in items {
                if self.positions[&id].dist2(center) <= r2 {
                    out.push(id);
                }
            }
        });
    }

    fn query_aabb(&self, bounds: &Aabb, out: &mut Vec<ItemId>) {
        self.for_cells_in_aabb(bounds, |items| {
            for &id in items {
                if bounds.contains(self.positions[&id]) {
                    out.push(id);
                }
            }
        });
    }

    fn query_knn(&self, center: Vec2, k: usize, out: &mut Vec<ItemId>) {
        if k == 0 || self.positions.is_empty() {
            return;
        }
        // Expanding ring search: examine cells in growing square shells
        // around the center until we have k candidates whose distances are
        // all certainly smaller than anything in unexamined shells.
        let start = self.key_for(center);
        let mut cands: Vec<(f32, ItemId)> = Vec::new();
        // Rings beyond the occupied-cell bounding box cannot contain items,
        // so the Chebyshev distance to its corners bounds the search.
        let max_ring = self
            .cells
            .keys()
            .map(|k| (k.cx - start.cx).abs().max((k.cy - start.cy).abs()))
            .max()
            .unwrap_or(0);
        let mut ring = 0i32;
        loop {
            let mut visited_any = false;
            for cx in (start.cx - ring)..=(start.cx + ring) {
                for cy in (start.cy - ring)..=(start.cy + ring) {
                    // only the shell, not the interior (already visited)
                    if ring > 0
                        && (cx - start.cx).abs() != ring
                        && (cy - start.cy).abs() != ring
                    {
                        continue;
                    }
                    if let Some(items) = self.cells.get(&CellKey { cx, cy }) {
                        visited_any = true;
                        for &id in items {
                            cands.push((self.positions[&id].dist2(center), id));
                        }
                    }
                }
            }
            let _ = visited_any;
            // Distance below which everything in visited shells is complete:
            // points in unvisited shells are at least `ring * cell_size`
            // minus the offset of center within its cell away.
            let safe = (ring as f32 - 1.0).max(0.0) * self.cell_size;
            let safe2 = safe * safe;
            let complete = cands.iter().filter(|&&(d, _)| d <= safe2).count();
            if complete >= k || ring > max_ring {
                break;
            }
            if cands.len() >= self.positions.len() {
                break;
            }
            ring += 1;
        }
        finish_knn(center, k, &mut cands, out);
    }

    fn len(&self) -> usize {
        self.positions.len()
    }

    fn clear(&mut self) {
        self.cells.clear();
        self.positions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn zero_cell_size_panics() {
        UniformGrid::new(0.0);
    }

    #[test]
    fn insert_and_query() {
        let mut g = UniformGrid::new(10.0);
        g.insert(1, v(5.0, 5.0));
        g.insert(2, v(15.0, 5.0));
        g.insert(3, v(100.0, 100.0));
        let mut out = vec![];
        g.query_range(v(0.0, 0.0), 20.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut g = UniformGrid::new(4.0);
        g.insert(1, v(-7.5, -3.0));
        g.insert(2, v(7.5, 3.0));
        let mut out = vec![];
        g.query_range(v(-8.0, -3.0), 1.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn update_moves_between_cells() {
        let mut g = UniformGrid::new(10.0);
        g.insert(1, v(5.0, 5.0));
        g.update(1, v(95.0, 95.0));
        assert_eq!(g.len(), 1);
        let mut out = vec![];
        g.query_range(v(5.0, 5.0), 2.0, &mut out);
        assert!(out.is_empty());
        g.query_range(v(95.0, 95.0), 2.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn update_within_same_cell() {
        let mut g = UniformGrid::new(10.0);
        g.insert(1, v(1.0, 1.0));
        g.update(1, v(2.0, 2.0));
        assert_eq!(g.position(1), Some(v(2.0, 2.0)));
        assert_eq!(g.occupied_cells(), 1);
    }

    #[test]
    fn remove_cleans_empty_cells() {
        let mut g = UniformGrid::new(10.0);
        g.insert(1, v(1.0, 1.0));
        assert_eq!(g.occupied_cells(), 1);
        assert!(g.remove(1));
        assert_eq!(g.occupied_cells(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn knn_finds_across_cells() {
        let mut g = UniformGrid::new(5.0);
        g.insert(1, v(0.0, 0.0));
        g.insert(2, v(30.0, 0.0));
        g.insert(3, v(31.0, 0.0));
        g.insert(4, v(60.0, 0.0));
        let mut out = vec![];
        g.query_knn(v(29.0, 0.0), 2, &mut out);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn knn_zero_k() {
        let mut g = UniformGrid::new(5.0);
        g.insert(1, v(0.0, 0.0));
        let mut out = vec![];
        g.query_knn(Vec2::ZERO, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let mut g = UniformGrid::new(5.0);
        g.insert(1, v(0.0, 0.0));
        let mut out = vec![];
        g.query_range(Vec2::ZERO, -1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mean_occupancy_reporting() {
        let mut g = UniformGrid::new(10.0);
        g.insert(1, v(1.0, 1.0));
        g.insert(2, v(2.0, 2.0));
        g.insert(3, v(55.0, 55.0));
        assert_eq!(g.occupied_cells(), 2);
        assert!((g.mean_occupancy() - 1.5).abs() < 1e-6);
    }
}
