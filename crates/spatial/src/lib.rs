//! # gamedb-spatial
//!
//! Spatial data structures for computer games, as surveyed in
//! *Database Research in Computer Games* (SIGMOD 2009): "many games use
//! traditional spatial indices such as BSP trees or Octrees \[and\]
//! navigational meshes … often annotated by a designer or technical artist
//! to include extra semantic information".
//!
//! ## Contents
//!
//! * [`geom`] — vectors and bounding boxes (2-D and 3-D).
//! * [`index`] — the [`SpatialIndex`] trait plus the brute-force oracle.
//! * [`grid`] — uniform grid / spatial hash ([`UniformGrid`]).
//! * [`bsp`] — dynamic BSP (kd) tree ([`BspTree`]).
//! * [`quadtree`] — region quadtree ([`Quadtree`]).
//! * [`octree`] — 3-D octree over [`geom::Vec3`] points ([`Octree`]).
//! * [`navmesh`] — annotated navigation meshes with A* ([`NavMesh`]).
//! * [`pathfind`] — generic A* ([`pathfind::astar`]).
//!
//! All point indices implement [`SpatialIndex`], so engines (and the E3
//! index-comparison experiment) can swap implementations freely:
//!
//! ```
//! use gamedb_spatial::{SpatialIndex, UniformGrid, Vec2};
//!
//! let mut idx = UniformGrid::new(8.0);
//! idx.insert(1, Vec2::new(3.0, 4.0));
//! idx.insert(2, Vec2::new(30.0, 40.0));
//! let mut near = Vec::new();
//! idx.query_range(Vec2::ZERO, 10.0, &mut near);
//! assert_eq!(near, vec![1]);
//! ```

pub mod bsp;
pub mod geom;
pub mod grid;
pub mod index;
pub mod navmesh;
pub mod octree;
pub mod pathfind;
pub mod quadtree;

pub use bsp::BspTree;
pub use geom::{Aabb, Aabb3, Vec2, Vec3};
pub use grid::UniformGrid;
pub use index::{BruteForce, ItemId, SpatialIndex};
pub use navmesh::{Annotation, CostProfile, NavMesh, NavMeshError, NavPath, Polygon};
pub use octree::Octree;
pub use quadtree::Quadtree;
