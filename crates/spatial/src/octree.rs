//! Octree over 3-D points — the index the paper names for volumetric game
//! worlds (space games, flight, full-3D collision).
//!
//! Structurally the 3-D sibling of [`crate::quadtree::Quadtree`]; it is
//! exercised by the EVE-style solar-system workload in experiment E6,
//! where ships move in three dimensions.

use std::collections::HashMap;

use crate::geom::{Aabb3, Vec3};
use crate::index::ItemId;

#[derive(Debug, Clone)]
enum Node {
    Leaf { items: Vec<(ItemId, Vec3)> },
    Inner { children: Box<[Node; 8]> },
}

fn empty_children() -> Box<[Node; 8]> {
    Box::new([
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
        Node::Leaf { items: Vec::new() },
    ])
}

/// A point octree over a fixed world cube.
#[derive(Debug, Clone)]
pub struct Octree {
    bounds: Aabb3,
    root: Node,
    outside: Vec<(ItemId, Vec3)>,
    positions: HashMap<ItemId, Vec3>,
    leaf_capacity: usize,
    max_depth: usize,
}

impl Octree {
    /// Create an octree covering `bounds`.
    pub fn new(bounds: Aabb3, leaf_capacity: usize, max_depth: usize) -> Self {
        Octree {
            bounds,
            root: Node::Leaf { items: Vec::new() },
            outside: Vec::new(),
            positions: HashMap::new(),
            leaf_capacity: leaf_capacity.max(1),
            max_depth: max_depth.max(1),
        }
    }

    /// Octree over the cube `[0,0,0]..[s,s,s]` with defaults for ~10k items.
    pub fn with_cube(s: f32) -> Self {
        Octree::new(Aabb3::cube(s), 8, 10)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current position of `id`, if present.
    pub fn position(&self, id: ItemId) -> Option<Vec3> {
        self.positions.get(&id).copied()
    }

    fn child_index(b: &Aabb3, p: Vec3) -> usize {
        let c = b.center();
        usize::from(p.x >= c.x) | (usize::from(p.y >= c.y) << 1) | (usize::from(p.z >= c.z) << 2)
    }

    fn insert_node(
        node: &mut Node,
        bounds: &Aabb3,
        id: ItemId,
        pos: Vec3,
        depth: usize,
        cap: usize,
        max_depth: usize,
    ) {
        match node {
            Node::Leaf { items } => {
                items.push((id, pos));
                if items.len() > cap && depth < max_depth {
                    let taken = std::mem::take(items);
                    *node = Node::Inner {
                        children: empty_children(),
                    };
                    for (iid, ipos) in taken {
                        Self::insert_node(node, bounds, iid, ipos, depth, cap, max_depth);
                    }
                }
            }
            Node::Inner { children } => {
                let ci = Self::child_index(bounds, pos);
                let cb = bounds.octant(ci);
                Self::insert_node(&mut children[ci], &cb, id, pos, depth + 1, cap, max_depth);
            }
        }
    }

    fn remove_node(node: &mut Node, bounds: &Aabb3, id: ItemId, pos: Vec3) -> bool {
        match node {
            Node::Leaf { items } => match items.iter().position(|&(x, _)| x == id) {
                Some(i) => {
                    items.swap_remove(i);
                    true
                }
                None => false,
            },
            Node::Inner { children } => {
                let ci = Self::child_index(bounds, pos);
                let cb = bounds.octant(ci);
                Self::remove_node(&mut children[ci], &cb, id, pos)
            }
        }
    }

    fn range_node(node: &Node, bounds: &Aabb3, center: Vec3, r2: f32, out: &mut Vec<ItemId>) {
        if bounds.dist2_to_point(center) > r2 {
            return;
        }
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    if p.dist2(center) <= r2 {
                        out.push(id);
                    }
                }
            }
            Node::Inner { children } => {
                for ci in 0..8 {
                    let cb = bounds.octant(ci);
                    Self::range_node(&children[ci], &cb, center, r2, out);
                }
            }
        }
    }

    /// Insert `id` at `pos` (moves it when already present).
    pub fn insert(&mut self, id: ItemId, pos: Vec3) {
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.positions.insert(id, pos);
        if self.bounds.contains(pos) {
            let bounds = self.bounds;
            Self::insert_node(
                &mut self.root,
                &bounds,
                id,
                pos,
                0,
                self.leaf_capacity,
                self.max_depth,
            );
        } else {
            self.outside.push((id, pos));
        }
    }

    /// Remove `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        match self.positions.remove(&id) {
            Some(pos) => {
                if self.bounds.contains(pos) {
                    let bounds = self.bounds;
                    let removed = Self::remove_node(&mut self.root, &bounds, id, pos);
                    debug_assert!(removed, "positions map and octree out of sync");
                } else if let Some(i) = self.outside.iter().position(|&(x, _)| x == id) {
                    self.outside.swap_remove(i);
                }
                true
            }
            None => false,
        }
    }

    /// Move `id` to `pos` (inserts if absent).
    pub fn update(&mut self, id: ItemId, pos: Vec3) {
        self.insert(id, pos);
    }

    /// Append every id within the closed ball `(center, radius)` to `out`.
    pub fn query_range(&self, center: Vec3, radius: f32, out: &mut Vec<ItemId>) {
        if radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        Self::range_node(&self.root, &self.bounds, center, r2, out);
        out.extend(
            self.outside
                .iter()
                .filter(|&&(_, p)| p.dist2(center) <= r2)
                .map(|&(id, _)| id),
        );
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.root = Node::Leaf { items: Vec::new() };
        self.outside.clear();
        self.positions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3::new(x, y, z)
    }

    #[test]
    fn insert_and_range_query() {
        let mut o = Octree::with_cube(100.0);
        o.insert(1, p(10.0, 10.0, 10.0));
        o.insert(2, p(12.0, 10.0, 10.0));
        o.insert(3, p(90.0, 90.0, 90.0));
        let mut out = vec![];
        o.query_range(p(11.0, 10.0, 10.0), 2.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn splits_preserve_all_items() {
        let mut o = Octree::new(Aabb3::cube(64.0), 2, 6);
        for i in 0..200 {
            let f = i as f32;
            o.insert(i, p(f % 8.0 * 8.0, (f / 8.0) % 8.0 * 8.0, (f / 64.0) * 8.0));
        }
        assert_eq!(o.len(), 200);
        let mut out = vec![];
        o.query_range(p(32.0, 32.0, 32.0), 1000.0, &mut out);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn update_moves_item_between_octants() {
        let mut o = Octree::with_cube(100.0);
        o.insert(1, p(10.0, 10.0, 10.0));
        o.update(1, p(90.0, 90.0, 90.0));
        assert_eq!(o.len(), 1);
        let mut out = vec![];
        o.query_range(p(10.0, 10.0, 10.0), 5.0, &mut out);
        assert!(out.is_empty());
        o.query_range(p(90.0, 90.0, 90.0), 5.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn out_of_bounds_overflow() {
        let mut o = Octree::with_cube(10.0);
        o.insert(1, p(-5.0, 0.0, 0.0));
        let mut out = vec![];
        o.query_range(p(-5.0, 0.0, 0.0), 1.0, &mut out);
        assert_eq!(out, vec![1]);
        assert!(o.remove(1));
        assert!(o.is_empty());
    }

    #[test]
    fn coincident_points_respect_max_depth() {
        let mut o = Octree::new(Aabb3::cube(8.0), 1, 3);
        for i in 0..30 {
            o.insert(i, p(4.0, 4.0, 4.0));
        }
        let mut out = vec![];
        o.query_range(p(4.0, 4.0, 4.0), 0.01, &mut out);
        assert_eq!(out.len(), 30);
    }

    #[test]
    fn sphere_query_boundary_inclusive() {
        let mut o = Octree::with_cube(100.0);
        o.insert(1, p(0.0, 0.0, 0.0));
        o.insert(2, p(3.0, 4.0, 0.0)); // distance exactly 5
        let mut out = vec![];
        o.query_range(p(0.0, 0.0, 0.0), 5.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }
}
