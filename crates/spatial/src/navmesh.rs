//! Navigation meshes with designer annotations.
//!
//! The paper singles out navmeshes as a spatial structure "that may not be
//! familiar to a database audience": a mesh of convex polygons describing
//! where characters may walk, whose polygons designers annotate with
//! semantic attributes — "whether a position is a good hiding place or is
//! easily defensible". This module implements exactly that: a polygon mesh
//! with shared-edge adjacency, per-polygon [`Annotation`]s, annotation-aware
//! A* pathfinding, and the semantic queries ("best hiding spot near p")
//! that the annotations exist to answer.

use std::collections::HashMap;

use crate::geom::Vec2;
use crate::pathfind::{astar, PathResult};

/// Identifier of a polygon within a [`NavMesh`].
pub type PolyId = usize;

/// Designer-authored semantic annotation on a navmesh polygon.
///
/// All scalar fields are conventionally in `[0, 1]`; they are free-form
/// designer data and the mesh does not enforce a range. `tags` carries
/// game-specific labels ("sniper_nest", "spawn_safe") that scripts query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Annotation {
    /// How well a character in this polygon is hidden from view.
    pub cover: f32,
    /// How dangerous the polygon is (lava, mob density, sniper lines).
    pub danger: f32,
    /// How easily the polygon is defended (chokepoints, high ground).
    pub defensibility: f32,
    /// Free-form designer tags.
    pub tags: Vec<String>,
}

impl Annotation {
    /// A neutral annotation (no cover, no danger, not defensible).
    pub fn neutral() -> Self {
        Self::default()
    }

    /// True when the annotation carries the given tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

/// A convex polygon with counter-clockwise vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    verts: Vec<Vec2>,
}

impl Polygon {
    /// Build a polygon from vertices. Vertices are reordered to
    /// counter-clockwise if given clockwise.
    ///
    /// # Errors
    /// Returns an error when fewer than 3 vertices are supplied, a vertex
    /// is non-finite, or the polygon is not convex.
    pub fn new(mut verts: Vec<Vec2>) -> Result<Self, NavMeshError> {
        if verts.len() < 3 {
            return Err(NavMeshError::DegeneratePolygon(verts.len()));
        }
        if verts.iter().any(|v| !v.is_finite()) {
            return Err(NavMeshError::NonFiniteVertex);
        }
        // signed area via shoelace; negative => clockwise => reverse
        let area2: f32 = verts
            .windows(2)
            .map(|w| w[0].cross(w[1]))
            .sum::<f32>()
            + verts[verts.len() - 1].cross(verts[0]);
        if area2.abs() < 1e-9 {
            return Err(NavMeshError::DegeneratePolygon(verts.len()));
        }
        if area2 < 0.0 {
            verts.reverse();
        }
        let poly = Polygon { verts };
        if !poly.is_convex() {
            return Err(NavMeshError::NotConvex);
        }
        Ok(poly)
    }

    /// Axis-aligned unit-friendly rectangle helper.
    pub fn rect(min: Vec2, max: Vec2) -> Self {
        Polygon::new(vec![
            min,
            Vec2::new(max.x, min.y),
            max,
            Vec2::new(min.x, max.y),
        ])
        .expect("axis-aligned rectangle is always a valid polygon")
    }

    fn is_convex(&self) -> bool {
        let n = self.verts.len();
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            let c = self.verts[(i + 2) % n];
            if (b - a).cross(c - b) < -1e-6 {
                return false;
            }
        }
        true
    }

    /// The vertices in counter-clockwise order.
    pub fn vertices(&self) -> &[Vec2] {
        &self.verts
    }

    /// Arithmetic mean of the vertices. For convex polygons this is always
    /// an interior point, which is all pathfinding needs.
    pub fn centroid(&self) -> Vec2 {
        let sum = self
            .verts
            .iter()
            .fold(Vec2::ZERO, |acc, &v| acc + v);
        sum / self.verts.len() as f32
    }

    /// True when `p` is inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.verts.len();
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            if (b - a).cross(p - a) < -1e-6 {
                return false;
            }
        }
        true
    }

    /// Edges as (start, end) pairs in CCW order.
    pub fn edges(&self) -> impl Iterator<Item = (Vec2, Vec2)> + '_ {
        let n = self.verts.len();
        (0..n).map(move |i| (self.verts[i], self.verts[(i + 1) % n]))
    }
}

/// Errors arising while constructing meshes and polygons.
#[derive(Debug, Clone, PartialEq)]
pub enum NavMeshError {
    /// Fewer than 3 vertices, or zero area.
    DegeneratePolygon(usize),
    /// A vertex coordinate was NaN or infinite.
    NonFiniteVertex,
    /// The vertex loop is not convex.
    NotConvex,
}

impl std::fmt::Display for NavMeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NavMeshError::DegeneratePolygon(n) => {
                write!(f, "degenerate polygon ({n} vertices or zero area)")
            }
            NavMeshError::NonFiniteVertex => write!(f, "polygon vertex is NaN or infinite"),
            NavMeshError::NotConvex => write!(f, "polygon is not convex"),
        }
    }
}

impl std::error::Error for NavMeshError {}

/// A polygon plus its designer annotation.
#[derive(Debug, Clone)]
struct NavPoly {
    polygon: Polygon,
    annotation: Annotation,
}

/// A shared edge between two adjacent polygons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Portal {
    pub a: Vec2,
    pub b: Vec2,
}

impl Portal {
    /// Midpoint of the portal edge — the waypoint paths route through.
    pub fn midpoint(&self) -> Vec2 {
        (self.a + self.b) * 0.5
    }
}

/// Weights governing how annotations shape path costs.
///
/// Edge cost between polygons `u → v` is
/// `distance * (1 + danger_weight·danger(v) - cover_bonus·cover(v))`,
/// clamped to at least `0.05 * distance` so costs stay positive and the
/// A* heuristic (scaled straight-line distance) stays admissible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    pub danger_weight: f32,
    pub cover_bonus: f32,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            danger_weight: 0.0,
            cover_bonus: 0.0,
        }
    }
}

impl CostProfile {
    /// Pure shortest path, ignoring annotations.
    pub fn shortest() -> Self {
        Self::default()
    }

    /// A cautious profile: strongly avoid danger, mildly prefer cover.
    pub fn cautious() -> Self {
        CostProfile {
            danger_weight: 4.0,
            cover_bonus: 0.25,
        }
    }

    fn multiplier(&self, ann: &Annotation) -> f32 {
        (1.0 + self.danger_weight * ann.danger - self.cover_bonus * ann.cover).max(0.05)
    }
}

/// A walkable path across the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct NavPath {
    /// Waypoints from start point to goal point inclusive, routed through
    /// portal midpoints.
    pub waypoints: Vec<Vec2>,
    /// Polygons traversed, in order.
    pub polys: Vec<PolyId>,
    /// Accumulated weighted cost.
    pub cost: f32,
    /// A* nodes expanded (diagnostic).
    pub expanded: usize,
}

impl NavPath {
    /// Total Euclidean length of the waypoint chain (unweighted).
    pub fn length(&self) -> f32 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].dist(w[1]))
            .sum()
    }
}

/// A navigation mesh: convex polygons, adjacency, annotations.
#[derive(Debug, Clone, Default)]
pub struct NavMesh {
    polys: Vec<NavPoly>,
    /// adjacency[p] = list of (neighbor poly, shared portal)
    adjacency: Vec<Vec<(PolyId, Portal)>>,
}

/// Quantize a coordinate for edge matching (1/1024 world-unit tolerance).
fn quant(v: Vec2) -> (i64, i64) {
    ((v.x * 1024.0).round() as i64, (v.y * 1024.0).round() as i64)
}

impl NavMesh {
    /// Create an empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a polygon with an annotation; adjacency to previously added
    /// polygons is discovered automatically through shared edges
    /// (endpoints matching within 1/1024 world unit).
    pub fn add_polygon(
        &mut self,
        polygon: Polygon,
        annotation: Annotation,
    ) -> PolyId {
        let id = self.polys.len();
        self.adjacency.push(Vec::new());
        // match against existing polygon edges
        for (other_id, other) in self.polys.iter().enumerate() {
            for (oa, ob) in other.polygon.edges() {
                for (na, nb) in polygon.edges() {
                    let fwd = quant(oa) == quant(nb) && quant(ob) == quant(na);
                    let bwd = quant(oa) == quant(na) && quant(ob) == quant(nb);
                    if fwd || bwd {
                        let portal = Portal { a: oa, b: ob };
                        self.adjacency[other_id].push((id, portal));
                        self.adjacency[id].push((other_id, portal));
                    }
                }
            }
        }
        self.polys.push(NavPoly {
            polygon,
            annotation,
        });
        id
    }

    /// Build a mesh from a tile grid: one square polygon per walkable cell.
    /// `annotate(x, y)` supplies the per-cell annotation (return
    /// [`Annotation::neutral`] for plain floor). This mirrors how studio
    /// tools rasterize walkable areas before simplification.
    pub fn from_tile_grid(
        width: usize,
        height: usize,
        cell: f32,
        mut walkable: impl FnMut(usize, usize) -> bool,
        mut annotate: impl FnMut(usize, usize) -> Annotation,
    ) -> Self {
        let mut mesh = NavMesh::new();
        for y in 0..height {
            for x in 0..width {
                if walkable(x, y) {
                    let min = Vec2::new(x as f32 * cell, y as f32 * cell);
                    let max = Vec2::new((x + 1) as f32 * cell, (y + 1) as f32 * cell);
                    mesh.add_polygon(Polygon::rect(min, max), annotate(x, y));
                }
            }
        }
        mesh
    }

    /// Number of polygons.
    pub fn len(&self) -> usize {
        self.polys.len()
    }

    /// True when the mesh has no polygons.
    pub fn is_empty(&self) -> bool {
        self.polys.is_empty()
    }

    /// The polygon geometry of `id`.
    pub fn polygon(&self, id: PolyId) -> &Polygon {
        &self.polys[id].polygon
    }

    /// The annotation of `id`.
    pub fn annotation(&self, id: PolyId) -> &Annotation {
        &self.polys[id].annotation
    }

    /// Mutable annotation access (designers repaint annotations live).
    pub fn annotation_mut(&mut self, id: PolyId) -> &mut Annotation {
        &mut self.polys[id].annotation
    }

    /// Neighbors of `id` with their portals.
    pub fn neighbors(&self, id: PolyId) -> &[(PolyId, Portal)] {
        &self.adjacency[id]
    }

    /// Find the polygon containing `p` (first match wins; meshes should
    /// not overlap).
    pub fn locate(&self, p: Vec2) -> Option<PolyId> {
        self.polys
            .iter()
            .position(|poly| poly.polygon.contains(p))
    }

    /// Find a path from `from` to `to` under the given cost profile.
    ///
    /// Returns `None` when either endpoint is off the mesh or no chain of
    /// adjacent polygons connects them.
    pub fn find_path(&self, from: Vec2, to: Vec2, profile: &CostProfile) -> Option<NavPath> {
        let start = self.locate(from)?;
        let goal = self.locate(to)?;
        if start == goal {
            return Some(NavPath {
                waypoints: vec![from, to],
                polys: vec![start],
                cost: from.dist(to) * profile.multiplier(&self.polys[goal].annotation),
                expanded: 0,
            });
        }
        // Precompute centroids for heuristic/cost.
        let centroids: Vec<Vec2> = self.polys.iter().map(|p| p.polygon.centroid()).collect();
        // Min multiplier keeps heuristic admissible under cover bonuses.
        let min_mult = self
            .polys
            .iter()
            .map(|p| profile.multiplier(&p.annotation))
            .fold(f32::INFINITY, f32::min)
            .clamp(0.05, 1.0);
        let result: PathResult = astar(
            start,
            goal,
            |n, out| {
                for &(next, portal) in &self.adjacency[n] {
                    let d = centroids[n].dist(portal.midpoint())
                        + portal.midpoint().dist(centroids[next]);
                    let mult = profile.multiplier(&self.polys[next].annotation);
                    out.push((next, d * mult));
                }
            },
            |n| centroids[n].dist(to) * min_mult,
        )?;

        // Waypoints: start, then portal midpoints between consecutive
        // polygons, then goal.
        let mut waypoints = vec![from];
        for w in result.nodes.windows(2) {
            let (u, v) = (w[0], w[1]);
            if let Some(&(_, portal)) = self.adjacency[u].iter().find(|&&(n, _)| n == v) {
                waypoints.push(portal.midpoint());
            }
        }
        waypoints.push(to);
        Some(NavPath {
            waypoints,
            polys: result.nodes,
            cost: result.cost,
            expanded: result.expanded,
        })
    }

    /// The polygon within `radius` of `near` with the highest cover value,
    /// if any has cover above zero — "find me a good hiding place".
    pub fn best_hiding_spot(&self, near: Vec2, radius: f32) -> Option<PolyId> {
        let r2 = radius * radius;
        self.polys
            .iter()
            .enumerate()
            .filter(|(_, p)| p.polygon.centroid().dist2(near) <= r2)
            .filter(|(_, p)| p.annotation.cover > 0.0)
            .max_by(|(ia, a), (ib, b)| {
                a.annotation
                    .cover
                    .partial_cmp(&b.annotation.cover)
                    .unwrap()
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
    }

    /// All polygons whose defensibility meets `threshold`, most defensible
    /// first.
    pub fn defensible_positions(&self, threshold: f32) -> Vec<PolyId> {
        let mut v: Vec<PolyId> = (0..self.polys.len())
            .filter(|&i| self.polys[i].annotation.defensibility >= threshold)
            .collect();
        v.sort_by(|&a, &b| {
            self.polys[b]
                .annotation
                .defensibility
                .partial_cmp(&self.polys[a].annotation.defensibility)
                .unwrap()
                .then(a.cmp(&b))
        });
        v
    }

    /// All polygons carrying `tag`.
    pub fn tagged(&self, tag: &str) -> Vec<PolyId> {
        (0..self.polys.len())
            .filter(|&i| self.polys[i].annotation.has_tag(tag))
            .collect()
    }

    /// Number of connected components (diagnostic: a shippable level mesh
    /// should have exactly one).
    pub fn connected_components(&self) -> usize {
        let n = self.polys.len();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            components += 1;
            stack.push(s);
            seen[s] = true;
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adjacency[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }

    /// Validate mesh invariants: symmetric adjacency and no self-loops.
    /// Returns a list of human-readable problems (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen: HashMap<(PolyId, PolyId), usize> = HashMap::new();
        for (u, adj) in self.adjacency.iter().enumerate() {
            for &(v, _) in adj {
                if u == v {
                    problems.push(format!("polygon {u} adjacent to itself"));
                }
                *seen.entry((u.min(v), u.max(v))).or_insert(0) += 1;
            }
        }
        for (&(u, v), &count) in &seen {
            if count % 2 != 0 {
                problems.push(format!("asymmetric adjacency between {u} and {v}"));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    #[test]
    fn polygon_rejects_degenerate() {
        assert!(matches!(
            Polygon::new(vec![v(0.0, 0.0), v(1.0, 0.0)]),
            Err(NavMeshError::DegeneratePolygon(2))
        ));
        assert!(matches!(
            Polygon::new(vec![v(0.0, 0.0), v(1.0, 0.0), v(2.0, 0.0)]),
            Err(NavMeshError::DegeneratePolygon(_))
        ));
        assert!(matches!(
            Polygon::new(vec![v(0.0, 0.0), v(f32::NAN, 0.0), v(1.0, 1.0)]),
            Err(NavMeshError::NonFiniteVertex)
        ));
    }

    #[test]
    fn polygon_rejects_concave() {
        let concave = vec![v(0.0, 0.0), v(4.0, 0.0), v(4.0, 4.0), v(2.0, 1.0), v(0.0, 4.0)];
        assert_eq!(Polygon::new(concave), Err(NavMeshError::NotConvex));
    }

    #[test]
    fn polygon_normalizes_winding() {
        // clockwise input
        let p = Polygon::new(vec![v(0.0, 0.0), v(0.0, 1.0), v(1.0, 1.0), v(1.0, 0.0)]).unwrap();
        assert!(p.contains(v(0.5, 0.5)));
    }

    #[test]
    fn polygon_contains_boundary() {
        let p = Polygon::rect(v(0.0, 0.0), v(2.0, 2.0));
        assert!(p.contains(v(0.0, 0.0)));
        assert!(p.contains(v(2.0, 1.0)));
        assert!(!p.contains(v(2.1, 1.0)));
    }

    fn two_room_mesh() -> NavMesh {
        // Two unit squares sharing the edge x=1.
        let mut m = NavMesh::new();
        m.add_polygon(
            Polygon::rect(v(0.0, 0.0), v(1.0, 1.0)),
            Annotation::neutral(),
        );
        m.add_polygon(
            Polygon::rect(v(1.0, 0.0), v(2.0, 1.0)),
            Annotation::neutral(),
        );
        m
    }

    #[test]
    fn shared_edge_adjacency_detected() {
        let m = two_room_mesh();
        assert_eq!(m.neighbors(0).len(), 1);
        assert_eq!(m.neighbors(0)[0].0, 1);
        assert_eq!(m.neighbors(1)[0].0, 0);
        assert!(m.validate().is_empty());
    }

    #[test]
    fn locate_and_path_same_polygon() {
        let m = two_room_mesh();
        assert_eq!(m.locate(v(0.5, 0.5)), Some(0));
        assert_eq!(m.locate(v(1.5, 0.5)), Some(1));
        assert_eq!(m.locate(v(5.0, 5.0)), None);
        let p = m
            .find_path(v(0.2, 0.5), v(0.8, 0.5), &CostProfile::shortest())
            .unwrap();
        assert_eq!(p.polys, vec![0]);
        assert!((p.length() - 0.6).abs() < 1e-5);
    }

    #[test]
    fn path_crosses_portal() {
        let m = two_room_mesh();
        let p = m
            .find_path(v(0.5, 0.5), v(1.5, 0.5), &CostProfile::shortest())
            .unwrap();
        assert_eq!(p.polys, vec![0, 1]);
        assert_eq!(p.waypoints.len(), 3);
        // middle waypoint is the portal midpoint at x=1
        assert!((p.waypoints[1].x - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unreachable_when_disconnected() {
        let mut m = NavMesh::new();
        m.add_polygon(Polygon::rect(v(0.0, 0.0), v(1.0, 1.0)), Annotation::neutral());
        m.add_polygon(Polygon::rect(v(5.0, 5.0), v(6.0, 6.0)), Annotation::neutral());
        assert_eq!(m.connected_components(), 2);
        assert!(m
            .find_path(v(0.5, 0.5), v(5.5, 5.5), &CostProfile::shortest())
            .is_none());
    }

    #[test]
    fn tile_grid_mesh_routes_around_walls() {
        // 5x3 grid, wall column at x=2 except y=2
        let m = NavMesh::from_tile_grid(
            5,
            3,
            1.0,
            |x, y| !(x == 2 && y != 2),
            |_, _| Annotation::neutral(),
        );
        assert_eq!(m.connected_components(), 1);
        let p = m
            .find_path(v(0.5, 0.5), v(4.5, 0.5), &CostProfile::shortest())
            .unwrap();
        // must detour via the open cell at (2,2)
        assert!(p.length() > 6.0);
        assert!(m.locate(v(2.5, 0.5)).is_none());
    }

    #[test]
    fn cautious_profile_avoids_danger() {
        // Two routes from left to right: a short one through a dangerous
        // middle cell and a long one around it.
        //   row 0:  A  D  B      (D danger=1)
        //   row 1:  C  E  F      (safe detour)
        let m = NavMesh::from_tile_grid(
            3,
            2,
            1.0,
            |_, _| true,
            |x, y| {
                if x == 1 && y == 0 {
                    Annotation {
                        danger: 1.0,
                        ..Default::default()
                    }
                } else {
                    Annotation::neutral()
                }
            },
        );
        let short = m
            .find_path(v(0.5, 0.5), v(2.5, 0.5), &CostProfile::shortest())
            .unwrap();
        let safe = m
            .find_path(v(0.5, 0.5), v(2.5, 0.5), &CostProfile::cautious())
            .unwrap();
        // shortest route goes straight through the danger cell
        let danger_poly = m.locate(v(1.5, 0.5)).unwrap();
        assert!(short.polys.contains(&danger_poly));
        assert!(!safe.polys.contains(&danger_poly));
        assert!(safe.length() > short.length());
    }

    #[test]
    fn hiding_spot_query() {
        let mut m = two_room_mesh();
        m.annotation_mut(1).cover = 0.9;
        assert_eq!(m.best_hiding_spot(v(0.5, 0.5), 10.0), Some(1));
        // nothing with cover within a tiny radius
        assert_eq!(m.best_hiding_spot(v(0.5, 0.5), 0.1), None);
    }

    #[test]
    fn defensible_and_tagged_queries() {
        let mut m = two_room_mesh();
        m.annotation_mut(0).defensibility = 0.8;
        m.annotation_mut(1).defensibility = 0.3;
        m.annotation_mut(1).tags.push("sniper_nest".to_string());
        assert_eq!(m.defensible_positions(0.5), vec![0]);
        assert_eq!(m.defensible_positions(0.0), vec![0, 1]);
        assert_eq!(m.tagged("sniper_nest"), vec![1]);
        assert!(m.tagged("missing").is_empty());
    }

    #[test]
    fn annotation_repaint_changes_routing() {
        let m0 = NavMesh::from_tile_grid(3, 2, 1.0, |_, _| true, |_, _| Annotation::neutral());
        let mut m = m0.clone();
        let before = m
            .find_path(v(0.5, 0.5), v(2.5, 0.5), &CostProfile::cautious())
            .unwrap();
        let mid = m.locate(v(1.5, 0.5)).unwrap();
        m.annotation_mut(mid).danger = 1.0;
        let after = m
            .find_path(v(0.5, 0.5), v(2.5, 0.5), &CostProfile::cautious())
            .unwrap();
        assert!(before.polys.contains(&mid));
        assert!(!after.polys.contains(&mid));
    }
}
