//! Binary space partitioning tree over 2-D points.
//!
//! Games classically use BSP trees for static level geometry; here we use
//! the point-partitioning variant (axis-aligned splitting planes — a
//! kd-tree-style BSP) so the same structure can index moving entities.
//! Splits pick the longest axis of the node's bounding box and divide at
//! the median, which keeps the tree balanced under clustered data — the
//! regime where the uniform grid collapses (experiment E3).

use std::collections::HashMap;

use crate::geom::{Aabb, Vec2};
use crate::index::{finish_knn, ItemId, SpatialIndex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

impl Axis {
    #[inline]
    fn coord(self, p: Vec2) -> f32 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        items: Vec<(ItemId, Vec2)>,
    },
    Inner {
        axis: Axis,
        split: f32,
        // children boxed to keep Node small
        left: Box<Node>,
        right: Box<Node>,
        /// number of items in this subtree (maintained for rebuild triggers)
        count: usize,
    },
}

/// A dynamic BSP (kd) tree.
///
/// Mutation strategy: inserts descend to a leaf and split it when it
/// exceeds `leaf_capacity`; removals delete from the leaf. When the number
/// of mutations since the last build exceeds half the tree size the whole
/// tree is rebuilt from scratch (bulk median build), bounding degradation
/// under heavy churn.
#[derive(Debug, Clone)]
pub struct BspTree {
    root: Node,
    positions: HashMap<ItemId, Vec2>,
    leaf_capacity: usize,
    mutations: usize,
}

impl Default for BspTree {
    fn default() -> Self {
        Self::new(16)
    }
}

impl BspTree {
    /// Create an empty tree. `leaf_capacity` is the maximum number of items
    /// a leaf may hold before it is split (minimum 2).
    pub fn new(leaf_capacity: usize) -> Self {
        BspTree {
            root: Node::Leaf { items: Vec::new() },
            positions: HashMap::new(),
            leaf_capacity: leaf_capacity.max(2),
            mutations: 0,
        }
    }

    /// Bulk-build from a point set (median splits, balanced result).
    pub fn build(items: impl IntoIterator<Item = (ItemId, Vec2)>, leaf_capacity: usize) -> Self {
        let mut t = BspTree::new(leaf_capacity);
        let mut all: Vec<(ItemId, Vec2)> = items.into_iter().collect();
        t.positions = all.iter().map(|&(id, p)| (id, p)).collect();
        // Deduplicate ids, keeping the last occurrence (insert semantics).
        if t.positions.len() != all.len() {
            all = t.positions.iter().map(|(&id, &p)| (id, p)).collect();
        }
        t.root = Self::build_node(all, leaf_capacity);
        t
    }

    fn build_node(mut items: Vec<(ItemId, Vec2)>, cap: usize) -> Node {
        if items.len() <= cap {
            return Node::Leaf { items };
        }
        let bounds = items
            .iter()
            .fold(Aabb::new(items[0].1, items[0].1), |b, &(_, p)| {
                b.union(&Aabb::new(p, p))
            });
        let primary = if bounds.width() >= bounds.height() {
            Axis::X
        } else {
            Axis::Y
        };
        // Find a split index such that every left coordinate is strictly
        // below the split value and every right coordinate is at or above
        // it; insert/remove descend with `< split`, so the partition must
        // be exact even with tied coordinates. Falls back to the other
        // axis, then to an oversized leaf, when all coordinates tie.
        let mut chosen: Option<(Axis, usize)> = None;
        for axis in [primary, if primary == Axis::X { Axis::Y } else { Axis::X }] {
            items.sort_by(|a, b| axis.coord(a.1).partial_cmp(&axis.coord(b.1)).unwrap());
            let mid = items.len() / 2;
            let v = axis.coord(items[mid].1);
            let mut idx = mid;
            while idx > 0 && axis.coord(items[idx - 1].1) == v {
                idx -= 1;
            }
            if idx == 0 {
                // everything below the median ties with it; split above
                idx = items
                    .iter()
                    .position(|it| axis.coord(it.1) > v)
                    .unwrap_or(items.len());
            }
            if idx > 0 && idx < items.len() {
                chosen = Some((axis, idx));
                break;
            }
        }
        let Some((axis, split_idx)) = chosen else {
            // all points identical on both axes
            return Node::Leaf { items };
        };
        items.sort_by(|a, b| axis.coord(a.1).partial_cmp(&axis.coord(b.1)).unwrap());
        let split = axis.coord(items[split_idx].1);
        let right_items = items.split_off(split_idx);
        let count = items.len() + right_items.len();
        Node::Inner {
            axis,
            split,
            left: Box::new(Self::build_node(items, cap)),
            right: Box::new(Self::build_node(right_items, cap)),
            count,
        }
    }

    /// Depth of the tree (diagnostic).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Inner { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    fn maybe_rebuild(&mut self) {
        if self.mutations > self.positions.len() / 2 + 16 {
            let items: Vec<(ItemId, Vec2)> =
                self.positions.iter().map(|(&id, &p)| (id, p)).collect();
            self.root = Self::build_node(items, self.leaf_capacity);
            self.mutations = 0;
        }
    }

    fn insert_into(node: &mut Node, id: ItemId, pos: Vec2, cap: usize) {
        match node {
            Node::Leaf { items } => {
                items.push((id, pos));
                if items.len() > cap {
                    let taken = std::mem::take(items);
                    *node = Self::build_node(taken, cap);
                }
            }
            Node::Inner {
                axis,
                split,
                left,
                right,
                count,
            } => {
                *count += 1;
                if axis.coord(pos) < *split {
                    Self::insert_into(left, id, pos, cap);
                } else {
                    Self::insert_into(right, id, pos, cap);
                }
            }
        }
    }

    fn remove_from(node: &mut Node, id: ItemId, pos: Vec2) -> bool {
        match node {
            Node::Leaf { items } => {
                if let Some(i) = items.iter().position(|&(x, _)| x == id) {
                    items.swap_remove(i);
                    true
                } else {
                    false
                }
            }
            Node::Inner {
                axis,
                split,
                left,
                right,
                count,
            } => {
                let removed = if axis.coord(pos) < *split {
                    Self::remove_from(left, id, pos)
                } else {
                    Self::remove_from(right, id, pos)
                };
                if removed {
                    *count -= 1;
                }
                removed
            }
        }
    }

    fn range_into(node: &Node, center: Vec2, r2: f32, out: &mut Vec<ItemId>) {
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    if p.dist2(center) <= r2 {
                        out.push(id);
                    }
                }
            }
            Node::Inner {
                axis,
                split,
                left,
                right,
                ..
            } => {
                let d = axis.coord(center) - *split;
                // Visit the side containing the center always; the far side
                // only if the disk crosses the plane.
                if d < 0.0 {
                    Self::range_into(left, center, r2, out);
                    if d * d <= r2 {
                        Self::range_into(right, center, r2, out);
                    }
                } else {
                    Self::range_into(right, center, r2, out);
                    if d * d <= r2 {
                        Self::range_into(left, center, r2, out);
                    }
                }
            }
        }
    }

    fn aabb_into(node: &Node, bounds: &Aabb, out: &mut Vec<ItemId>) {
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    if bounds.contains(p) {
                        out.push(id);
                    }
                }
            }
            Node::Inner {
                axis,
                split,
                left,
                right,
                ..
            } => {
                let (lo, hi) = match axis {
                    Axis::X => (bounds.min.x, bounds.max.x),
                    Axis::Y => (bounds.min.y, bounds.max.y),
                };
                if lo < *split {
                    Self::aabb_into(left, bounds, out);
                }
                if hi >= *split {
                    Self::aabb_into(right, bounds, out);
                }
            }
        }
    }

    fn knn_into(node: &Node, center: Vec2, cands: &mut Vec<(f32, ItemId)>, k: usize) {
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    cands.push((p.dist2(center), id));
                }
            }
            Node::Inner {
                axis,
                split,
                left,
                right,
                ..
            } => {
                let d = axis.coord(center) - *split;
                let (near, far) = if d < 0.0 { (left, right) } else { (right, left) };
                Self::knn_into(near, center, cands, k);
                // Prune the far side when we already have k candidates all
                // closer than the splitting plane.
                let need_far = if cands.len() < k {
                    true
                } else {
                    // kth smallest candidate distance
                    let mut ds: Vec<f32> = cands.iter().map(|&(d, _)| d).collect();
                    ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    ds[k - 1] > d * d
                };
                if need_far {
                    Self::knn_into(far, center, cands, k);
                }
            }
        }
    }
}

impl SpatialIndex for BspTree {
    fn insert(&mut self, id: ItemId, pos: Vec2) {
        debug_assert!(pos.is_finite(), "non-finite position for item {id}");
        if let Some(old) = self.positions.insert(id, pos) {
            Self::remove_from(&mut self.root, id, old);
            self.mutations += 1;
        }
        Self::insert_into(&mut self.root, id, pos, self.leaf_capacity);
        self.mutations += 1;
        self.maybe_rebuild();
    }

    fn remove(&mut self, id: ItemId) -> bool {
        match self.positions.remove(&id) {
            Some(pos) => {
                let removed = Self::remove_from(&mut self.root, id, pos);
                debug_assert!(removed, "positions map and tree out of sync");
                self.mutations += 1;
                self.maybe_rebuild();
                true
            }
            None => false,
        }
    }

    fn position(&self, id: ItemId) -> Option<Vec2> {
        self.positions.get(&id).copied()
    }

    fn query_range(&self, center: Vec2, radius: f32, out: &mut Vec<ItemId>) {
        if radius < 0.0 {
            return;
        }
        Self::range_into(&self.root, center, radius * radius, out);
    }

    fn query_aabb(&self, bounds: &Aabb, out: &mut Vec<ItemId>) {
        Self::aabb_into(&self.root, bounds, out);
    }

    fn query_knn(&self, center: Vec2, k: usize, out: &mut Vec<ItemId>) {
        if k == 0 || self.positions.is_empty() {
            return;
        }
        let mut cands = Vec::new();
        Self::knn_into(&self.root, center, &mut cands, k);
        finish_knn(center, k, &mut cands, out);
    }

    fn len(&self) -> usize {
        self.positions.len()
    }

    fn clear(&mut self) {
        self.root = Node::Leaf { items: Vec::new() };
        self.positions.clear();
        self.mutations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    #[test]
    fn bulk_build_and_query() {
        let pts: Vec<(ItemId, Vec2)> = (0..100)
            .map(|i| (i as ItemId, v((i % 10) as f32, (i / 10) as f32)))
            .collect();
        let t = BspTree::build(pts, 4);
        assert_eq!(t.len(), 100);
        let mut out = vec![];
        t.query_range(v(0.0, 0.0), 1.0, &mut out);
        out.sort_unstable();
        // (0,0), (1,0), (0,1) are within distance 1
        assert_eq!(out, vec![0, 1, 10]);
    }

    #[test]
    fn build_dedupes_ids() {
        let t = BspTree::build(vec![(1, v(0.0, 0.0)), (1, v(5.0, 5.0))], 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.position(1), Some(v(5.0, 5.0)));
    }

    #[test]
    fn incremental_insert_splits_leaves() {
        let mut t = BspTree::new(2);
        for i in 0..50 {
            t.insert(i, v(i as f32, 0.0));
        }
        assert_eq!(t.len(), 50);
        assert!(t.depth() > 1);
        let mut out = vec![];
        t.query_range(v(25.0, 0.0), 2.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![23, 24, 25, 26, 27]);
    }

    #[test]
    fn duplicate_positions_allowed() {
        let mut t = BspTree::new(2);
        for i in 0..10 {
            t.insert(i, v(1.0, 1.0));
        }
        assert_eq!(t.len(), 10);
        let mut out = vec![];
        t.query_range(v(1.0, 1.0), 0.1, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t = BspTree::new(4);
        for i in 0..20 {
            t.insert(i, v(i as f32, i as f32));
        }
        for i in 0..10 {
            assert!(t.remove(i));
        }
        assert!(!t.remove(0));
        assert_eq!(t.len(), 10);
        let mut out = vec![];
        t.query_range(v(0.0, 0.0), 5.0, &mut out);
        assert!(out.is_empty());
        t.insert(100, v(0.0, 0.0));
        out.clear();
        t.query_range(v(0.0, 0.0), 1.0, &mut out);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn update_moves_item() {
        let mut t = BspTree::new(4);
        for i in 0..32 {
            t.insert(i, v((i % 8) as f32 * 10.0, (i / 8) as f32 * 10.0));
        }
        t.update(0, v(75.0, 35.0));
        let mut out = vec![];
        t.query_range(v(75.0, 35.0), 1.0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        t.query_range(v(0.0, 0.0), 1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn knn_matches_small_case() {
        let mut t = BspTree::new(2);
        t.insert(1, v(1.0, 0.0));
        t.insert(2, v(2.0, 0.0));
        t.insert(3, v(10.0, 0.0));
        t.insert(4, v(-1.5, 0.0));
        let mut out = vec![];
        t.query_knn(v(0.0, 0.0), 3, &mut out);
        assert_eq!(out, vec![1, 4, 2]);
    }

    #[test]
    fn aabb_query_boundaries() {
        let mut t = BspTree::new(2);
        t.insert(1, v(0.0, 0.0));
        t.insert(2, v(5.0, 5.0));
        t.insert(3, v(5.1, 5.0));
        let mut out = vec![];
        t.query_aabb(&Aabb::from_size(5.0, 5.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn heavy_churn_triggers_rebuild_and_stays_correct() {
        let mut t = BspTree::new(4);
        for i in 0..200 {
            t.insert(i, v((i % 20) as f32, (i / 20) as f32));
        }
        // Move everything far away several times.
        for round in 1..5 {
            for i in 0..200 {
                t.update(i, v((i % 20) as f32 + 100.0 * round as f32, (i / 20) as f32));
            }
        }
        assert_eq!(t.len(), 200);
        let mut out = vec![];
        t.query_range(v(400.0 + 10.0, 5.0), 200.0, &mut out);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn clear_resets() {
        let mut t = BspTree::new(4);
        t.insert(1, v(0.0, 0.0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
    }
}
