//! Basic 2-D and 3-D geometry used by every spatial index.
//!
//! Game worlds in this crate are modelled as continuous Euclidean spaces.
//! The 2-D types ([`Vec2`], [`Aabb`]) serve top-down worlds (the common MMO
//! case the paper discusses), while [`Vec3`] / [`Aabb3`] serve the octree.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point with `f32` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Squared Euclidean distance to `other`. Prefer this in hot loops; it
    /// avoids the square root that [`Vec2::dist`] pays.
    #[inline]
    pub fn dist2(self, other: Vec2) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec2) -> f32 {
        self.dist2(other).sqrt()
    }

    /// Squared length of the vector.
    #[inline]
    pub fn len2(self) -> f32 {
        self.x * self.x + self.y * self.y
    }

    /// Length (magnitude) of the vector.
    #[inline]
    pub fn len(self) -> f32 {
        self.len2().sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product of the two vectors embedded in
    /// the plane; positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f32 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or zero if the vector is zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let l = self.len();
        if l > 0.0 {
            Vec2::new(self.x / l, self.y / l)
        } else {
            Vec2::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f32) -> Vec2 {
        Vec2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Clamp each coordinate into the closed interval `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Vec2, hi: Vec2) -> Vec2 {
        Vec2::new(self.x.clamp(lo.x, hi.x), self.y.clamp(lo.y, hi.y))
    }

    /// True when both coordinates are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-D vector / point with `f32` coordinates (used by the octree).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(self, other: Vec3) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec3) -> f32 {
        self.dist2(other).sqrt()
    }

    /// Embed a 2-D point in the `z = 0` plane.
    #[inline]
    pub fn from_vec2(v: Vec2) -> Vec3 {
        Vec3::new(v.x, v.y, 0.0)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

/// A 2-D axis-aligned bounding box, stored as inclusive min / max corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Vec2,
    pub max: Vec2,
}

impl Aabb {
    /// Construct from two corners; the corners are normalized so callers may
    /// pass them in any order.
    #[inline]
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// A box spanning `[0,0] .. [w,h]`.
    #[inline]
    pub fn from_size(w: f32, h: f32) -> Self {
        Aabb::new(Vec2::ZERO, Vec2::new(w, h))
    }

    /// Smallest box containing a circle.
    #[inline]
    pub fn around_circle(center: Vec2, radius: f32) -> Self {
        let r = Vec2::new(radius, radius);
        Aabb {
            min: center - r,
            max: center + r,
        }
    }

    #[inline]
    pub fn width(&self) -> f32 {
        self.max.x - self.min.x
    }

    #[inline]
    pub fn height(&self) -> f32 {
        self.max.y - self.min.y
    }

    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    #[inline]
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two boxes overlap (closed-interval semantics).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// True when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Squared distance from `p` to the nearest point of the box (zero when
    /// `p` is inside). Used for circle/box overlap tests and kNN pruning.
    #[inline]
    pub fn dist2_to_point(&self, p: Vec2) -> f32 {
        let c = p.clamp(self.min, self.max);
        c.dist2(p)
    }

    /// True when the box intersects the closed disk `(center, radius)`.
    #[inline]
    pub fn intersects_circle(&self, center: Vec2, radius: f32) -> bool {
        self.dist2_to_point(center) <= radius * radius
    }

    /// The smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grow the box by `m` in every direction.
    #[inline]
    pub fn inflate(&self, m: f32) -> Aabb {
        let d = Vec2::new(m, m);
        Aabb {
            min: self.min - d,
            max: self.max + d,
        }
    }
}

/// A 3-D axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb3 {
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb3 {
            min: Vec3::new(min.x.min(max.x), min.y.min(max.y), min.z.min(max.z)),
            max: Vec3::new(min.x.max(max.x), min.y.max(max.y), min.z.max(max.z)),
        }
    }

    /// A cube spanning `[0,0,0] .. [s,s,s]`.
    #[inline]
    pub fn cube(s: f32) -> Self {
        Aabb3::new(Vec3::ZERO, Vec3::new(s, s, s))
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        Vec3::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
            (self.min.z + self.max.z) * 0.5,
        )
    }

    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Squared distance from `p` to the nearest point of the box.
    #[inline]
    pub fn dist2_to_point(&self, p: Vec3) -> f32 {
        let cx = p.x.clamp(self.min.x, self.max.x);
        let cy = p.y.clamp(self.min.y, self.max.y);
        let cz = p.z.clamp(self.min.z, self.max.z);
        Vec3::new(cx, cy, cz).dist2(p)
    }

    /// True when the box intersects the closed ball `(center, radius)`.
    #[inline]
    pub fn intersects_sphere(&self, center: Vec3, radius: f32) -> bool {
        self.dist2_to_point(center) <= radius * radius
    }

    /// The `i`-th (0..8) octant of the box, splitting at the center.
    pub fn octant(&self, i: usize) -> Aabb3 {
        let c = self.center();
        let (x0, x1) = if i & 1 == 0 {
            (self.min.x, c.x)
        } else {
            (c.x, self.max.x)
        };
        let (y0, y1) = if i & 2 == 0 {
            (self.min.y, c.y)
        } else {
            (c.y, self.max.y)
        };
        let (z0, z1) = if i & 4 == 0 {
            (self.min.z, c.z)
        } else {
            (c.z, self.max.z)
        };
        Aabb3::new(Vec3::new(x0, y0, z0), Vec3::new(x1, y1, z1))
    }
}

/// Segment/segment intersection test for navmesh portal checks.
///
/// Returns true when segments `a0-a1` and `b0-b1` properly intersect or
/// touch. Collinear overlapping segments count as intersecting.
pub fn segments_intersect(a0: Vec2, a1: Vec2, b0: Vec2, b1: Vec2) -> bool {
    fn orient(a: Vec2, b: Vec2, c: Vec2) -> f32 {
        (b - a).cross(c - a)
    }
    fn on_segment(a: Vec2, b: Vec2, p: Vec2) -> bool {
        p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
    }
    let d1 = orient(b0, b1, a0);
    let d2 = orient(b0, b1, a1);
    let d3 = orient(a0, a1, b0);
    let d4 = orient(a0, a1, b1);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(b0, b1, a0))
        || (d2 == 0.0 && on_segment(b0, b1, a1))
        || (d3 == 0.0 && on_segment(a0, a1, b0))
        || (d4 == 0.0 && on_segment(a0, a1, b1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_distances() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.len(), 5.0);
    }

    #[test]
    fn vec2_dot_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_normalized() {
        let v = Vec2::new(3.0, 4.0).normalized();
        assert!((v.len() - 1.0).abs() < 1e-6);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn vec2_lerp_endpoints() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(3.0, -1.0));
    }

    #[test]
    fn aabb_normalizes_corners() {
        let b = Aabb::new(Vec2::new(5.0, 1.0), Vec2::new(1.0, 5.0));
        assert_eq!(b.min, Vec2::new(1.0, 1.0));
        assert_eq!(b.max, Vec2::new(5.0, 5.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.center(), Vec2::new(3.0, 3.0));
    }

    #[test]
    fn aabb_contains_and_intersects() {
        let b = Aabb::from_size(10.0, 10.0);
        assert!(b.contains(Vec2::new(0.0, 0.0)));
        assert!(b.contains(Vec2::new(10.0, 10.0)));
        assert!(!b.contains(Vec2::new(10.1, 5.0)));

        let other = Aabb::new(Vec2::new(9.0, 9.0), Vec2::new(12.0, 12.0));
        assert!(b.intersects(&other));
        let far = Aabb::new(Vec2::new(20.0, 20.0), Vec2::new(21.0, 21.0));
        assert!(!b.intersects(&far));
    }

    #[test]
    fn aabb_circle_intersection() {
        let b = Aabb::from_size(10.0, 10.0);
        // circle centered outside, touching the right edge
        assert!(b.intersects_circle(Vec2::new(12.0, 5.0), 2.0));
        assert!(!b.intersects_circle(Vec2::new(12.0, 5.0), 1.9));
        // circle fully inside
        assert!(b.intersects_circle(Vec2::new(5.0, 5.0), 0.5));
    }

    #[test]
    fn aabb_dist2_inside_is_zero() {
        let b = Aabb::from_size(4.0, 4.0);
        assert_eq!(b.dist2_to_point(Vec2::new(2.0, 2.0)), 0.0);
        assert_eq!(b.dist2_to_point(Vec2::new(7.0, 2.0)), 9.0);
    }

    #[test]
    fn aabb_union_and_inflate() {
        let a = Aabb::from_size(1.0, 1.0);
        let b = Aabb::new(Vec2::new(2.0, 2.0), Vec2::new(3.0, 3.0));
        let u = a.union(&b);
        assert_eq!(u.min, Vec2::ZERO);
        assert_eq!(u.max, Vec2::new(3.0, 3.0));
        let i = a.inflate(1.0);
        assert_eq!(i.min, Vec2::new(-1.0, -1.0));
        assert_eq!(i.max, Vec2::new(2.0, 2.0));
    }

    #[test]
    fn aabb3_octants_partition() {
        let b = Aabb3::cube(8.0);
        // Every octant must be inside the parent, and centers must differ.
        let mut centers = vec![];
        for i in 0..8 {
            let o = b.octant(i);
            assert!(b.contains(o.min));
            assert!(b.contains(o.max));
            centers.push(o.center());
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(centers[i].dist2(centers[j]) > 0.0);
            }
        }
    }

    #[test]
    fn aabb3_sphere_test() {
        let b = Aabb3::cube(4.0);
        assert!(b.intersects_sphere(Vec3::new(2.0, 2.0, 2.0), 0.1));
        assert!(b.intersects_sphere(Vec3::new(6.0, 2.0, 2.0), 2.0));
        assert!(!b.intersects_sphere(Vec3::new(6.0, 2.0, 2.0), 1.9));
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Vec2::ZERO;
        // crossing
        assert!(segments_intersect(
            Vec2::new(-1.0, -1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(-1.0, 1.0),
            Vec2::new(1.0, -1.0)
        ));
        // touching at endpoint
        assert!(segments_intersect(
            o,
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0)
        ));
        // parallel, disjoint
        assert!(!segments_intersect(
            o,
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0)
        ));
        // collinear overlapping
        assert!(segments_intersect(
            o,
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(3.0, 0.0)
        ));
    }
}
