//! Region quadtree over 2-D points (the planar analogue of the octree the
//! paper names).
//!
//! Unlike the BSP tree, the quadtree subdivides *space* rather than the
//! point set: each node covers a fixed quadrant of its parent. This makes
//! update cheap (no rebalancing) and makes the structure adaptive to
//! clustered data, at the cost of deep branches when points coincide —
//! bounded here by `max_depth`.

use std::collections::HashMap;

use crate::geom::{Aabb, Vec2};
use crate::index::{finish_knn, ItemId, SpatialIndex};

#[derive(Debug, Clone)]
enum Node {
    Leaf { items: Vec<(ItemId, Vec2)> },
    Inner { children: Box<[Node; 4]> },
}

/// A point quadtree over a fixed world rectangle.
///
/// Points outside the world bounds are kept in a linear overflow list
/// (games routinely have a handful of "limbo" entities — in inventory,
/// mid-teleport — which should not break the index).
#[derive(Debug, Clone)]
pub struct Quadtree {
    bounds: Aabb,
    root: Node,
    outside: Vec<(ItemId, Vec2)>,
    positions: HashMap<ItemId, Vec2>,
    leaf_capacity: usize,
    max_depth: usize,
}

impl Quadtree {
    /// Create a quadtree covering `bounds`. `leaf_capacity` is the number
    /// of items a leaf holds before splitting (min 1); `max_depth` bounds
    /// subdivision (min 1).
    pub fn new(bounds: Aabb, leaf_capacity: usize, max_depth: usize) -> Self {
        Quadtree {
            bounds,
            root: Node::Leaf { items: Vec::new() },
            outside: Vec::new(),
            positions: HashMap::new(),
            leaf_capacity: leaf_capacity.max(1),
            max_depth: max_depth.max(1),
        }
    }

    /// Convenience constructor covering `[0,0]..[w,h]` with defaults tuned
    /// for ~10k entities.
    pub fn with_size(w: f32, h: f32) -> Self {
        Quadtree::new(Aabb::from_size(w, h), 8, 12)
    }

    /// The world rectangle this tree covers.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Number of items outside the world bounds (diagnostic).
    pub fn outside_count(&self) -> usize {
        self.outside.len()
    }

    fn quadrant(b: &Aabb, i: usize) -> Aabb {
        let c = b.center();
        match i {
            0 => Aabb::new(b.min, c),
            1 => Aabb::new(Vec2::new(c.x, b.min.y), Vec2::new(b.max.x, c.y)),
            2 => Aabb::new(Vec2::new(b.min.x, c.y), Vec2::new(c.x, b.max.y)),
            _ => Aabb::new(c, b.max),
        }
    }

    fn child_index(b: &Aabb, p: Vec2) -> usize {
        let c = b.center();
        (usize::from(p.x >= c.x)) | (usize::from(p.y >= c.y) << 1)
    }

    fn insert_node(
        node: &mut Node,
        bounds: &Aabb,
        id: ItemId,
        pos: Vec2,
        depth: usize,
        cap: usize,
        max_depth: usize,
    ) {
        match node {
            Node::Leaf { items } => {
                items.push((id, pos));
                if items.len() > cap && depth < max_depth {
                    let taken = std::mem::take(items);
                    let mut children = Box::new([
                        Node::Leaf { items: Vec::new() },
                        Node::Leaf { items: Vec::new() },
                        Node::Leaf { items: Vec::new() },
                        Node::Leaf { items: Vec::new() },
                    ]);
                    for (iid, ipos) in taken {
                        let ci = Self::child_index(bounds, ipos);
                        if let Node::Leaf { items } = &mut children[ci] {
                            items.push((iid, ipos));
                        }
                    }
                    *node = Node::Inner { children };
                    // Re-split children that are still over capacity (all
                    // points may share a quadrant).
                    if let Node::Inner { children } = node {
                        for ci in 0..4 {
                            let cb = Self::quadrant(bounds, ci);
                            let needs_split = matches!(
                                &children[ci],
                                Node::Leaf { items } if items.len() > cap
                            );
                            if needs_split {
                                if let Node::Leaf { items } = &mut children[ci] {
                                    let again = std::mem::take(items);
                                    let mut leaf = Node::Leaf { items: Vec::new() };
                                    for (iid, ipos) in again {
                                        Self::insert_node(
                                            &mut leaf,
                                            &cb,
                                            iid,
                                            ipos,
                                            depth + 1,
                                            cap,
                                            max_depth,
                                        );
                                    }
                                    children[ci] = leaf;
                                }
                            }
                        }
                    }
                }
            }
            Node::Inner { children } => {
                let ci = Self::child_index(bounds, pos);
                let cb = Self::quadrant(bounds, ci);
                Self::insert_node(&mut children[ci], &cb, id, pos, depth + 1, cap, max_depth);
            }
        }
    }

    fn remove_node(node: &mut Node, bounds: &Aabb, id: ItemId, pos: Vec2) -> bool {
        match node {
            Node::Leaf { items } => match items.iter().position(|&(x, _)| x == id) {
                Some(i) => {
                    items.swap_remove(i);
                    true
                }
                None => false,
            },
            Node::Inner { children } => {
                let ci = Self::child_index(bounds, pos);
                let cb = Self::quadrant(bounds, ci);
                Self::remove_node(&mut children[ci], &cb, id, pos)
            }
        }
    }

    fn range_node(node: &Node, bounds: &Aabb, center: Vec2, r2: f32, out: &mut Vec<ItemId>) {
        if bounds.dist2_to_point(center) > r2 {
            return;
        }
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    if p.dist2(center) <= r2 {
                        out.push(id);
                    }
                }
            }
            Node::Inner { children } => {
                for ci in 0..4 {
                    let cb = Self::quadrant(bounds, ci);
                    Self::range_node(&children[ci], &cb, center, r2, out);
                }
            }
        }
    }

    fn aabb_node(node: &Node, bounds: &Aabb, q: &Aabb, out: &mut Vec<ItemId>) {
        if !bounds.intersects(q) {
            return;
        }
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    if q.contains(p) {
                        out.push(id);
                    }
                }
            }
            Node::Inner { children } => {
                for ci in 0..4 {
                    let cb = Self::quadrant(bounds, ci);
                    Self::aabb_node(&children[ci], &cb, q, out);
                }
            }
        }
    }

    fn knn_node(
        node: &Node,
        bounds: &Aabb,
        center: Vec2,
        k: usize,
        cands: &mut Vec<(f32, ItemId)>,
    ) {
        // Prune: if we already have k candidates closer than this node's
        // region, skip it.
        if cands.len() >= k {
            let mut ds: Vec<f32> = cands.iter().map(|&(d, _)| d).collect();
            ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if bounds.dist2_to_point(center) > ds[k - 1] {
                return;
            }
        }
        match node {
            Node::Leaf { items } => {
                for &(id, p) in items {
                    cands.push((p.dist2(center), id));
                }
            }
            Node::Inner { children } => {
                // Visit children nearest-first for better pruning.
                let mut order: Vec<(f32, usize)> = (0..4)
                    .map(|ci| {
                        let cb = Self::quadrant(bounds, ci);
                        (cb.dist2_to_point(center), ci)
                    })
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for (_, ci) in order {
                    let cb = Self::quadrant(bounds, ci);
                    Self::knn_node(&children[ci], &cb, center, k, cands);
                }
            }
        }
    }
}

impl SpatialIndex for Quadtree {
    fn insert(&mut self, id: ItemId, pos: Vec2) {
        debug_assert!(pos.is_finite(), "non-finite position for item {id}");
        if self.positions.contains_key(&id) {
            self.remove(id);
        }
        self.positions.insert(id, pos);
        if self.bounds.contains(pos) {
            let bounds = self.bounds;
            Self::insert_node(
                &mut self.root,
                &bounds,
                id,
                pos,
                0,
                self.leaf_capacity,
                self.max_depth,
            );
        } else {
            self.outside.push((id, pos));
        }
    }

    fn remove(&mut self, id: ItemId) -> bool {
        match self.positions.remove(&id) {
            Some(pos) => {
                if self.bounds.contains(pos) {
                    let bounds = self.bounds;
                    let removed = Self::remove_node(&mut self.root, &bounds, id, pos);
                    debug_assert!(removed, "positions map and quadtree out of sync");
                } else if let Some(i) = self.outside.iter().position(|&(x, _)| x == id) {
                    self.outside.swap_remove(i);
                }
                true
            }
            None => false,
        }
    }

    fn position(&self, id: ItemId) -> Option<Vec2> {
        self.positions.get(&id).copied()
    }

    fn query_range(&self, center: Vec2, radius: f32, out: &mut Vec<ItemId>) {
        if radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        Self::range_node(&self.root, &self.bounds, center, r2, out);
        out.extend(
            self.outside
                .iter()
                .filter(|&&(_, p)| p.dist2(center) <= r2)
                .map(|&(id, _)| id),
        );
    }

    fn query_aabb(&self, q: &Aabb, out: &mut Vec<ItemId>) {
        Self::aabb_node(&self.root, &self.bounds, q, out);
        out.extend(
            self.outside
                .iter()
                .filter(|&&(_, p)| q.contains(p))
                .map(|&(id, _)| id),
        );
    }

    fn query_knn(&self, center: Vec2, k: usize, out: &mut Vec<ItemId>) {
        if k == 0 || self.positions.is_empty() {
            return;
        }
        let mut cands = Vec::new();
        Self::knn_node(&self.root, &self.bounds, center, k, &mut cands);
        for &(id, p) in &self.outside {
            cands.push((p.dist2(center), id));
        }
        finish_knn(center, k, &mut cands, out);
    }

    fn len(&self) -> usize {
        self.positions.len()
    }

    fn clear(&mut self) {
        self.root = Node::Leaf { items: Vec::new() };
        self.outside.clear();
        self.positions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    fn tree() -> Quadtree {
        Quadtree::new(Aabb::from_size(100.0, 100.0), 2, 8)
    }

    #[test]
    fn insert_and_range() {
        let mut t = tree();
        t.insert(1, v(10.0, 10.0));
        t.insert(2, v(12.0, 10.0));
        t.insert(3, v(90.0, 90.0));
        let mut out = vec![];
        t.query_range(v(11.0, 10.0), 2.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn splitting_preserves_items() {
        let mut t = tree();
        for i in 0..100 {
            t.insert(i, v((i % 10) as f32 * 10.0 + 0.5, (i / 10) as f32 * 10.0 + 0.5));
        }
        assert_eq!(t.len(), 100);
        let mut out = vec![];
        t.query_aabb(&Aabb::from_size(100.0, 100.0), &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn coincident_points_bounded_by_max_depth() {
        let mut t = Quadtree::new(Aabb::from_size(10.0, 10.0), 1, 3);
        for i in 0..50 {
            t.insert(i, v(5.0, 5.0));
        }
        assert_eq!(t.len(), 50);
        let mut out = vec![];
        t.query_range(v(5.0, 5.0), 0.1, &mut out);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn out_of_bounds_items_still_queryable() {
        let mut t = tree();
        t.insert(1, v(-50.0, -50.0));
        t.insert(2, v(50.0, 50.0));
        assert_eq!(t.outside_count(), 1);
        let mut out = vec![];
        t.query_range(v(-50.0, -50.0), 1.0, &mut out);
        assert_eq!(out, vec![1]);
        // moving it inside removes it from the overflow list
        t.update(1, v(10.0, 10.0));
        assert_eq!(t.outside_count(), 0);
        out.clear();
        t.query_range(v(10.0, 10.0), 1.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn remove_works_in_and_out_of_bounds() {
        let mut t = tree();
        t.insert(1, v(5.0, 5.0));
        t.insert(2, v(-5.0, 5.0));
        assert!(t.remove(1));
        assert!(t.remove(2));
        assert!(!t.remove(3));
        assert!(t.is_empty());
    }

    #[test]
    fn knn_nearest_first() {
        let mut t = tree();
        t.insert(1, v(10.0, 10.0));
        t.insert(2, v(20.0, 10.0));
        t.insert(3, v(80.0, 80.0));
        let mut out = vec![];
        t.query_knn(v(0.0, 0.0), 3, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn knn_prunes_but_stays_exact() {
        // Regression-style check: cluster in one quadrant, nearest point in
        // another; pruning must not skip it.
        let mut t = tree();
        for i in 0..20 {
            t.insert(i, v(75.0 + (i % 5) as f32, 75.0 + (i / 5) as f32));
        }
        t.insert(999, v(49.0, 49.0));
        let mut out = vec![];
        t.query_knn(v(45.0, 45.0), 1, &mut out);
        assert_eq!(out, vec![999]);
    }
}
