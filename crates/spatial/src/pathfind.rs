//! Generic A* search used by the navigation mesh (and usable directly on
//! any graph the game defines, e.g. waypoint graphs or road networks).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Node in the open list, ordered by lowest f-score (g + heuristic).
struct OpenEntry {
    f: f32,
    node: usize,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for OpenEntry {}
impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-heap behaviour. NaN f
        // scores sort last so they never win.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Result of a successful A* search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Node indices from start to goal inclusive.
    pub nodes: Vec<usize>,
    /// Total accumulated edge cost.
    pub cost: f32,
    /// Number of nodes expanded (diagnostic for E4's efficiency report).
    pub expanded: usize,
}

/// A* over an implicit graph of `usize` nodes.
///
/// * `neighbors(n, out)` appends `(neighbor, edge_cost)` pairs to `out`.
/// * `heuristic(n)` must be admissible (never overestimate) for optimal
///   paths; a zero heuristic degrades gracefully to Dijkstra.
///
/// Returns `None` when the goal is unreachable. Edge costs must be
/// non-negative; negative costs are clamped to zero (and would otherwise
/// break A*'s invariants silently).
pub fn astar(
    start: usize,
    goal: usize,
    mut neighbors: impl FnMut(usize, &mut Vec<(usize, f32)>),
    mut heuristic: impl FnMut(usize) -> f32,
) -> Option<PathResult> {
    let mut open = BinaryHeap::new();
    let mut g: HashMap<usize, f32> = HashMap::new();
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut closed: HashSet<usize> = HashSet::new();
    let mut expanded = 0usize;
    let mut scratch: Vec<(usize, f32)> = Vec::new();

    g.insert(start, 0.0);
    open.push(OpenEntry {
        f: heuristic(start),
        node: start,
    });

    while let Some(OpenEntry { node, .. }) = open.pop() {
        if !closed.insert(node) {
            continue; // stale heap entry
        }
        if node == goal {
            let mut nodes = vec![goal];
            let mut cur = goal;
            while let Some(&p) = parent.get(&cur) {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            return Some(PathResult {
                cost: g[&goal],
                nodes,
                expanded,
            });
        }
        expanded += 1;
        let g_node = g[&node];
        scratch.clear();
        neighbors(node, &mut scratch);
        for &(next, cost) in &scratch {
            let tentative = g_node + cost.max(0.0);
            if g.get(&next).is_none_or(|&old| tentative < old) {
                g.insert(next, tentative);
                parent.insert(next, node);
                open.push(OpenEntry {
                    f: tentative + heuristic(next),
                    node: next,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small grid world helper: 4-connected WxH grid with blocked cells.
    fn grid_neighbors(
        w: usize,
        h: usize,
        blocked: &[usize],
    ) -> impl Fn(usize, &mut Vec<(usize, f32)>) + '_ {
        move |n, out| {
            let (x, y) = (n % w, n / w);
            let push = |nx: usize, ny: usize, out: &mut Vec<(usize, f32)>| {
                let id = ny * w + nx;
                if !blocked.contains(&id) {
                    out.push((id, 1.0));
                }
            };
            if x > 0 {
                push(x - 1, y, out);
            }
            if x + 1 < w {
                push(x + 1, y, out);
            }
            if y > 0 {
                push(x, y - 1, out);
            }
            if y + 1 < h {
                push(x, y + 1, out);
            }
        }
    }

    #[test]
    fn straight_line_path() {
        let nb = grid_neighbors(5, 1, &[]);
        let r = astar(0, 4, nb, |n| (4 - n % 5) as f32).unwrap();
        assert_eq!(r.nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.cost, 4.0);
    }

    #[test]
    fn routes_around_obstacle() {
        // 3x3 grid, wall at center column except bottom row
        //   0 1 2
        //   3 X 5
        //   6 7 8      (X = 4 blocked)
        let nb = grid_neighbors(3, 3, &[4]);
        let r = astar(3, 5, nb, |_| 0.0).unwrap();
        assert_eq!(r.cost, 4.0);
        assert!(r.nodes.contains(&7) || r.nodes.contains(&1));
    }

    #[test]
    fn unreachable_returns_none() {
        // goal cell walled off entirely
        let nb = grid_neighbors(3, 3, &[1, 3, 4]);
        assert!(astar(0, 8, nb, |_| 0.0).is_none());
    }

    #[test]
    fn start_equals_goal() {
        let nb = grid_neighbors(3, 3, &[]);
        let r = astar(4, 4, nb, |_| 0.0).unwrap();
        assert_eq!(r.nodes, vec![4]);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.expanded, 0);
    }

    #[test]
    fn admissible_heuristic_expands_fewer_nodes() {
        // Start at the grid center so the quadrant pointing away from the
        // goal is prunable by the heuristic (from a corner every node lies
        // on some shortest path and A* degenerates to Dijkstra).
        let w = 20;
        let nb1 = grid_neighbors(w, 20, &[]);
        let nb2 = grid_neighbors(w, 20, &[]);
        let start = 10 * w + 10;
        let goal = 19 * w + 19;
        let dijkstra = astar(start, goal, nb1, |_| 0.0).unwrap();
        let manhattan = astar(start, goal, nb2, move |n| {
            let (x, y) = (n % w, n / w);
            ((19 - x) + (19 - y)) as f32
        })
        .unwrap();
        assert_eq!(dijkstra.cost, manhattan.cost);
        assert!(manhattan.expanded < dijkstra.expanded);
    }

    #[test]
    fn negative_edge_costs_are_clamped() {
        let r = astar(
            0,
            2,
            |n, out| {
                if n == 0 {
                    out.push((1, -5.0));
                }
                if n == 1 {
                    out.push((2, 1.0));
                }
            },
            |_| 0.0,
        )
        .unwrap();
        assert_eq!(r.cost, 1.0);
    }
}
