//! Property tests: every spatial index must agree with the brute-force
//! oracle on arbitrary operation sequences and queries.

use gamedb_spatial::{Aabb, BruteForce, BspTree, Quadtree, SpatialIndex, UniformGrid, Vec2};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, f32, f32),
    Remove(u64),
    Update(u64, f32, f32),
}

fn coord() -> impl Strategy<Value = f32> {
    // world coordinates, including negatives and out-of-quadtree-bounds
    (-150.0f32..150.0).prop_map(|v| (v * 8.0).round() / 8.0)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, coord(), coord()).prop_map(|(id, x, y)| Op::Insert(id, x, y)),
        (0u64..32).prop_map(Op::Remove),
        (0u64..32, coord(), coord()).prop_map(|(id, x, y)| Op::Update(id, x, y)),
    ]
}

fn apply<I: SpatialIndex>(idx: &mut I, ops: &[Op]) {
    for o in ops {
        match *o {
            Op::Insert(id, x, y) => idx.insert(id, Vec2::new(x, y)),
            Op::Remove(id) => {
                idx.remove(id);
            }
            Op::Update(id, x, y) => idx.update(id, Vec2::new(x, y)),
        }
    }
}

fn sorted_range<I: SpatialIndex>(idx: &I, c: Vec2, r: f32) -> Vec<u64> {
    let mut out = vec![];
    idx.query_range(c, r, &mut out);
    out.sort_unstable();
    out
}

fn sorted_aabb<I: SpatialIndex>(idx: &I, b: &Aabb) -> Vec<u64> {
    let mut out = vec![];
    idx.query_aabb(b, &mut out);
    out.sort_unstable();
    out
}

fn knn<I: SpatialIndex>(idx: &I, c: Vec2, k: usize) -> Vec<u64> {
    let mut out = vec![];
    idx.query_knn(c, k, &mut out);
    out
}

macro_rules! index_equivalence_suite {
    ($modname:ident, $make:expr) => {
        mod $modname {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                #[test]
                fn range_matches_oracle(
                    ops in proptest::collection::vec(op(), 0..120),
                    cx in coord(), cy in coord(),
                    r in 0.0f32..120.0,
                ) {
                    let mut oracle = BruteForce::new();
                    let mut idx = $make;
                    apply(&mut oracle, &ops);
                    apply(&mut idx, &ops);
                    prop_assert_eq!(idx.len(), oracle.len());
                    let c = Vec2::new(cx, cy);
                    prop_assert_eq!(sorted_range(&idx, c, r), sorted_range(&oracle, c, r));
                }

                #[test]
                fn aabb_matches_oracle(
                    ops in proptest::collection::vec(op(), 0..120),
                    x0 in coord(), y0 in coord(),
                    x1 in coord(), y1 in coord(),
                ) {
                    let mut oracle = BruteForce::new();
                    let mut idx = $make;
                    apply(&mut oracle, &ops);
                    apply(&mut idx, &ops);
                    let b = Aabb::new(Vec2::new(x0, y0), Vec2::new(x1, y1));
                    prop_assert_eq!(sorted_aabb(&idx, &b), sorted_aabb(&oracle, &b));
                }

                #[test]
                fn knn_matches_oracle(
                    ops in proptest::collection::vec(op(), 0..120),
                    cx in coord(), cy in coord(),
                    k in 0usize..12,
                ) {
                    let mut oracle = BruteForce::new();
                    let mut idx = $make;
                    apply(&mut oracle, &ops);
                    apply(&mut idx, &ops);
                    let c = Vec2::new(cx, cy);
                    // Distances can tie at different ids only when two items
                    // share a distance; the (distance, id) tiebreak makes
                    // results fully deterministic, so exact equality holds.
                    prop_assert_eq!(knn(&idx, c, k), knn(&oracle, c, k));
                }

                #[test]
                fn positions_match_oracle(
                    ops in proptest::collection::vec(op(), 0..120),
                ) {
                    let mut oracle = BruteForce::new();
                    let mut idx = $make;
                    apply(&mut oracle, &ops);
                    apply(&mut idx, &ops);
                    for id in 0u64..32 {
                        prop_assert_eq!(idx.position(id), oracle.position(id));
                    }
                }
            }
        }
    };
}

index_equivalence_suite!(grid_vs_oracle, UniformGrid::new(16.0));
index_equivalence_suite!(grid_small_cells_vs_oracle, UniformGrid::new(3.0));
index_equivalence_suite!(bsp_vs_oracle, BspTree::new(4));
index_equivalence_suite!(quadtree_vs_oracle, Quadtree::new(
    Aabb::new(Vec2::new(-100.0, -100.0), Vec2::new(100.0, 100.0)),
    4,
    8
));

mod navmesh_props {
    use super::*;
    use gamedb_spatial::{Annotation, CostProfile, NavMesh};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// On a random open tile grid (no walls), a path between any two
        /// cell centers exists and starts/ends at the query points.
        #[test]
        fn open_grid_always_connected(
            w in 2usize..8, h in 2usize..8,
            sx in 0usize..8, sy in 0usize..8,
            gx in 0usize..8, gy in 0usize..8,
        ) {
            let (sx, sy) = (sx % w, sy % h);
            let (gx, gy) = (gx % w, gy % h);
            let mesh = NavMesh::from_tile_grid(w, h, 1.0, |_, _| true, |_, _| Annotation::neutral());
            prop_assert_eq!(mesh.connected_components(), 1);
            let from = Vec2::new(sx as f32 + 0.5, sy as f32 + 0.5);
            let to = Vec2::new(gx as f32 + 0.5, gy as f32 + 0.5);
            let path = mesh.find_path(from, to, &CostProfile::shortest());
            prop_assert!(path.is_some());
            let path = path.unwrap();
            prop_assert_eq!(path.waypoints[0], from);
            prop_assert_eq!(*path.waypoints.last().unwrap(), to);
            // path length at least the straight-line distance
            prop_assert!(path.length() + 1e-4 >= from.dist(to));
        }

        /// Danger weighting never makes the geometric path shorter than the
        /// unweighted shortest path.
        #[test]
        fn weighted_paths_no_shorter(
            w in 3usize..7, h in 3usize..7,
            danger_x in 0usize..7, danger_y in 0usize..7,
        ) {
            let (dx, dy) = (danger_x % w, danger_y % h);
            let mesh = NavMesh::from_tile_grid(
                w, h, 1.0,
                |_, _| true,
                |x, y| if (x, y) == (dx, dy) {
                    Annotation { danger: 1.0, ..Default::default() }
                } else {
                    Annotation::neutral()
                },
            );
            let from = Vec2::new(0.5, 0.5);
            let to = Vec2::new(w as f32 - 0.5, h as f32 - 0.5);
            let short = mesh.find_path(from, to, &CostProfile::shortest()).unwrap();
            let safe = mesh.find_path(from, to, &CostProfile::cautious()).unwrap();
            prop_assert!(safe.length() + 1e-4 >= short.length());
        }

        /// Mesh validation finds no problems on arbitrary tile grids.
        #[test]
        fn tile_meshes_validate(
            w in 1usize..10, h in 1usize..10,
            walls in proptest::collection::hash_set((0usize..10, 0usize..10), 0..20),
        ) {
            let mesh = NavMesh::from_tile_grid(
                w, h, 1.0,
                |x, y| !walls.contains(&(x, y)),
                |_, _| Annotation::neutral(),
            );
            prop_assert!(mesh.validate().is_empty());
        }
    }
}
