//! Property tests for the GDML parser: pretty-print → reparse must be the
//! identity on arbitrary generated documents.

use gamedb_content::gdml::{self, Element, Node};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.:-]{0,8}"
}

/// Attribute values and text exercise the escape paths.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just("word".to_string()),
            Just("7".to_string()),
        ],
        1..6,
    )
    .prop_map(|parts| parts.join(""))
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, raw_attrs, text)| {
            let mut el = Element::new(name);
            for (k, v) in raw_attrs {
                if el.attr(&k).is_none() {
                    el.attrs.push((k, v));
                }
            }
            if let Some(t) = text {
                let t = t.trim().to_string();
                if !t.is_empty() {
                    el.children.push(Node::Text(t));
                }
            }
            el
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, raw_attrs, children)| {
                let mut el = Element::new(name);
                for (k, v) in raw_attrs {
                    if el.attr(&k).is_none() {
                        el.attrs.push((k, v));
                    }
                }
                for c in children {
                    el.children.push(Node::Element(c));
                }
                el
            })
    })
}

/// Text nodes get trimmed and whitespace-normalized by the writer/parser
/// pipeline; normalize before comparing.
fn normalize(el: &Element) -> Element {
    let mut out = Element::new(el.name.clone());
    out.attrs = el.attrs.clone();
    for c in &el.children {
        match c {
            Node::Element(e) => out.children.push(Node::Element(normalize(e))),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.children.push(Node::Text(t.to_string()));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(el in element_strategy()) {
        let printed = gdml::to_string(&el);
        let reparsed = gdml::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(normalize(&el), normalize(&reparsed));
    }

    #[test]
    fn double_roundtrip_is_fixpoint(el in element_strategy()) {
        let once = gdml::to_string(&el);
        let reparsed = gdml::parse(&once).unwrap();
        let twice = gdml::to_string(&reparsed);
        prop_assert_eq!(once, twice);
    }

    /// The parser never panics on arbitrary input — it either parses or
    /// returns a structured error.
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,80}") {
        let _ = gdml::parse(&s);
    }

    #[test]
    fn parser_total_on_tag_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("<a>".to_string()),
            Just("</a>".to_string()),
            Just("<b x=\"1\">".to_string()),
            Just("<!-- c -->".to_string()),
            Just("text".to_string()),
            Just("&amp;".to_string()),
            Just("&bad;".to_string()),
            Just("<".to_string()),
            Just("/>".to_string()),
        ], 0..12)) {
        let _ = gdml::parse(&parts.join(""));
    }
}
