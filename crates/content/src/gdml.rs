//! GDML — Game Data Markup Language.
//!
//! The paper's data-driven-design section describes designers managing
//! game content as XML files (entity definitions, event triggers, and the
//! World-of-Warcraft-style XML UI specification language). GDML is the
//! XML subset this repository uses for all designer-authored content:
//! elements, attributes, text, comments, and the five standard entity
//! escapes. It is deliberately small — no namespaces, DTDs, or processing
//! instructions — because game content pipelines control both ends of the
//! format.
//!
//! The parser is hand-written with precise line/column errors (designers
//! read these, so they must be good), and a pretty-printer supports the
//! round-trip property tests.

use std::fmt;

/// A node in a GDML document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Element(Element),
    /// Text content with entities already decoded. Whitespace-only text
    /// between elements is dropped during parsing.
    Text(String),
}

/// An element: `<name attr="v">children</name>`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    pub name: String,
    /// Attributes in document order (duplicates rejected at parse time).
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Node>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Value of attribute `key` or a [`GdmlError::MissingAttr`] naming the
    /// element — content loaders want this error shape everywhere.
    pub fn require_attr(&self, key: &str) -> Result<&str, GdmlError> {
        self.attr(key).ok_or_else(|| GdmlError::MissingAttr {
            element: self.name.clone(),
            attr: key.to_string(),
        })
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements regardless of name.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> + '_ {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// First child element with the given name.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s.trim().to_string()
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder-style: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }
}

/// Parse errors with 1-based line and column.
#[derive(Debug, Clone, PartialEq)]
pub enum GdmlError {
    UnexpectedEof { line: u32, col: u32, expected: &'static str },
    UnexpectedChar { line: u32, col: u32, found: char, expected: &'static str },
    MismatchedTag { line: u32, col: u32, open: String, close: String },
    DuplicateAttr { line: u32, col: u32, attr: String },
    BadEntity { line: u32, col: u32, entity: String },
    TrailingContent { line: u32, col: u32 },
    MissingAttr { element: String, attr: String },
}

impl fmt::Display for GdmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdmlError::UnexpectedEof { line, col, expected } => {
                write!(f, "{line}:{col}: unexpected end of input, expected {expected}")
            }
            GdmlError::UnexpectedChar { line, col, found, expected } => {
                write!(f, "{line}:{col}: unexpected {found:?}, expected {expected}")
            }
            GdmlError::MismatchedTag { line, col, open, close } => {
                write!(f, "{line}:{col}: closing tag </{close}> does not match <{open}>")
            }
            GdmlError::DuplicateAttr { line, col, attr } => {
                write!(f, "{line}:{col}: duplicate attribute {attr:?}")
            }
            GdmlError::BadEntity { line, col, entity } => {
                write!(f, "{line}:{col}: unknown entity &{entity};")
            }
            GdmlError::TrailingContent { line, col } => {
                write!(f, "{line}:{col}: content after the root element")
            }
            GdmlError::MissingAttr { element, attr } => {
                write!(f, "element <{element}> is missing required attribute {attr:?}")
            }
        }
    }
}

impl std::error::Error for GdmlError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof_err(&self, expected: &'static str) -> GdmlError {
        GdmlError::UnexpectedEof {
            line: self.line,
            col: self.col,
            expected,
        }
    }

    fn char_err(&self, found: char, expected: &'static str) -> GdmlError {
        GdmlError::UnexpectedChar {
            line: self.line,
            col: self.col,
            found,
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip `<!-- ... -->`; the leading `<!--` is already consumed.
    fn skip_comment(&mut self) -> Result<(), GdmlError> {
        loop {
            match self.bump() {
                None => return Err(self.eof_err("end of comment '-->'")),
                Some(b'-') => {
                    if self.peek() == Some(b'-') && self.peek2() == Some(b'>') {
                        self.bump();
                        self.bump();
                        return Ok(());
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn is_name_start(c: u8) -> bool {
        c.is_ascii_alphabetic() || c == b'_'
    }

    fn is_name_char(c: u8) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':')
    }

    fn parse_name(&mut self) -> Result<String, GdmlError> {
        match self.peek() {
            None => Err(self.eof_err("a name")),
            Some(c) if Self::is_name_start(c) => {
                let start = self.pos;
                while self.peek().is_some_and(Self::is_name_char) {
                    self.bump();
                }
                Ok(std::str::from_utf8(&self.src[start..self.pos])
                    .expect("name chars are ASCII")
                    .to_string())
            }
            Some(c) => Err(self.char_err(c as char, "a name")),
        }
    }

    fn parse_entity(&mut self) -> Result<char, GdmlError> {
        // '&' already consumed
        let (l, c0) = (self.line, self.col);
        let mut name = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(GdmlError::BadEntity {
                        line: l,
                        col: c0,
                        entity: name,
                    })
                }
                Some(b';') => break,
                Some(c) if name.len() < 8 => name.push(c as char),
                Some(_) => {
                    return Err(GdmlError::BadEntity {
                        line: l,
                        col: c0,
                        entity: name,
                    })
                }
            }
        }
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => Err(GdmlError::BadEntity {
                line: l,
                col: c0,
                entity: name,
            }),
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, GdmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(c) => return Err(self.char_err(c as char, "'\"' or '\\''")),
            None => return Err(self.eof_err("attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.bump() {
                None => return Err(self.eof_err("closing quote")),
                Some(c) if c == quote => return Ok(value),
                Some(b'&') => value.push(self.parse_entity()?),
                Some(c) => value.push(c as char),
            }
        }
    }

    /// Parse an element; the opening `<` is already consumed and the next
    /// char is the name start.
    fn parse_element(&mut self) -> Result<Element, GdmlError> {
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.eof_err("'>' or '/>'")),
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    match self.bump() {
                        Some(b'>') => return Ok(el),
                        Some(c) => return Err(self.char_err(c as char, "'>'")),
                        None => return Err(self.eof_err("'>'")),
                    }
                }
                Some(c) if Self::is_name_start(c) => {
                    let (al, ac) = (self.line, self.col);
                    let key = self.parse_name()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b'=') => {}
                        Some(c) => return Err(self.char_err(c as char, "'='")),
                        None => return Err(self.eof_err("'='")),
                    }
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if el.attr(&key).is_some() {
                        return Err(GdmlError::DuplicateAttr {
                            line: al,
                            col: ac,
                            attr: key,
                        });
                    }
                    el.attrs.push((key, value));
                }
                Some(c) => return Err(self.char_err(c as char, "attribute name or '>'")),
            }
        }
        // children until matching close tag
        loop {
            let mut text = String::new();
            // accumulate text until '<'
            loop {
                match self.peek() {
                    None => return Err(self.eof_err("closing tag")),
                    Some(b'<') => break,
                    Some(b'&') => {
                        self.bump();
                        text.push(self.parse_entity()?);
                    }
                    Some(c) => {
                        self.bump();
                        text.push(c as char);
                    }
                }
            }
            if !text.trim().is_empty() {
                el.children.push(Node::Text(text.trim().to_string()));
            }
            // at '<'
            self.bump();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    let (cl, cc) = (self.line, self.col);
                    let close = self.parse_name()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b'>') => {}
                        Some(c) => return Err(self.char_err(c as char, "'>'")),
                        None => return Err(self.eof_err("'>'")),
                    }
                    if close != el.name {
                        return Err(GdmlError::MismatchedTag {
                            line: cl,
                            col: cc,
                            open: el.name,
                            close,
                        });
                    }
                    return Ok(el);
                }
                Some(b'!') => {
                    // comment
                    self.bump();
                    for _ in 0..2 {
                        match self.bump() {
                            Some(b'-') => {}
                            Some(c) => return Err(self.char_err(c as char, "'<!--'")),
                            None => return Err(self.eof_err("'<!--'")),
                        }
                    }
                    self.skip_comment()?;
                }
                Some(c) if Self::is_name_start(c) => {
                    let child = self.parse_element()?;
                    el.children.push(Node::Element(child));
                }
                Some(c) => return Err(self.char_err(c as char, "element, comment, or closing tag")),
                None => return Err(self.eof_err("element, comment, or closing tag")),
            }
        }
    }

    fn parse_document(&mut self) -> Result<Element, GdmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.eof_err("root element")),
                Some(b'<') => {
                    self.bump();
                    match self.peek() {
                        Some(b'!') => {
                            self.bump();
                            for _ in 0..2 {
                                match self.bump() {
                                    Some(b'-') => {}
                                    Some(c) => return Err(self.char_err(c as char, "'<!--'")),
                                    None => return Err(self.eof_err("'<!--'")),
                                }
                            }
                            self.skip_comment()?;
                        }
                        Some(c) if Self::is_name_start(c) => {
                            let root = self.parse_element()?;
                            // only comments/whitespace may follow
                            loop {
                                self.skip_ws();
                                match self.peek() {
                                    None => return Ok(root),
                                    Some(b'<') if self.peek2() == Some(b'!') => {
                                        self.bump();
                                        self.bump();
                                        for _ in 0..2 {
                                            match self.bump() {
                                                Some(b'-') => {}
                                                _ => {
                                                    return Err(GdmlError::TrailingContent {
                                                        line: self.line,
                                                        col: self.col,
                                                    })
                                                }
                                            }
                                        }
                                        self.skip_comment()?;
                                    }
                                    Some(_) => {
                                        return Err(GdmlError::TrailingContent {
                                            line: self.line,
                                            col: self.col,
                                        })
                                    }
                                }
                            }
                        }
                        Some(c) => return Err(self.char_err(c as char, "element name")),
                        None => return Err(self.eof_err("element name")),
                    }
                }
                Some(c) => return Err(self.char_err(c as char, "'<'")),
            }
        }
    }
}

/// Parse a GDML document; returns the root element.
pub fn parse(src: &str) -> Result<Element, GdmlError> {
    Parser::new(src).parse_document()
}

fn escape_into(s: &str, out: &mut String, in_attr: bool) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn write_element(el: &Element, out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_into(v, out, true);
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Elements with a single text child are written inline.
    if el.children.len() == 1 {
        if let Node::Text(t) = &el.children[0] {
            out.push('>');
            escape_into(t, out, false);
            out.push_str("</");
            out.push_str(&el.name);
            out.push_str(">\n");
            return;
        }
    }
    out.push_str(">\n");
    for child in &el.children {
        match child {
            Node::Element(e) => write_element(e, out, indent + 1),
            Node::Text(t) => {
                for _ in 0..=indent {
                    out.push_str("  ");
                }
                escape_into(t, out, false);
                out.push('\n');
            }
        }
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

/// Pretty-print an element tree as a GDML document.
pub fn to_string(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let root = parse("<world/>").unwrap();
        assert_eq!(root.name, "world");
        assert!(root.attrs.is_empty());
        assert!(root.children.is_empty());
    }

    #[test]
    fn attributes_and_children() {
        let root = parse(
            r#"<template name="goblin" extends="monster">
                 <component name="hp" type="float" default="50"/>
                 <component name="speed" type="float" default="1.5"/>
               </template>"#,
        )
        .unwrap();
        assert_eq!(root.attr("name"), Some("goblin"));
        assert_eq!(root.attr("extends"), Some("monster"));
        assert_eq!(root.children_named("component").count(), 2);
        let hp = root.children_named("component").next().unwrap();
        assert_eq!(hp.attr("default"), Some("50"));
    }

    #[test]
    fn text_content_and_entities() {
        let root = parse("<msg>fish &amp; chips &lt;hot&gt;</msg>").unwrap();
        assert_eq!(root.text(), "fish & chips <hot>");
    }

    #[test]
    fn entities_in_attributes() {
        let root = parse(r#"<a v="&quot;x&quot; &apos;y&apos;"/>"#).unwrap();
        assert_eq!(root.attr("v"), Some("\"x\" 'y'"));
    }

    #[test]
    fn comments_are_skipped() {
        let root = parse(
            "<!-- header -->\n<a><!-- inner --><b/><!-- done --></a>\n<!-- trailer -->",
        )
        .unwrap();
        assert_eq!(root.children_named("b").count(), 1);
    }

    #[test]
    fn single_quotes_allowed() {
        let root = parse("<a v='hello'/>").unwrap();
        assert_eq!(root.attr("v"), Some("hello"));
    }

    #[test]
    fn mismatched_tag_reports_names() {
        let err = parse("<a><b></a></b>").unwrap_err();
        match err {
            GdmlError::MismatchedTag { open, close, .. } => {
                assert_eq!(open, "b");
                assert_eq!(close, "a");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err, GdmlError::DuplicateAttr { .. }));
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(matches!(err, GdmlError::BadEntity { .. }));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err, GdmlError::TrailingContent { .. }));
    }

    #[test]
    fn error_line_numbers() {
        let err = parse("<a>\n\n  <b oops></b>\n</a>").unwrap_err();
        match err {
            GdmlError::UnexpectedChar { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unclosed_root_is_eof_error() {
        assert!(matches!(parse("<a><b/>"), Err(GdmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn require_attr_error_shape() {
        let root = parse("<a/>").unwrap();
        let err = root.require_attr("name").unwrap_err();
        assert!(matches!(err, GdmlError::MissingAttr { .. }));
        assert!(err.to_string().contains("name"));
    }

    #[test]
    fn roundtrip_simple() {
        let src = r#"<world name="test"><zone id="1"><spawn template="goblin"/></zone></world>"#;
        let parsed = parse(src).unwrap();
        let printed = to_string(&parsed);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn roundtrip_escapes() {
        let el = Element::new("a")
            .with_attr("v", "a \"quoted\" & <angled>")
            .with_text("text & <more>");
        let printed = to_string(&el);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.attr("v"), Some("a \"quoted\" & <angled>"));
        assert_eq!(reparsed.text(), "text & <more>");
    }

    #[test]
    fn builder_api() {
        let el = Element::new("frame")
            .with_attr("name", "main")
            .with_child(Element::new("button").with_attr("label", "OK"));
        assert_eq!(el.first_child("button").unwrap().attr("label"), Some("OK"));
        assert!(el.first_child("missing").is_none());
    }
}
