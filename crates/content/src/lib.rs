//! # gamedb-content
//!
//! Data-driven game content, per *Database Research in Computer Games*
//! (SIGMOD 2009): "the game content is separated as much as possible from
//! the game software, and placed in auxiliary data files" — including
//! "things that we think of as software, such as character behavior and
//! triggers for in-game events".
//!
//! ## Contents
//!
//! * [`gdml`] — the XML-subset markup all content is written in.
//! * [`value`] — the typed value domain ([`Value`], [`ValueType`]) shared
//!   with the engine, scripts, and persistence.
//! * [`template`] — entity templates with inheritance
//!   ([`TemplateLibrary`]).
//! * [`trigger`] — designer event triggers ([`TriggerSet`]).
//! * [`ui`] — WoW-style declarative UI specs ([`UiSpec`]).
//! * [`bundle`] — whole content bundles with cross-artifact validation
//!   ([`ContentBundle`]).
//! * [`patch`] — versioned expansion-pack overlays with conflict
//!   detection ([`ContentPatch`]).
//!
//! ```
//! use gamedb_content::ContentBundle;
//!
//! let bundle = ContentBundle::from_gdml_str(r#"
//!   <content>
//!     <templates>
//!       <template name="imp" tags="hostile">
//!         <component name="hp" type="float" default="25"/>
//!       </template>
//!     </templates>
//!   </content>"#).unwrap();
//! assert!(bundle.validate().is_empty());
//! let imp = bundle.templates.resolve("imp").unwrap();
//! assert!(imp.has_tag("hostile"));
//! ```

pub mod bundle;
pub mod gdml;
pub mod patch;
pub mod template;
pub mod trigger;
pub mod ui;
pub mod value;

pub use bundle::{ContentBundle, ContentError};
pub use gdml::{Element, GdmlError, Node};
pub use patch::{
    apply_all, ArtifactKind, ContentPatch, PatchConflict, PatchError, PatchReport,
};
pub use template::{ComponentDef, EntityTemplate, ResolvedTemplate, TemplateError, TemplateLibrary};
pub use trigger::{
    Action, CmpOp, ComponentView, Condition, EventKind, GameEvent, Region, Trigger, TriggerError,
    TriggerSet,
};
pub use ui::{Anchor, AnchorPoint, Rect, UiError, UiSpec, Widget, WidgetKind};
pub use value::{Value, ValueParseError, ValueType};
