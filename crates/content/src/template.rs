//! Entity templates — the heart of data-driven design.
//!
//! "In data-driven development, the game content is separated as much as
//! possible from the game software, and placed in auxiliary data files."
//! Templates are those files: a designer describes an entity kind (its
//! typed components, default values, scripts, and tags), optionally
//! extending another template, and the engine instantiates entities from
//! the resolved description. Expansion packs add templates without
//! touching engine code — the amortization argument of the paper.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::gdml::{Element, GdmlError};
use crate::value::{Value, ValueParseError, ValueType};

/// One component slot declared by a template.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDef {
    pub name: String,
    pub ty: ValueType,
    pub default: Value,
}

/// A designer-authored entity template.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EntityTemplate {
    pub name: String,
    /// Parent template name, if any.
    pub extends: Option<String>,
    /// Component declarations in document order (BTreeMap for stable
    /// iteration when instantiating).
    pub components: BTreeMap<String, ComponentDef>,
    /// Names of scripts this entity runs each tick.
    pub scripts: Vec<String>,
    /// Free-form designer tags ("monster", "vendor", "boss").
    pub tags: Vec<String>,
}

impl EntityTemplate {
    /// Parse from a `<template>` element:
    ///
    /// ```xml
    /// <template name="goblin" extends="monster" tags="hostile,green">
    ///   <component name="hp" type="float" default="50"/>
    ///   <script>chase_player</script>
    /// </template>
    /// ```
    pub fn from_gdml(el: &Element) -> Result<Self, TemplateError> {
        if el.name != "template" {
            return Err(TemplateError::WrongElement(el.name.clone()));
        }
        let name = el.require_attr("name")?.to_string();
        let extends = el.attr("extends").map(str::to_string);
        let tags = el
            .attr("tags")
            .map(|t| {
                t.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        let mut components = BTreeMap::new();
        for c in el.children_named("component") {
            let cname = c.require_attr("name")?.to_string();
            let ty_name = c.require_attr("type")?;
            let ty = ValueType::parse(ty_name).ok_or_else(|| TemplateError::UnknownType {
                template: name.clone(),
                component: cname.clone(),
                ty: ty_name.to_string(),
            })?;
            let default = match c.attr("default") {
                Some(text) => Value::parse_as(ty, text).map_err(|e| TemplateError::BadDefault {
                    template: name.clone(),
                    component: cname.clone(),
                    source: e,
                })?,
                None => ty.default_value(),
            };
            if components
                .insert(
                    cname.clone(),
                    ComponentDef {
                        name: cname.clone(),
                        ty,
                        default,
                    },
                )
                .is_some()
            {
                return Err(TemplateError::DuplicateComponent {
                    template: name,
                    component: cname,
                });
            }
        }
        let scripts = el.children_named("script").map(|s| s.text()).collect();
        Ok(EntityTemplate {
            name,
            extends,
            components,
            scripts,
            tags,
        })
    }

    /// Render back to GDML (content tools need save as well as load).
    pub fn to_gdml(&self) -> Element {
        let mut el = Element::new("template").with_attr("name", &self.name);
        if let Some(parent) = &self.extends {
            el = el.with_attr("extends", parent);
        }
        if !self.tags.is_empty() {
            el = el.with_attr("tags", self.tags.join(","));
        }
        for def in self.components.values() {
            el = el.with_child(
                Element::new("component")
                    .with_attr("name", &def.name)
                    .with_attr("type", def.ty.to_string())
                    .with_attr("default", def.default.to_literal()),
            );
        }
        for s in &self.scripts {
            el = el.with_child(Element::new("script").with_text(s));
        }
        el
    }
}

/// Errors in template definitions.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    WrongElement(String),
    Gdml(GdmlError),
    UnknownType {
        template: String,
        component: String,
        ty: String,
    },
    BadDefault {
        template: String,
        component: String,
        source: ValueParseError,
    },
    DuplicateComponent {
        template: String,
        component: String,
    },
    DuplicateTemplate(String),
    UnknownParent {
        template: String,
        parent: String,
    },
    InheritanceCycle(Vec<String>),
    /// Child redeclares a parent component with a different type.
    TypeConflict {
        template: String,
        component: String,
        parent_ty: ValueType,
        child_ty: ValueType,
    },
    UnknownTemplate(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::WrongElement(n) => write!(f, "expected <template>, found <{n}>"),
            TemplateError::Gdml(e) => write!(f, "{e}"),
            TemplateError::UnknownType {
                template,
                component,
                ty,
            } => write!(f, "template {template}: component {component} has unknown type {ty:?}"),
            TemplateError::BadDefault {
                template,
                component,
                source,
            } => write!(f, "template {template}: component {component}: {source}"),
            TemplateError::DuplicateComponent { template, component } => {
                write!(f, "template {template}: duplicate component {component}")
            }
            TemplateError::DuplicateTemplate(name) => write!(f, "duplicate template {name}"),
            TemplateError::UnknownParent { template, parent } => {
                write!(f, "template {template} extends unknown template {parent}")
            }
            TemplateError::InheritanceCycle(path) => {
                write!(f, "inheritance cycle: {}", path.join(" -> "))
            }
            TemplateError::TypeConflict {
                template,
                component,
                parent_ty,
                child_ty,
            } => write!(
                f,
                "template {template}: component {component} redeclared as {child_ty} (parent says {parent_ty})"
            ),
            TemplateError::UnknownTemplate(name) => write!(f, "unknown template {name}"),
        }
    }
}

impl std::error::Error for TemplateError {}

impl From<GdmlError> for TemplateError {
    fn from(e: GdmlError) -> Self {
        TemplateError::Gdml(e)
    }
}

/// A fully resolved template: inheritance flattened, ready to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedTemplate {
    pub name: String,
    pub components: BTreeMap<String, ComponentDef>,
    /// Scripts from the root ancestor down to the leaf, deduplicated.
    pub scripts: Vec<String>,
    /// Tags from the whole chain, deduplicated, in ancestor-first order.
    pub tags: Vec<String>,
}

impl ResolvedTemplate {
    /// Component names and default values — what a fresh entity gets.
    pub fn instantiate(&self) -> Vec<(String, Value)> {
        self.components
            .values()
            .map(|d| (d.name.clone(), d.default.clone()))
            .collect()
    }

    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

/// A library of templates with inheritance resolution.
#[derive(Debug, Clone, Default)]
pub struct TemplateLibrary {
    templates: HashMap<String, EntityTemplate>,
}

impl TemplateLibrary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a template. Names must be unique.
    pub fn add(&mut self, t: EntityTemplate) -> Result<(), TemplateError> {
        if self.templates.contains_key(&t.name) {
            return Err(TemplateError::DuplicateTemplate(t.name));
        }
        self.templates.insert(t.name.clone(), t);
        Ok(())
    }

    /// Parse every `<template>` child of a `<templates>` root element.
    pub fn from_gdml(root: &Element) -> Result<Self, TemplateError> {
        let mut lib = TemplateLibrary::new();
        for el in root.children_named("template") {
            lib.add(EntityTemplate::from_gdml(el)?)?;
        }
        Ok(lib)
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Raw (unresolved) template by name.
    pub fn get(&self, name: &str) -> Option<&EntityTemplate> {
        self.templates.get(name)
    }

    /// Iterate template names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.templates.keys().map(String::as_str)
    }

    /// Resolve `name`: walk the `extends` chain, merging components
    /// (children override defaults but may not change types), scripts and
    /// tags (ancestor-first, deduplicated).
    pub fn resolve(&self, name: &str) -> Result<ResolvedTemplate, TemplateError> {
        // Collect the chain leaf -> root, detecting cycles and gaps.
        let mut chain: Vec<&EntityTemplate> = Vec::new();
        let mut seen: HashSet<&str> = HashSet::new();
        let mut cur = Some(name.to_string());
        while let Some(n) = cur {
            let t = self
                .templates
                .get(&n)
                .ok_or_else(|| match chain.last() {
                    None => TemplateError::UnknownTemplate(n.clone()),
                    Some(child) => TemplateError::UnknownParent {
                        template: child.name.clone(),
                        parent: n.clone(),
                    },
                })?;
            if !seen.insert(&t.name) {
                let mut path: Vec<String> = chain.iter().map(|t| t.name.clone()).collect();
                path.push(t.name.clone());
                return Err(TemplateError::InheritanceCycle(path));
            }
            chain.push(t);
            cur = t.extends.clone();
        }
        // Merge root-first.
        let mut components: BTreeMap<String, ComponentDef> = BTreeMap::new();
        let mut scripts: Vec<String> = Vec::new();
        let mut tags: Vec<String> = Vec::new();
        for t in chain.iter().rev() {
            for (cname, def) in &t.components {
                match components.get(cname) {
                    Some(existing) if existing.ty != def.ty => {
                        return Err(TemplateError::TypeConflict {
                            template: t.name.clone(),
                            component: cname.clone(),
                            parent_ty: existing.ty,
                            child_ty: def.ty,
                        });
                    }
                    _ => {
                        components.insert(cname.clone(), def.clone());
                    }
                }
            }
            for s in &t.scripts {
                if !scripts.contains(s) {
                    scripts.push(s.clone());
                }
            }
            for tag in &t.tags {
                if !tags.contains(tag) {
                    tags.push(tag.clone());
                }
            }
        }
        Ok(ResolvedTemplate {
            name: name.to_string(),
            components,
            scripts,
            tags,
        })
    }

    /// Resolve every template, reporting all failures (content validation
    /// runs at build time in studio pipelines).
    pub fn validate(&self) -> Vec<TemplateError> {
        let mut names: Vec<&String> = self.templates.keys().collect();
        names.sort();
        names
            .into_iter()
            .filter_map(|n| self.resolve(n).err())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdml;

    fn lib_from(src: &str) -> TemplateLibrary {
        TemplateLibrary::from_gdml(&gdml::parse(src).unwrap()).unwrap()
    }

    const BASE: &str = r#"
      <templates>
        <template name="monster" tags="hostile">
          <component name="hp" type="float" default="100"/>
          <component name="pos" type="vec2" default="0,0"/>
          <script>wander</script>
        </template>
        <template name="goblin" extends="monster" tags="green">
          <component name="hp" type="float" default="50"/>
          <component name="loot" type="str" default="copper"/>
          <script>chase_player</script>
        </template>
      </templates>"#;

    #[test]
    fn parse_and_resolve_inheritance() {
        let lib = lib_from(BASE);
        assert_eq!(lib.len(), 2);
        let goblin = lib.resolve("goblin").unwrap();
        // child overrides hp default, inherits pos
        assert_eq!(
            goblin.components["hp"].default,
            Value::Float(50.0)
        );
        assert_eq!(
            goblin.components["pos"].default,
            Value::Vec2(0.0, 0.0)
        );
        assert_eq!(goblin.components["loot"].default, Value::Str("copper".into()));
        // scripts ancestor-first
        assert_eq!(goblin.scripts, vec!["wander", "chase_player"]);
        assert_eq!(goblin.tags, vec!["hostile", "green"]);
        assert!(goblin.has_tag("green"));
        assert!(!goblin.has_tag("undead"));
    }

    #[test]
    fn instantiate_yields_all_components() {
        let lib = lib_from(BASE);
        let vals = lib.resolve("goblin").unwrap().instantiate();
        assert_eq!(vals.len(), 3);
        assert!(vals.iter().any(|(n, _)| n == "loot"));
    }

    #[test]
    fn unknown_parent_error() {
        let lib = lib_from(
            r#"<templates>
                 <template name="orc" extends="ghost"/>
               </templates>"#,
        );
        match lib.resolve("orc").unwrap_err() {
            TemplateError::UnknownParent { template, parent } => {
                assert_eq!(template, "orc");
                assert_eq!(parent, "ghost");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn cycle_detection() {
        let lib = lib_from(
            r#"<templates>
                 <template name="a" extends="b"/>
                 <template name="b" extends="a"/>
               </templates>"#,
        );
        assert!(matches!(
            lib.resolve("a").unwrap_err(),
            TemplateError::InheritanceCycle(_)
        ));
        // validate reports both broken templates
        assert_eq!(lib.validate().len(), 2);
    }

    #[test]
    fn self_extension_is_a_cycle() {
        let lib = lib_from(r#"<templates><template name="a" extends="a"/></templates>"#);
        assert!(matches!(
            lib.resolve("a").unwrap_err(),
            TemplateError::InheritanceCycle(_)
        ));
    }

    #[test]
    fn type_conflict_rejected() {
        let lib = lib_from(
            r#"<templates>
                 <template name="base">
                   <component name="hp" type="float" default="1"/>
                 </template>
                 <template name="bad" extends="base">
                   <component name="hp" type="str" default="full"/>
                 </template>
               </templates>"#,
        );
        assert!(matches!(
            lib.resolve("bad").unwrap_err(),
            TemplateError::TypeConflict { .. }
        ));
    }

    #[test]
    fn duplicate_template_rejected() {
        let root = gdml::parse(
            r#"<templates>
                 <template name="x"/>
                 <template name="x"/>
               </templates>"#,
        )
        .unwrap();
        assert!(matches!(
            TemplateLibrary::from_gdml(&root).unwrap_err(),
            TemplateError::DuplicateTemplate(_)
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let root = gdml::parse(
            r#"<templates>
                 <template name="x">
                   <component name="c" type="matrix4"/>
                 </template>
               </templates>"#,
        )
        .unwrap();
        assert!(matches!(
            TemplateLibrary::from_gdml(&root).unwrap_err(),
            TemplateError::UnknownType { .. }
        ));
    }

    #[test]
    fn bad_default_rejected() {
        let root = gdml::parse(
            r#"<templates>
                 <template name="x">
                   <component name="c" type="int" default="many"/>
                 </template>
               </templates>"#,
        )
        .unwrap();
        assert!(matches!(
            TemplateLibrary::from_gdml(&root).unwrap_err(),
            TemplateError::BadDefault { .. }
        ));
    }

    #[test]
    fn missing_default_uses_type_default() {
        let lib = lib_from(
            r#"<templates>
                 <template name="x">
                   <component name="c" type="int"/>
                 </template>
               </templates>"#,
        );
        let x = lib.resolve("x").unwrap();
        assert_eq!(x.components["c"].default, Value::Int(0));
    }

    #[test]
    fn gdml_roundtrip() {
        let lib = lib_from(BASE);
        let goblin = lib.get("goblin").unwrap();
        let el = goblin.to_gdml();
        let reparsed = EntityTemplate::from_gdml(&el).unwrap();
        assert_eq!(*goblin, reparsed);
    }

    #[test]
    fn deep_inheritance_chain() {
        let lib = lib_from(
            r#"<templates>
                 <template name="a"><component name="x" type="int" default="1"/></template>
                 <template name="b" extends="a"><component name="y" type="int" default="2"/></template>
                 <template name="c" extends="b"><component name="z" type="int" default="3"/></template>
                 <template name="d" extends="c"><component name="x" type="int" default="99"/></template>
               </templates>"#,
        );
        let d = lib.resolve("d").unwrap();
        assert_eq!(d.components.len(), 3);
        assert_eq!(d.components["x"].default, Value::Int(99));
        assert_eq!(d.components["y"].default, Value::Int(2));
        assert!(lib.validate().is_empty());
    }
}
