//! Typed component values shared by templates, triggers, and the engine.
//!
//! Game content is relational at heart: entity components are typed
//! attribute values. This module defines the value domain used across the
//! workspace — the engine crate's columns, the scripting language's
//! expressions, and the persistence layer's rows all speak [`Value`].

use std::fmt;

/// The type of a component value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Float,
    Int,
    Bool,
    Str,
    /// 2-D position/vector, stored as a pair of `f32`.
    Vec2,
}

impl ValueType {
    /// Parse a type name as written in GDML (`type="float"`).
    pub fn parse(s: &str) -> Option<ValueType> {
        match s {
            "float" => Some(ValueType::Float),
            "int" => Some(ValueType::Int),
            "bool" => Some(ValueType::Bool),
            "str" | "string" => Some(ValueType::Str),
            "vec2" => Some(ValueType::Vec2),
            _ => None,
        }
    }

    /// The zero/empty value of this type.
    pub fn default_value(self) -> Value {
        match self {
            ValueType::Float => Value::Float(0.0),
            ValueType::Int => Value::Int(0),
            ValueType::Bool => Value::Bool(false),
            ValueType::Str => Value::Str(String::new()),
            ValueType::Vec2 => Value::Vec2(0.0, 0.0),
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Float => "float",
            ValueType::Int => "int",
            ValueType::Bool => "bool",
            ValueType::Str => "str",
            ValueType::Vec2 => "vec2",
        };
        f.write_str(s)
    }
}

/// A dynamically typed component value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Float(f32),
    Int(i64),
    Bool(bool),
    Str(String),
    Vec2(f32, f32),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Float(_) => ValueType::Float,
            Value::Int(_) => ValueType::Int,
            Value::Bool(_) => ValueType::Bool,
            Value::Str(_) => ValueType::Str,
            Value::Vec2(..) => ValueType::Vec2,
        }
    }

    /// Parse a literal of the given type from its GDML attribute spelling.
    ///
    /// `vec2` literals are written `"x,y"` (e.g. `"3.5,-2"`).
    pub fn parse_as(ty: ValueType, s: &str) -> Result<Value, ValueParseError> {
        let s = s.trim();
        let err = || ValueParseError {
            ty,
            text: s.to_string(),
        };
        match ty {
            ValueType::Float => s.parse::<f32>().map(Value::Float).map_err(|_| err()),
            ValueType::Int => s.parse::<i64>().map(Value::Int).map_err(|_| err()),
            ValueType::Bool => match s {
                "true" | "1" | "yes" => Ok(Value::Bool(true)),
                "false" | "0" | "no" => Ok(Value::Bool(false)),
                _ => Err(err()),
            },
            ValueType::Str => Ok(Value::Str(s.to_string())),
            ValueType::Vec2 => {
                let (x, y) = s.split_once(',').ok_or_else(err)?;
                let x = x.trim().parse::<f32>().map_err(|_| err())?;
                let y = y.trim().parse::<f32>().map_err(|_| err())?;
                Ok(Value::Vec2(x, y))
            }
        }
    }

    /// Numeric view: floats and ints coerce to `f64`, everything else is
    /// `None`. Comparisons in triggers and scripts use this.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Vec2 view.
    pub fn as_vec2(&self) -> Option<(f32, f32)> {
        match self {
            Value::Vec2(x, y) => Some((*x, *y)),
            _ => None,
        }
    }

    /// Render in the spelling [`Value::parse_as`] accepts.
    pub fn to_literal(&self) -> String {
        match self {
            Value::Float(v) => format!("{v}"),
            Value::Int(v) => format!("{v}"),
            Value::Bool(b) => format!("{b}"),
            Value::Str(s) => s.clone(),
            Value::Vec2(x, y) => format!("{x},{y}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_literal())
    }
}

/// Error produced when a literal does not parse as the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueParseError {
    pub ty: ValueType,
    pub text: String,
}

impl fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?} as {}", self.text, self.ty)
    }
}

impl std::error::Error for ValueParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for ty in [
            ValueType::Float,
            ValueType::Int,
            ValueType::Bool,
            ValueType::Str,
            ValueType::Vec2,
        ] {
            assert_eq!(ValueType::parse(&ty.to_string()), Some(ty));
        }
        assert_eq!(ValueType::parse("quaternion"), None);
        assert_eq!(ValueType::parse("string"), Some(ValueType::Str));
    }

    #[test]
    fn parse_literals() {
        assert_eq!(
            Value::parse_as(ValueType::Float, "3.5"),
            Ok(Value::Float(3.5))
        );
        assert_eq!(Value::parse_as(ValueType::Int, "-7"), Ok(Value::Int(-7)));
        assert_eq!(
            Value::parse_as(ValueType::Bool, "yes"),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Value::parse_as(ValueType::Vec2, " 1.5 , -2 "),
            Ok(Value::Vec2(1.5, -2.0))
        );
        assert_eq!(
            Value::parse_as(ValueType::Str, "hello"),
            Ok(Value::Str("hello".into()))
        );
    }

    #[test]
    fn parse_failures_name_type() {
        let err = Value::parse_as(ValueType::Int, "3.5").unwrap_err();
        assert_eq!(err.ty, ValueType::Int);
        assert!(err.to_string().contains("int"));
        assert!(Value::parse_as(ValueType::Vec2, "1.0").is_err());
        assert!(Value::parse_as(ValueType::Bool, "maybe").is_err());
    }

    #[test]
    fn literal_roundtrip() {
        for v in [
            Value::Float(2.25),
            Value::Int(-42),
            Value::Bool(true),
            Value::Str("goblin king".into()),
            Value::Vec2(1.5, -0.25),
        ] {
            let ty = v.value_type();
            assert_eq!(Value::parse_as(ty, &v.to_literal()), Ok(v));
        }
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_number(), Some(1.5));
        assert_eq!(Value::Bool(true).as_number(), None);
        assert_eq!(Value::Str("x".into()).as_number(), None);
    }

    #[test]
    fn default_values_match_types() {
        for ty in [
            ValueType::Float,
            ValueType::Int,
            ValueType::Bool,
            ValueType::Str,
            ValueType::Vec2,
        ] {
            assert_eq!(ty.default_value().value_type(), ty);
        }
    }
}
