//! Designer-authored event triggers.
//!
//! The paper lists "triggers for in-game events" among the content that is
//! really software but lives in data files. A trigger binds an *event*
//! (entering an area, a timer, a stat crossing a threshold, a named custom
//! event) to guarded *actions* (set a component, spawn a template, emit a
//! follow-up event, run a script). The engine evaluates triggers against
//! entity state through the [`ComponentView`] trait, keeping this crate
//! free of engine dependencies.

use std::collections::HashMap;
use std::fmt;

use crate::gdml::{Element, GdmlError};
use crate::value::{Value, ValueType};

/// Read-only view of one entity's components, implemented by the engine.
pub trait ComponentView {
    /// Value of `component`, or `None` when the entity lacks it.
    fn get(&self, component: &str) -> Option<Value>;
}

/// A map-backed view, handy in tests and tools.
impl ComponentView for HashMap<String, Value> {
    fn get(&self, component: &str) -> Option<Value> {
        HashMap::get(self, component).cloned()
    }
}

/// A rectangular world region (axis-aligned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    pub x: f32,
    pub y: f32,
    pub w: f32,
    pub h: f32,
}

impl Region {
    /// True when point `(px, py)` lies inside (closed on min edges, open on
    /// max edges so adjacent regions do not double-fire).
    pub fn contains(&self, px: f32, py: f32) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }
}

/// What kind of event a trigger listens for.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An entity's position entered the region this tick.
    EnterArea(Region),
    /// An entity's position left the region this tick.
    ExitArea(Region),
    /// Fires every `period` seconds of game time.
    Timer { period: f32 },
    /// A watched component dropped below a threshold this tick.
    StatBelow { component: String, threshold: f64 },
    /// A named event emitted by scripts or other triggers.
    Custom(String),
}

/// Comparison operators for trigger guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn parse(s: &str) -> Option<CmpOp> {
        match s {
            "eq" => Some(CmpOp::Eq),
            "ne" => Some(CmpOp::Ne),
            "lt" => Some(CmpOp::Lt),
            "le" => Some(CmpOp::Le),
            "gt" => Some(CmpOp::Gt),
            "ge" => Some(CmpOp::Ge),
            _ => None,
        }
    }

    fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A guard: `component op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    pub component: String,
    pub op: CmpOp,
    /// Literal text; compared numerically when the component is numeric,
    /// as a string otherwise (booleans compare via "true"/"false").
    pub literal: String,
}

impl Condition {
    /// Evaluate against a component view. Missing components fail the
    /// guard (designers rely on this to scope triggers to entity kinds).
    pub fn eval(&self, view: &dyn ComponentView) -> bool {
        let Some(v) = view.get(&self.component) else {
            return false;
        };
        match v.as_number() {
            Some(n) => match self.literal.trim().parse::<f64>() {
                Ok(lit) => self.op.eval_ord(n.partial_cmp(&lit).unwrap_or(std::cmp::Ordering::Less)),
                Err(_) => false,
            },
            None => {
                let text = match &v {
                    Value::Bool(b) => b.to_string(),
                    Value::Str(s) => s.clone(),
                    Value::Vec2(x, y) => format!("{x},{y}"),
                    _ => unreachable!("numeric handled above"),
                };
                self.op.eval_ord(text.as_str().cmp(self.literal.as_str()))
            }
        }
    }
}

/// An action a fired trigger requests from the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Set `component` to the parsed literal (type comes from the target
    /// column at apply time).
    Set { component: String, literal: String },
    /// Emit a named custom event (may chain into other triggers).
    Emit { event: String },
    /// Spawn an entity from a template at a position.
    Spawn { template: String, x: f32, y: f32 },
    /// Run a named script on the triggering entity.
    RunScript { script: String },
}

/// A complete trigger definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    pub id: String,
    pub event: EventKind,
    pub conditions: Vec<Condition>,
    pub actions: Vec<Action>,
    /// Fire at most once (chest loot, one-shot cutscenes).
    pub once: bool,
}

impl Trigger {
    /// Parse from a `<trigger>` element.
    pub fn from_gdml(el: &Element) -> Result<Self, TriggerError> {
        if el.name != "trigger" {
            return Err(TriggerError::WrongElement(el.name.clone()));
        }
        let id = el.require_attr("id")?.to_string();
        let mk_region = |el: &Element| -> Result<Region, TriggerError> {
            let get = |k: &str| -> Result<f32, TriggerError> {
                let raw = el.require_attr(k)?;
                raw.parse::<f32>().map_err(|_| TriggerError::BadNumber {
                    trigger: id.clone(),
                    attr: k.to_string(),
                    text: raw.to_string(),
                })
            };
            Ok(Region {
                x: get("x")?,
                y: get("y")?,
                w: get("w")?,
                h: get("h")?,
            })
        };
        let kind = el.require_attr("event")?;
        let event = match kind {
            "enter_area" => EventKind::EnterArea(mk_region(el)?),
            "exit_area" => EventKind::ExitArea(mk_region(el)?),
            "timer" => {
                let raw = el.require_attr("period")?;
                let period = raw.parse::<f32>().map_err(|_| TriggerError::BadNumber {
                    trigger: id.clone(),
                    attr: "period".into(),
                    text: raw.to_string(),
                })?;
                if period <= 0.0 {
                    return Err(TriggerError::BadNumber {
                        trigger: id,
                        attr: "period".into(),
                        text: raw.to_string(),
                    });
                }
                EventKind::Timer { period }
            }
            "stat_below" => {
                let component = el.require_attr("component")?.to_string();
                let raw = el.require_attr("threshold")?;
                let threshold = raw.parse::<f64>().map_err(|_| TriggerError::BadNumber {
                    trigger: id.clone(),
                    attr: "threshold".into(),
                    text: raw.to_string(),
                })?;
                EventKind::StatBelow {
                    component,
                    threshold,
                }
            }
            "custom" => EventKind::Custom(el.require_attr("name")?.to_string()),
            other => {
                return Err(TriggerError::UnknownEvent {
                    trigger: id,
                    event: other.to_string(),
                })
            }
        };
        let once = el.attr("once").map(|v| v == "true").unwrap_or(false);

        let mut conditions = Vec::new();
        for w in el.children_named("when") {
            let op_raw = w.require_attr("op")?;
            let op = CmpOp::parse(op_raw).ok_or_else(|| TriggerError::UnknownOp {
                trigger: id.clone(),
                op: op_raw.to_string(),
            })?;
            conditions.push(Condition {
                component: w.require_attr("component")?.to_string(),
                op,
                literal: w.require_attr("value")?.to_string(),
            });
        }

        let mut actions = Vec::new();
        for a in el.children_named("action") {
            let kind = a.require_attr("kind")?;
            let action = match kind {
                "set" => Action::Set {
                    component: a.require_attr("component")?.to_string(),
                    literal: a.require_attr("value")?.to_string(),
                },
                "emit" => Action::Emit {
                    event: a.require_attr("event")?.to_string(),
                },
                "spawn" => {
                    let parse_coord = |k: &str| -> Result<f32, TriggerError> {
                        let raw = a.require_attr(k)?;
                        raw.parse::<f32>().map_err(|_| TriggerError::BadNumber {
                            trigger: id.clone(),
                            attr: k.to_string(),
                            text: raw.to_string(),
                        })
                    };
                    Action::Spawn {
                        template: a.require_attr("template")?.to_string(),
                        x: parse_coord("x")?,
                        y: parse_coord("y")?,
                    }
                }
                "run_script" => Action::RunScript {
                    script: a.require_attr("script")?.to_string(),
                },
                other => {
                    return Err(TriggerError::UnknownAction {
                        trigger: id,
                        action: other.to_string(),
                    })
                }
            };
            actions.push(action);
        }
        if actions.is_empty() {
            return Err(TriggerError::NoActions(id));
        }
        Ok(Trigger {
            id,
            event,
            conditions,
            actions,
            once,
        })
    }

    fn conditions_hold(&self, view: &dyn ComponentView) -> bool {
        self.conditions.iter().all(|c| c.eval(view))
    }

    /// Whether a runtime event is the kind this trigger listens for
    /// (timers are driven by [`TriggerSet::tick`] instead).
    fn matches_event(&self, event: &GameEvent) -> bool {
        match (&self.event, event) {
            (
                EventKind::EnterArea(r),
                GameEvent::Moved {
                    from_x,
                    from_y,
                    to_x,
                    to_y,
                },
            ) => !r.contains(*from_x, *from_y) && r.contains(*to_x, *to_y),
            (
                EventKind::ExitArea(r),
                GameEvent::Moved {
                    from_x,
                    from_y,
                    to_x,
                    to_y,
                },
            ) => r.contains(*from_x, *from_y) && !r.contains(*to_x, *to_y),
            (
                EventKind::StatBelow {
                    component,
                    threshold,
                },
                GameEvent::StatChanged {
                    component: ev_comp,
                    old,
                    new,
                },
            ) => component == ev_comp && *old >= *threshold && *new < *threshold,
            (EventKind::Custom(name), GameEvent::Custom(ev_name)) => name == ev_name,
            _ => false,
        }
    }
}

/// Errors in trigger definitions.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerError {
    WrongElement(String),
    Gdml(GdmlError),
    UnknownEvent { trigger: String, event: String },
    UnknownOp { trigger: String, op: String },
    UnknownAction { trigger: String, action: String },
    BadNumber { trigger: String, attr: String, text: String },
    NoActions(String),
    DuplicateId(String),
}

impl fmt::Display for TriggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerError::WrongElement(n) => write!(f, "expected <trigger>, found <{n}>"),
            TriggerError::Gdml(e) => write!(f, "{e}"),
            TriggerError::UnknownEvent { trigger, event } => {
                write!(f, "trigger {trigger}: unknown event kind {event:?}")
            }
            TriggerError::UnknownOp { trigger, op } => {
                write!(f, "trigger {trigger}: unknown comparison {op:?}")
            }
            TriggerError::UnknownAction { trigger, action } => {
                write!(f, "trigger {trigger}: unknown action kind {action:?}")
            }
            TriggerError::BadNumber { trigger, attr, text } => {
                write!(f, "trigger {trigger}: attribute {attr}={text:?} is not a valid number")
            }
            TriggerError::NoActions(id) => write!(f, "trigger {id} has no actions"),
            TriggerError::DuplicateId(id) => write!(f, "duplicate trigger id {id}"),
        }
    }
}

impl std::error::Error for TriggerError {}

impl From<GdmlError> for TriggerError {
    fn from(e: GdmlError) -> Self {
        TriggerError::Gdml(e)
    }
}

/// A runtime event the engine feeds into [`TriggerSet::fire`].
#[derive(Debug, Clone, PartialEq)]
pub enum GameEvent {
    /// An entity moved from `(from_x, from_y)` to `(to_x, to_y)`.
    Moved {
        from_x: f32,
        from_y: f32,
        to_x: f32,
        to_y: f32,
    },
    /// A watched stat changed from `old` to `new`.
    StatChanged {
        component: String,
        old: f64,
        new: f64,
    },
    /// A named custom event.
    Custom(String),
}

/// A set of triggers with per-trigger timer and once-only bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct TriggerSet {
    triggers: Vec<Trigger>,
    /// accumulated time since last fire, parallel to `triggers`
    timer_accum: Vec<f32>,
    /// whether a once-trigger has fired, parallel to `triggers`
    spent: Vec<bool>,
}

impl TriggerSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse every `<trigger>` child of a `<triggers>` root. Ids must be
    /// unique.
    pub fn from_gdml(root: &Element) -> Result<Self, TriggerError> {
        let mut set = TriggerSet::new();
        for el in root.children_named("trigger") {
            let t = Trigger::from_gdml(el)?;
            set.add(t)?;
        }
        Ok(set)
    }

    /// Add a trigger; ids must be unique.
    pub fn add(&mut self, t: Trigger) -> Result<(), TriggerError> {
        if self.triggers.iter().any(|x| x.id == t.id) {
            return Err(TriggerError::DuplicateId(t.id));
        }
        self.triggers.push(t);
        self.timer_accum.push(0.0);
        self.spent.push(false);
        Ok(())
    }

    /// Number of triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// True when no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Trigger by id.
    pub fn get(&self, id: &str) -> Option<&Trigger> {
        self.triggers.iter().find(|t| t.id == id)
    }

    /// Iterate all triggers in definition order.
    pub fn iter(&self) -> impl Iterator<Item = &Trigger> {
        self.triggers.iter()
    }

    /// Feed an event for one entity; returns the actions of every trigger
    /// that fires, tagged with the trigger id.
    pub fn fire(
        &mut self,
        event: &GameEvent,
        view: &dyn ComponentView,
    ) -> Vec<(String, Action)> {
        let mut fired = Vec::new();
        for i in 0..self.triggers.len() {
            self.fire_at(i, event, view, &mut fired);
        }
        fired
    }

    /// Feed an event to one trigger only, by id — the entry point for
    /// engine-side drivers that already know which trigger an event
    /// belongs to (e.g. the continuous-query threshold watcher, which
    /// maintains one standing view per `stat_below` trigger and must not
    /// fan a synthesized crossing out to sibling triggers with different
    /// thresholds). Unknown ids fire nothing.
    pub fn fire_id(
        &mut self,
        id: &str,
        event: &GameEvent,
        view: &dyn ComponentView,
    ) -> Vec<(String, Action)> {
        let mut fired = Vec::new();
        if let Some(i) = self.triggers.iter().position(|t| t.id == id) {
            self.fire_at(i, event, view, &mut fired);
        }
        fired
    }

    fn fire_at(
        &mut self,
        i: usize,
        event: &GameEvent,
        view: &dyn ComponentView,
        fired: &mut Vec<(String, Action)>,
    ) {
        if self.spent[i] {
            return;
        }
        let t = &self.triggers[i];
        if t.matches_event(event) && t.conditions_hold(view) {
            for a in &t.actions {
                fired.push((t.id.clone(), a.clone()));
            }
            if t.once {
                self.spent[i] = true;
            }
        }
    }

    /// Advance game time by `dt` seconds; returns actions of timer
    /// triggers that elapsed (a trigger can fire multiple times if `dt`
    /// spans several periods). Guards are evaluated against `view` (the
    /// "world" entity for global timers).
    pub fn tick(&mut self, dt: f32, view: &dyn ComponentView) -> Vec<(String, Action)> {
        let mut fired = Vec::new();
        for (i, t) in self.triggers.iter().enumerate() {
            let EventKind::Timer { period } = t.event else {
                continue;
            };
            if self.spent[i] {
                continue;
            }
            self.timer_accum[i] += dt;
            while self.timer_accum[i] >= period {
                self.timer_accum[i] -= period;
                if t.conditions_hold(view) {
                    for a in &t.actions {
                        fired.push((t.id.clone(), a.clone()));
                    }
                    if t.once {
                        self.spent[i] = true;
                        break;
                    }
                }
            }
        }
        fired
    }

    /// Reset once-only and timer state (new play session).
    pub fn reset(&mut self) {
        for s in &mut self.spent {
            *s = false;
        }
        for a in &mut self.timer_accum {
            *a = 0.0;
        }
    }
}

/// Parse a typed value for a [`Action::Set`] literal once the engine knows
/// the column type.
pub fn parse_set_literal(ty: ValueType, literal: &str) -> Option<Value> {
    Value::parse_as(ty, literal).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdml;

    fn view(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn set_from(src: &str) -> TriggerSet {
        TriggerSet::from_gdml(&gdml::parse(src).unwrap()).unwrap()
    }

    const DOOR: &str = r#"
      <triggers>
        <trigger id="boss_door" event="enter_area" x="10" y="10" w="5" h="5">
          <when component="level" op="ge" value="10"/>
          <action kind="set" component="door_open" value="true"/>
          <action kind="emit" event="boss_intro"/>
        </trigger>
      </triggers>"#;

    #[test]
    fn enter_area_fires_on_crossing() {
        let mut set = set_from(DOOR);
        let v = view(&[("level", Value::Int(12))]);
        // moving inside->inside does not fire
        let none = set.fire(
            &GameEvent::Moved {
                from_x: 11.0,
                from_y: 11.0,
                to_x: 12.0,
                to_y: 12.0,
            },
            &v,
        );
        assert!(none.is_empty());
        // crossing the boundary fires both actions
        let fired = set.fire(
            &GameEvent::Moved {
                from_x: 0.0,
                from_y: 0.0,
                to_x: 12.0,
                to_y: 12.0,
            },
            &v,
        );
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].0, "boss_door");
        assert!(matches!(fired[0].1, Action::Set { .. }));
        assert!(matches!(fired[1].1, Action::Emit { .. }));
    }

    #[test]
    fn guard_blocks_low_level() {
        let mut set = set_from(DOOR);
        let v = view(&[("level", Value::Int(3))]);
        let fired = set.fire(
            &GameEvent::Moved {
                from_x: 0.0,
                from_y: 0.0,
                to_x: 12.0,
                to_y: 12.0,
            },
            &v,
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn missing_component_fails_guard() {
        let mut set = set_from(DOOR);
        let v = view(&[]);
        let fired = set.fire(
            &GameEvent::Moved {
                from_x: 0.0,
                from_y: 0.0,
                to_x: 12.0,
                to_y: 12.0,
            },
            &v,
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn exit_area_fires_on_leaving() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="leave" event="exit_area" x="0" y="0" w="10" h="10">
                   <action kind="emit" event="left_zone"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        let fired = set.fire(
            &GameEvent::Moved {
                from_x: 5.0,
                from_y: 5.0,
                to_x: 50.0,
                to_y: 5.0,
            },
            &v,
        );
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn stat_below_fires_on_downward_crossing_only() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="low_hp" event="stat_below" component="hp" threshold="20">
                   <action kind="run_script" script="flee"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        // crossing down fires
        assert_eq!(
            set.fire(
                &GameEvent::StatChanged {
                    component: "hp".into(),
                    old: 25.0,
                    new: 15.0
                },
                &v
            )
            .len(),
            1
        );
        // already below: no re-fire
        assert!(set
            .fire(
                &GameEvent::StatChanged {
                    component: "hp".into(),
                    old: 15.0,
                    new: 10.0
                },
                &v
            )
            .is_empty());
        // different stat: no fire
        assert!(set
            .fire(
                &GameEvent::StatChanged {
                    component: "mana".into(),
                    old: 25.0,
                    new: 15.0
                },
                &v
            )
            .is_empty());
    }

    #[test]
    fn fire_id_scopes_to_one_trigger() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="low" event="stat_below" component="hp" threshold="20">
                   <action kind="emit" event="flee"/>
                 </trigger>
                 <trigger id="critical" event="stat_below" component="hp" threshold="5" once="true">
                   <action kind="emit" event="last_stand"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        // a crossing event that satisfies both thresholds fires only the
        // addressed trigger
        let ev = GameEvent::StatChanged {
            component: "hp".into(),
            old: 30.0,
            new: 2.0,
        };
        let fired = set.fire_id("critical", &ev, &v);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, "critical");
        // once-semantics hold through fire_id
        assert!(set.fire_id("critical", &ev, &v).is_empty());
        // unknown ids fire nothing
        assert!(set.fire_id("nope", &ev, &v).is_empty());
        // the other trigger is untouched and still live
        assert_eq!(set.fire_id("low", &ev, &v).len(), 1);
    }

    #[test]
    fn custom_events_match_by_name() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="chain" event="custom" name="boss_intro">
                   <action kind="spawn" template="boss" x="12" y="12"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        assert!(set.fire(&GameEvent::Custom("other".into()), &v).is_empty());
        let fired = set.fire(&GameEvent::Custom("boss_intro".into()), &v);
        assert_eq!(fired.len(), 1);
        assert!(
            matches!(&fired[0].1, Action::Spawn { template, .. } if template == "boss")
        );
    }

    #[test]
    fn timers_fire_per_period_and_catch_up() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="regen" event="timer" period="5">
                   <action kind="emit" event="heal_pulse"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        assert!(set.tick(4.0, &v).is_empty());
        assert_eq!(set.tick(1.0, &v).len(), 1);
        // a long frame spanning 3 periods fires 3 times
        assert_eq!(set.tick(15.0, &v).len(), 3);
    }

    #[test]
    fn once_triggers_fire_once() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="chest" event="custom" name="open_chest" once="true">
                   <action kind="emit" event="loot"/>
                 </trigger>
               </triggers>"#,
        );
        let v = view(&[]);
        assert_eq!(set.fire(&GameEvent::Custom("open_chest".into()), &v).len(), 1);
        assert!(set.fire(&GameEvent::Custom("open_chest".into()), &v).is_empty());
        set.reset();
        assert_eq!(set.fire(&GameEvent::Custom("open_chest".into()), &v).len(), 1);
    }

    #[test]
    fn string_and_bool_guards() {
        let mut set = set_from(
            r#"<triggers>
                 <trigger id="vip" event="custom" name="enter">
                   <when component="class" op="eq" value="paladin"/>
                   <when component="alive" op="eq" value="true"/>
                   <action kind="emit" event="fanfare"/>
                 </trigger>
               </triggers>"#,
        );
        let yes = view(&[
            ("class", Value::Str("paladin".into())),
            ("alive", Value::Bool(true)),
        ]);
        let no = view(&[
            ("class", Value::Str("rogue".into())),
            ("alive", Value::Bool(true)),
        ]);
        assert_eq!(set.fire(&GameEvent::Custom("enter".into()), &yes).len(), 1);
        assert!(set.fire(&GameEvent::Custom("enter".into()), &no).is_empty());
    }

    #[test]
    fn parse_errors() {
        let bad_event = gdml::parse(
            r#"<triggers><trigger id="x" event="lunar_eclipse"><action kind="emit" event="e"/></trigger></triggers>"#,
        )
        .unwrap();
        assert!(matches!(
            TriggerSet::from_gdml(&bad_event).unwrap_err(),
            TriggerError::UnknownEvent { .. }
        ));

        let no_actions = gdml::parse(
            r#"<triggers><trigger id="x" event="custom" name="e"/></triggers>"#,
        )
        .unwrap();
        assert!(matches!(
            TriggerSet::from_gdml(&no_actions).unwrap_err(),
            TriggerError::NoActions(_)
        ));

        let dup = gdml::parse(
            r#"<triggers>
                 <trigger id="x" event="custom" name="e"><action kind="emit" event="a"/></trigger>
                 <trigger id="x" event="custom" name="f"><action kind="emit" event="b"/></trigger>
               </triggers>"#,
        )
        .unwrap();
        assert!(matches!(
            TriggerSet::from_gdml(&dup).unwrap_err(),
            TriggerError::DuplicateId(_)
        ));

        let bad_period = gdml::parse(
            r#"<triggers><trigger id="x" event="timer" period="-2"><action kind="emit" event="e"/></trigger></triggers>"#,
        )
        .unwrap();
        assert!(matches!(
            TriggerSet::from_gdml(&bad_period).unwrap_err(),
            TriggerError::BadNumber { .. }
        ));

        let bad_op = gdml::parse(
            r#"<triggers><trigger id="x" event="custom" name="e">
                 <when component="hp" op="approximately" value="5"/>
                 <action kind="emit" event="e2"/>
               </trigger></triggers>"#,
        )
        .unwrap();
        assert!(matches!(
            TriggerSet::from_gdml(&bad_op).unwrap_err(),
            TriggerError::UnknownOp { .. }
        ));
    }

    #[test]
    fn region_edges_half_open() {
        let r = Region {
            x: 0.0,
            y: 0.0,
            w: 10.0,
            h: 10.0,
        };
        assert!(r.contains(0.0, 0.0));
        assert!(!r.contains(10.0, 5.0));
        assert!(!r.contains(5.0, 10.0));
    }

    #[test]
    fn set_literal_parses_with_column_type() {
        assert_eq!(
            parse_set_literal(ValueType::Bool, "true"),
            Some(Value::Bool(true))
        );
        assert_eq!(parse_set_literal(ValueType::Int, "banana"), None);
    }
}
