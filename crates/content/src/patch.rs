//! Expansion packs: patching a shipped content bundle.
//!
//! The paper: "game expansion packs typically contain new content, but
//! they include very few modifications to the underlying software" —
//! data-driven design pays off precisely because shipping more game means
//! shipping more *data*. A [`ContentPatch`] is that data: a versioned
//! overlay that adds, overrides, or removes templates, triggers, and UI
//! widgets in a base [`ContentBundle`], with mod-manager-style conflict
//! detection when several packs touch the same artifact.
//!
//! ```xml
//! <patch name="frozen-throne" version="2">
//!   <templates>
//!     <template name="lich" extends="monster">   <!-- add -->
//!       <component name="hp" type="float" default="900"/>
//!     </template>
//!     <template name="monster">                  <!-- override -->
//!       <component name="hp" type="float" default="120"/>
//!     </template>
//!     <remove name="tutorial_dummy"/>            <!-- remove -->
//!   </templates>
//!   <triggers> … <remove id="old_event"/> </triggers>
//!   <ui> … <remove name="beta_banner"/> </ui>
//! </patch>
//! ```

use std::collections::HashSet;
use std::fmt;

use crate::bundle::ContentBundle;
use crate::gdml::{self, Element, GdmlError, Node};
use crate::template::{EntityTemplate, TemplateError, TemplateLibrary};
use crate::trigger::{Trigger, TriggerError, TriggerSet};
use crate::ui::{UiError, UiSpec, Widget};

/// Which artifact table a patch operation touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    Template,
    Trigger,
    UiWidget,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Template => "template",
            ArtifactKind::Trigger => "trigger",
            ArtifactKind::UiWidget => "ui widget",
        })
    }
}

/// Problems loading or applying a patch.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchError {
    Gdml(GdmlError),
    Template(TemplateError),
    Trigger(TriggerError),
    Ui(UiError),
    /// Root element was not `<patch>` or lacked name/version.
    BadHeader(String),
    /// A `<remove>` names an artifact the base does not have.
    RemoveMissing { kind: ArtifactKind, name: String },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::Gdml(e) => write!(f, "markup: {e}"),
            PatchError::Template(e) => write!(f, "template: {e}"),
            PatchError::Trigger(e) => write!(f, "trigger: {e}"),
            PatchError::Ui(e) => write!(f, "ui: {e}"),
            PatchError::BadHeader(msg) => write!(f, "bad patch header: {msg}"),
            PatchError::RemoveMissing { kind, name } => {
                write!(f, "patch removes {kind} {name:?} which does not exist")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// What applying one patch did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchReport {
    pub added: usize,
    pub overridden: usize,
    pub removed: usize,
}

/// Two patches touching the same artifact (applied in version order, the
/// later one wins — the conflict is reported, not rejected, because mod
/// load orders are a player decision).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchConflict {
    pub kind: ArtifactKind,
    pub name: String,
    pub first: String,
    pub second: String,
}

/// A versioned content overlay (an expansion pack's data).
#[derive(Debug, Clone, Default)]
pub struct ContentPatch {
    pub name: String,
    pub version: u32,
    template_upserts: Vec<EntityTemplate>,
    template_removes: Vec<String>,
    trigger_upserts: Vec<Trigger>,
    trigger_removes: Vec<String>,
    ui_upserts: Vec<Widget>,
    ui_removes: Vec<String>,
}

impl ContentPatch {
    /// Parse a `<patch>` document.
    pub fn from_gdml_str(src: &str) -> Result<Self, PatchError> {
        let root = gdml::parse(src).map_err(PatchError::Gdml)?;
        Self::from_gdml(&root)
    }

    /// Parse from a parsed root element.
    pub fn from_gdml(root: &Element) -> Result<Self, PatchError> {
        if root.name != "patch" {
            return Err(PatchError::BadHeader(format!(
                "expected <patch>, found <{}>",
                root.name
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| PatchError::BadHeader("missing name".into()))?
            .to_string();
        let version: u32 = root
            .attr("version")
            .ok_or_else(|| PatchError::BadHeader("missing version".into()))?
            .parse()
            .map_err(|_| PatchError::BadHeader("version must be an integer".into()))?;
        let mut patch = ContentPatch {
            name,
            version,
            ..Default::default()
        };
        if let Some(section) = root.first_child("templates") {
            for el in section.children_named("template") {
                patch
                    .template_upserts
                    .push(EntityTemplate::from_gdml(el).map_err(PatchError::Template)?);
            }
            patch.template_removes = removes(section, "name")?;
        }
        if let Some(section) = root.first_child("triggers") {
            for el in section.children_named("trigger") {
                patch
                    .trigger_upserts
                    .push(Trigger::from_gdml(el).map_err(PatchError::Trigger)?);
            }
            patch.trigger_removes = removes(section, "id")?;
        }
        if let Some(section) = root.first_child("ui") {
            // parse the section minus <remove> children as a UI spec
            let filtered = Element {
                name: "ui".into(),
                attrs: Vec::new(),
                children: section
                    .children
                    .iter()
                    .filter(|n| !matches!(n, Node::Element(e) if e.name == "remove"))
                    .cloned()
                    .collect(),
            };
            patch.ui_upserts = UiSpec::from_gdml(&filtered)
                .map_err(PatchError::Ui)?
                .widgets;
            patch.ui_removes = removes(section, "name")?;
        }
        Ok(patch)
    }

    /// Every artifact this patch adds, overrides, or removes — the
    /// footprint used for cross-patch conflict detection.
    pub fn touched(&self) -> HashSet<(ArtifactKind, String)> {
        let mut out = HashSet::new();
        for t in &self.template_upserts {
            out.insert((ArtifactKind::Template, t.name.clone()));
        }
        for n in &self.template_removes {
            out.insert((ArtifactKind::Template, n.clone()));
        }
        for t in &self.trigger_upserts {
            out.insert((ArtifactKind::Trigger, t.id.clone()));
        }
        for n in &self.trigger_removes {
            out.insert((ArtifactKind::Trigger, n.clone()));
        }
        for w in &self.ui_upserts {
            out.insert((ArtifactKind::UiWidget, w.name.clone()));
        }
        for n in &self.ui_removes {
            out.insert((ArtifactKind::UiWidget, n.clone()));
        }
        out
    }

    /// Apply to a bundle. Upserts add or replace by name; removes must
    /// hit an existing artifact (a remove of something absent means the
    /// pack was built against a different base — fail loudly). The caller
    /// should re-run [`ContentBundle::validate`] afterwards: a patch can
    /// remove a template some surviving trigger still spawns.
    pub fn apply(&self, bundle: &mut ContentBundle) -> Result<PatchReport, PatchError> {
        let mut report = PatchReport::default();

        // templates: rebuild the library with upserts and removes applied
        let mut templates: Vec<EntityTemplate> = {
            let names: Vec<String> = bundle.templates.names().map(|s| s.to_string()).collect();
            names
                .iter()
                .map(|n| bundle.templates.get(n).expect("listed name").clone())
                .collect()
        };
        for name in &self.template_removes {
            let before = templates.len();
            templates.retain(|t| &t.name != name);
            if templates.len() == before {
                return Err(PatchError::RemoveMissing {
                    kind: ArtifactKind::Template,
                    name: name.clone(),
                });
            }
            report.removed += 1;
        }
        for up in &self.template_upserts {
            match templates.iter_mut().find(|t| t.name == up.name) {
                Some(slot) => {
                    *slot = up.clone();
                    report.overridden += 1;
                }
                None => {
                    templates.push(up.clone());
                    report.added += 1;
                }
            }
        }
        let mut lib = TemplateLibrary::new();
        for t in templates {
            lib.add(t).map_err(PatchError::Template)?;
        }
        bundle.templates = lib;

        // triggers
        let mut triggers: Vec<Trigger> = bundle.triggers.iter().cloned().collect();
        for id in &self.trigger_removes {
            let before = triggers.len();
            triggers.retain(|t| &t.id != id);
            if triggers.len() == before {
                return Err(PatchError::RemoveMissing {
                    kind: ArtifactKind::Trigger,
                    name: id.clone(),
                });
            }
            report.removed += 1;
        }
        for up in &self.trigger_upserts {
            match triggers.iter_mut().find(|t| t.id == up.id) {
                Some(slot) => {
                    *slot = up.clone();
                    report.overridden += 1;
                }
                None => {
                    triggers.push(up.clone());
                    report.added += 1;
                }
            }
        }
        let mut set = TriggerSet::new();
        for t in triggers {
            set.add(t).map_err(PatchError::Trigger)?;
        }
        bundle.triggers = set;

        // ui widgets
        for name in &self.ui_removes {
            let before = bundle.ui.widgets.len();
            bundle.ui.widgets.retain(|w| &w.name != name);
            if bundle.ui.widgets.len() == before {
                return Err(PatchError::RemoveMissing {
                    kind: ArtifactKind::UiWidget,
                    name: name.clone(),
                });
            }
            report.removed += 1;
        }
        for up in &self.ui_upserts {
            match bundle.ui.widgets.iter_mut().find(|w| w.name == up.name) {
                Some(slot) => {
                    *slot = up.clone();
                    report.overridden += 1;
                }
                None => {
                    bundle.ui.widgets.push(up.clone());
                    report.added += 1;
                }
            }
        }
        Ok(report)
    }
}

fn removes(section: &Element, key: &str) -> Result<Vec<String>, PatchError> {
    section
        .children_named("remove")
        .map(|el| {
            el.attr(key)
                .map(|s| s.to_string())
                .ok_or_else(|| PatchError::BadHeader(format!("<remove> needs a {key} attribute")))
        })
        .collect()
}

/// Apply several patches in `(version, name)` order, reporting conflicts
/// (two patches touching the same artifact). The later patch wins, as in
/// mod load orders; conflicts are informational.
pub fn apply_all(
    bundle: &mut ContentBundle,
    patches: &[ContentPatch],
) -> Result<(Vec<PatchReport>, Vec<PatchConflict>), PatchError> {
    let mut order: Vec<&ContentPatch> = patches.iter().collect();
    order.sort_by(|a, b| (a.version, &a.name).cmp(&(b.version, &b.name)));

    let mut conflicts = Vec::new();
    let mut seen: Vec<(&ContentPatch, HashSet<(ArtifactKind, String)>)> = Vec::new();
    for p in &order {
        let touched = p.touched();
        for (prev, prev_touched) in &seen {
            for key in touched.intersection(prev_touched) {
                conflicts.push(PatchConflict {
                    kind: key.0,
                    name: key.1.clone(),
                    first: prev.name.clone(),
                    second: p.name.clone(),
                });
            }
        }
        seen.push((p, touched));
    }

    let mut reports = Vec::with_capacity(order.len());
    for p in order {
        reports.push(p.apply(bundle)?);
    }
    Ok((reports, conflicts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
      <content>
        <templates>
          <template name="monster" tags="hostile">
            <component name="hp" type="float" default="100"/>
          </template>
          <template name="tutorial_dummy">
            <component name="hp" type="float" default="1"/>
          </template>
        </templates>
        <triggers>
          <trigger id="welcome" event="custom" name="login">
            <action kind="spawn" template="tutorial_dummy" x="0" y="0"/>
          </trigger>
        </triggers>
        <ui>
          <bar name="hp_bar" width="200" height="12" bind="hp"
               anchor="top" relative_to="screen" relative_point="top"/>
        </ui>
      </content>"#;

    fn base() -> ContentBundle {
        let b = ContentBundle::from_gdml_str(BASE).unwrap();
        assert!(b.validate().is_empty());
        b
    }

    #[test]
    fn patch_adds_overrides_and_removes() {
        let mut b = base();
        let patch = ContentPatch::from_gdml_str(
            r#"
            <patch name="xpack" version="1">
              <templates>
                <template name="dragon" extends="monster" tags="boss">
                  <component name="hp" type="float" default="5000"/>
                </template>
                <template name="monster" tags="hostile">
                  <component name="hp" type="float" default="150"/>
                </template>
              </templates>
            </patch>"#,
        )
        .unwrap();
        let report = patch.apply(&mut b).unwrap();
        assert_eq!(report, PatchReport { added: 1, overridden: 1, removed: 0 });
        assert_eq!(b.templates.len(), 3);
        // the override took: monsters now have 150 hp
        let resolved = b.templates.resolve("dragon").unwrap();
        let hp = resolved
            .instantiate()
            .into_iter()
            .find(|(n, _)| n == "hp")
            .unwrap();
        assert_eq!(hp.1, crate::value::Value::Float(5000.0));
    }

    #[test]
    fn remove_then_validate_catches_dangling_spawn() {
        let mut b = base();
        let patch = ContentPatch::from_gdml_str(
            r#"
            <patch name="cleanup" version="1">
              <templates><remove name="tutorial_dummy"/></templates>
            </patch>"#,
        )
        .unwrap();
        let report = patch.apply(&mut b).unwrap();
        assert_eq!(report.removed, 1);
        // the welcome trigger still spawns the removed template
        let problems = b.validate();
        assert_eq!(problems.len(), 1);
    }

    #[test]
    fn remove_missing_fails_loudly() {
        let mut b = base();
        let patch = ContentPatch::from_gdml_str(
            r#"
            <patch name="bad" version="1">
              <templates><remove name="kraken"/></templates>
            </patch>"#,
        )
        .unwrap();
        let err = patch.apply(&mut b).unwrap_err();
        assert!(matches!(
            err,
            PatchError::RemoveMissing { kind: ArtifactKind::Template, .. }
        ));
    }

    #[test]
    fn trigger_and_ui_patching() {
        let mut b = base();
        let patch = ContentPatch::from_gdml_str(
            r#"
            <patch name="season2" version="2">
              <triggers>
                <trigger id="raid_call" event="custom" name="horn">
                  <action kind="spawn" template="monster" x="5" y="5"/>
                </trigger>
                <remove id="welcome"/>
              </triggers>
              <ui>
                <bar name="hp_bar" width="300" height="16" bind="hp"
                     anchor="top" relative_to="screen" relative_point="top"/>
                <remove name="hp_bar"/>
              </ui>
            </patch>"#,
        )
        .unwrap();
        // ui removes apply before upserts: the patch replaces the bar
        let report = patch.apply(&mut b).unwrap();
        assert_eq!(report.added, 2, "trigger + re-added bar");
        assert_eq!(report.removed, 2, "welcome trigger + old bar");
        assert!(b.triggers.get("welcome").is_none());
        assert!(b.triggers.get("raid_call").is_some());
        assert_eq!(b.ui.widgets.len(), 1);
        assert_eq!(b.ui.widgets[0].width, 300.0);
    }

    #[test]
    fn header_validation() {
        assert!(matches!(
            ContentPatch::from_gdml_str("<content/>").unwrap_err(),
            PatchError::BadHeader(_)
        ));
        assert!(matches!(
            ContentPatch::from_gdml_str("<patch version=\"1\"/>").unwrap_err(),
            PatchError::BadHeader(_)
        ));
        assert!(matches!(
            ContentPatch::from_gdml_str("<patch name=\"p\" version=\"one\"/>").unwrap_err(),
            PatchError::BadHeader(_)
        ));
    }

    #[test]
    fn apply_all_orders_by_version_and_reports_conflicts() {
        let mut b = base();
        // two packs both override "monster": v1 then v2, v2 wins
        let p2 = ContentPatch::from_gdml_str(
            r#"
            <patch name="later" version="2">
              <templates>
                <template name="monster"><component name="hp" type="float" default="300"/></template>
              </templates>
            </patch>"#,
        )
        .unwrap();
        let p1 = ContentPatch::from_gdml_str(
            r#"
            <patch name="earlier" version="1">
              <templates>
                <template name="monster"><component name="hp" type="float" default="200"/></template>
              </templates>
            </patch>"#,
        )
        .unwrap();
        // pass out of order; apply_all sorts
        let (reports, conflicts) = apply_all(&mut b, &[p2, p1]).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].first, "earlier");
        assert_eq!(conflicts[0].second, "later");
        let hp = b
            .templates
            .resolve("monster")
            .unwrap()
            .instantiate()
            .into_iter()
            .find(|(n, _)| n == "hp")
            .unwrap();
        assert_eq!(hp.1, crate::value::Value::Float(300.0), "v2 wins");
    }

    #[test]
    fn disjoint_patches_do_not_conflict() {
        let mut b = base();
        let p1 = ContentPatch::from_gdml_str(
            r#"<patch name="a" version="1">
                 <templates><template name="wolf"/></templates>
               </patch>"#,
        )
        .unwrap();
        let p2 = ContentPatch::from_gdml_str(
            r#"<patch name="b" version="1">
                 <templates><template name="bear"/></templates>
               </patch>"#,
        )
        .unwrap();
        let (_, conflicts) = apply_all(&mut b, &[p1, p2]).unwrap();
        assert!(conflicts.is_empty());
        assert_eq!(b.templates.len(), 4);
    }

    #[test]
    fn touched_footprint() {
        let p = ContentPatch::from_gdml_str(
            r#"<patch name="a" version="1">
                 <templates><template name="wolf"/><remove name="old"/></templates>
               </patch>"#,
        )
        .unwrap();
        let touched = p.touched();
        assert!(touched.contains(&(ArtifactKind::Template, "wolf".into())));
        assert!(touched.contains(&(ArtifactKind::Template, "old".into())));
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn empty_patch_is_a_noop() {
        let mut b = base();
        let before_templates = b.templates.len();
        let p = ContentPatch::from_gdml_str(r#"<patch name="noop" version="9"/>"#).unwrap();
        let report = p.apply(&mut b).unwrap();
        assert_eq!(report, PatchReport::default());
        assert_eq!(b.templates.len(), before_templates);
    }
}
