//! Declarative UI specifications, modelled on World of Warcraft's XML UI
//! language.
//!
//! The paper: "World of Warcraft contains an XML specification language
//! that allows players to define the look of their user interface, from
//! window positions to button functionality". This module parses such
//! specs from GDML, resolves the anchor-based layout to absolute
//! rectangles, and validates the document (dangling anchor references,
//! duplicate names, anchor cycles) — the same checks the game client runs
//! when loading player addons.

use std::collections::HashMap;
use std::fmt;

use crate::gdml::{Element, GdmlError};

/// The nine anchor points of a rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorPoint {
    TopLeft,
    Top,
    TopRight,
    Left,
    Center,
    Right,
    BottomLeft,
    Bottom,
    BottomRight,
}

impl AnchorPoint {
    pub fn parse(s: &str) -> Option<AnchorPoint> {
        match s {
            "topleft" => Some(AnchorPoint::TopLeft),
            "top" => Some(AnchorPoint::Top),
            "topright" => Some(AnchorPoint::TopRight),
            "left" => Some(AnchorPoint::Left),
            "center" => Some(AnchorPoint::Center),
            "right" => Some(AnchorPoint::Right),
            "bottomleft" => Some(AnchorPoint::BottomLeft),
            "bottom" => Some(AnchorPoint::Bottom),
            "bottomright" => Some(AnchorPoint::BottomRight),
            _ => None,
        }
    }

    /// Offset of this point within a `w`×`h` rectangle, from its top-left.
    fn offset_in(self, w: f32, h: f32) -> (f32, f32) {
        let x = match self {
            AnchorPoint::TopLeft | AnchorPoint::Left | AnchorPoint::BottomLeft => 0.0,
            AnchorPoint::Top | AnchorPoint::Center | AnchorPoint::Bottom => w / 2.0,
            _ => w,
        };
        let y = match self {
            AnchorPoint::TopLeft | AnchorPoint::Top | AnchorPoint::TopRight => 0.0,
            AnchorPoint::Left | AnchorPoint::Center | AnchorPoint::Right => h / 2.0,
            _ => h,
        };
        (x, y)
    }
}

/// An anchor: glue `point` of this widget to `relative_point` of `target`.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    pub point: AnchorPoint,
    /// Widget name, or `"parent"`/`"screen"` for the root surface.
    pub target: String,
    pub relative_point: AnchorPoint,
    pub dx: f32,
    pub dy: f32,
}

/// Widget-kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WidgetKind {
    /// Plain container.
    Frame,
    /// Clickable button; `on_click` names a script.
    Button { label: String, on_click: Option<String> },
    /// Static or databound text; `bind` names a component to display.
    Text { text: String, bind: Option<String> },
    /// Progress bar bound to a component, scaled into `[min, max]`.
    Bar { bind: String, min: f32, max: f32 },
}

impl WidgetKind {
    /// The GDML tag name this kind is written as.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WidgetKind::Frame => "frame",
            WidgetKind::Button { .. } => "button",
            WidgetKind::Text { .. } => "text",
            WidgetKind::Bar { .. } => "bar",
        }
    }
}

/// One widget in a UI spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Widget {
    pub name: String,
    pub kind: WidgetKind,
    pub width: f32,
    pub height: f32,
    pub anchor: Anchor,
}

/// A resolved rectangle in screen coordinates (y grows downward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub x: f32,
    pub y: f32,
    pub w: f32,
    pub h: f32,
}

impl Rect {
    /// True when the rectangles overlap.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.x + other.w
            && self.x + self.w > other.x
            && self.y < other.y + other.h
            && self.y + self.h > other.y
    }
}

/// Errors in UI specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum UiError {
    Gdml(GdmlError),
    UnknownWidgetKind { widget: String, kind: String },
    UnknownAnchorPoint { widget: String, point: String },
    BadNumber { widget: String, attr: String, text: String },
    DuplicateName(String),
    DanglingAnchor { widget: String, target: String },
    AnchorCycle(Vec<String>),
}

impl fmt::Display for UiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiError::Gdml(e) => write!(f, "{e}"),
            UiError::UnknownWidgetKind { widget, kind } => {
                write!(f, "widget {widget}: unknown kind <{kind}>")
            }
            UiError::UnknownAnchorPoint { widget, point } => {
                write!(f, "widget {widget}: unknown anchor point {point:?}")
            }
            UiError::BadNumber { widget, attr, text } => {
                write!(f, "widget {widget}: attribute {attr}={text:?} is not a number")
            }
            UiError::DuplicateName(n) => write!(f, "duplicate widget name {n}"),
            UiError::DanglingAnchor { widget, target } => {
                write!(f, "widget {widget} anchored to unknown widget {target}")
            }
            UiError::AnchorCycle(path) => write!(f, "anchor cycle: {}", path.join(" -> ")),
        }
    }
}

impl std::error::Error for UiError {}

impl From<GdmlError> for UiError {
    fn from(e: GdmlError) -> Self {
        UiError::Gdml(e)
    }
}

/// A parsed UI specification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UiSpec {
    pub widgets: Vec<Widget>,
}

impl UiSpec {
    /// Parse a `<ui>` root whose children are widget elements:
    ///
    /// ```xml
    /// <ui>
    ///   <frame name="hud" width="400" height="80"
    ///          anchor="bottom" relative_to="screen" relative_point="bottom"/>
    ///   <bar name="hp" width="380" height="20" bind="hp" min="0" max="100"
    ///        anchor="top" relative_to="hud" relative_point="top" dy="8"/>
    /// </ui>
    /// ```
    pub fn from_gdml(root: &Element) -> Result<Self, UiError> {
        let mut spec = UiSpec::default();
        for el in root.child_elements() {
            let name = el.require_attr("name")?.to_string();
            if spec.widgets.iter().any(|w| w.name == name) {
                return Err(UiError::DuplicateName(name));
            }
            let num = |attr: &str, default: Option<f32>| -> Result<f32, UiError> {
                match el.attr(attr) {
                    Some(raw) => raw.parse::<f32>().map_err(|_| UiError::BadNumber {
                        widget: name.clone(),
                        attr: attr.to_string(),
                        text: raw.to_string(),
                    }),
                    None => match default {
                        Some(d) => Ok(d),
                        None => Err(UiError::Gdml(GdmlError::MissingAttr {
                            element: el.name.clone(),
                            attr: attr.to_string(),
                        })),
                    },
                }
            };
            let kind = match el.name.as_str() {
                "frame" => WidgetKind::Frame,
                "button" => WidgetKind::Button {
                    label: el.attr("label").unwrap_or_default().to_string(),
                    on_click: el.attr("on_click").map(str::to_string),
                },
                "text" => WidgetKind::Text {
                    text: el.attr("text").unwrap_or_default().to_string(),
                    bind: el.attr("bind").map(str::to_string),
                },
                "bar" => WidgetKind::Bar {
                    bind: el.require_attr("bind")?.to_string(),
                    min: num("min", Some(0.0))?,
                    max: num("max", Some(1.0))?,
                },
                other => {
                    return Err(UiError::UnknownWidgetKind {
                        widget: name,
                        kind: other.to_string(),
                    })
                }
            };
            let point_attr = |attr: &str, default: AnchorPoint| -> Result<AnchorPoint, UiError> {
                match el.attr(attr) {
                    None => Ok(default),
                    Some(raw) => AnchorPoint::parse(raw).ok_or_else(|| UiError::UnknownAnchorPoint {
                        widget: name.clone(),
                        point: raw.to_string(),
                    }),
                }
            };
            let anchor = Anchor {
                point: point_attr("anchor", AnchorPoint::TopLeft)?,
                target: el.attr("relative_to").unwrap_or("screen").to_string(),
                relative_point: point_attr("relative_point", AnchorPoint::TopLeft)?,
                dx: num("dx", Some(0.0))?,
                dy: num("dy", Some(0.0))?,
            };
            let width = num("width", None)?;
            let height = num("height", None)?;
            spec.widgets.push(Widget {
                name,
                kind,
                width,
                height,
                anchor,
            });
        }
        Ok(spec)
    }

    /// Widget by name.
    pub fn get(&self, name: &str) -> Option<&Widget> {
        self.widgets.iter().find(|w| w.name == name)
    }

    /// Resolve the layout against a screen of the given size.
    ///
    /// Returns absolute rectangles keyed by widget name, or an error when
    /// an anchor references a missing widget or anchors form a cycle.
    pub fn layout(&self, screen_w: f32, screen_h: f32) -> Result<HashMap<String, Rect>, UiError> {
        // Topologically order widgets along anchor dependencies.
        let index: HashMap<&str, usize> = self
            .widgets
            .iter()
            .enumerate()
            .map(|(i, w)| (w.name.as_str(), i))
            .collect();
        for w in &self.widgets {
            let t = w.anchor.target.as_str();
            if t != "screen" && t != "parent" && !index.contains_key(t) {
                return Err(UiError::DanglingAnchor {
                    widget: w.name.clone(),
                    target: w.anchor.target.clone(),
                });
            }
        }
        let mut rects: HashMap<String, Rect> = HashMap::new();
        let screen = Rect {
            x: 0.0,
            y: 0.0,
            w: screen_w,
            h: screen_h,
        };
        // Iteratively resolve widgets whose targets are resolved; detect
        // cycles when no progress is made.
        let mut pending: Vec<usize> = (0..self.widgets.len()).collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&i| {
                let w = &self.widgets[i];
                let target_rect = match w.anchor.target.as_str() {
                    "screen" | "parent" => Some(screen),
                    name => rects.get(name).copied(),
                };
                match target_rect {
                    None => true, // keep pending
                    Some(tr) => {
                        let (tx, ty) = w.anchor.relative_point.offset_in(tr.w, tr.h);
                        let (sx, sy) = w.anchor.point.offset_in(w.width, w.height);
                        rects.insert(
                            w.name.clone(),
                            Rect {
                                x: tr.x + tx - sx + w.anchor.dx,
                                y: tr.y + ty - sy + w.anchor.dy,
                                w: w.width,
                                h: w.height,
                            },
                        );
                        false
                    }
                }
            });
            if pending.len() == before {
                let cycle: Vec<String> = pending
                    .iter()
                    .map(|&i| self.widgets[i].name.clone())
                    .collect();
                return Err(UiError::AnchorCycle(cycle));
            }
        }
        Ok(rects)
    }

    /// Validation pass: run layout on a nominal screen and collect every
    /// structural problem (studio pipelines surface these to designers).
    pub fn validate(&self) -> Vec<UiError> {
        match self.layout(1920.0, 1080.0) {
            Ok(_) => Vec::new(),
            Err(e) => vec![e],
        }
    }

    /// Names of components this UI reads (for engine data binding).
    pub fn bound_components(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .widgets
            .iter()
            .filter_map(|w| match &w.kind {
                WidgetKind::Bar { bind, .. } => Some(bind.as_str()),
                WidgetKind::Text { bind: Some(b), .. } => Some(b.as_str()),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdml;

    fn spec(src: &str) -> UiSpec {
        UiSpec::from_gdml(&gdml::parse(src).unwrap()).unwrap()
    }

    const HUD: &str = r#"
      <ui>
        <frame name="hud" width="400" height="100"
               anchor="bottom" relative_to="screen" relative_point="bottom"/>
        <bar name="hp" width="380" height="20" bind="hp" min="0" max="100"
             anchor="top" relative_to="hud" relative_point="top" dy="10"/>
        <button name="attack" label="Attack!" on_click="do_attack"
                width="80" height="30"
                anchor="bottomright" relative_to="hud" relative_point="bottomright"
                dx="-5" dy="-5"/>
        <text name="title" text="GameDB" width="100" height="20"
              anchor="center" relative_to="screen" relative_point="center"/>
      </ui>"#;

    #[test]
    fn parse_widgets() {
        let s = spec(HUD);
        assert_eq!(s.widgets.len(), 4);
        let attack = s.get("attack").unwrap();
        assert!(matches!(
            &attack.kind,
            WidgetKind::Button { label, on_click: Some(cb) }
                if label == "Attack!" && cb == "do_attack"
        ));
        assert_eq!(s.bound_components(), vec!["hp"]);
    }

    #[test]
    fn layout_resolves_anchor_chain() {
        let s = spec(HUD);
        let rects = s.layout(1920.0, 1080.0).unwrap();
        let hud = rects["hud"];
        // hud bottom-center glued to screen bottom-center
        assert_eq!(hud.x, (1920.0 - 400.0) / 2.0);
        assert_eq!(hud.y, 1080.0 - 100.0);
        // hp bar top glued to hud top with dy=10
        let hp = rects["hp"];
        assert_eq!(hp.y, hud.y + 10.0);
        assert_eq!(hp.x, hud.x + (400.0 - 380.0) / 2.0);
        // attack bottom-right inset by (-5,-5)
        let attack = rects["attack"];
        assert_eq!(attack.x + attack.w, hud.x + hud.w - 5.0);
        assert_eq!(attack.y + attack.h, hud.y + hud.h - 5.0);
        // centered text
        let title = rects["title"];
        assert_eq!(title.x, (1920.0 - 100.0) / 2.0);
        assert_eq!(title.y, (1080.0 - 20.0) / 2.0);
    }

    #[test]
    fn layout_order_independent() {
        // child declared before its anchor target
        let s = spec(
            r#"<ui>
                 <text name="label" text="hi" width="50" height="10"
                       anchor="topleft" relative_to="panel" relative_point="topleft"/>
                 <frame name="panel" width="200" height="100"
                        anchor="topleft" relative_to="screen" relative_point="topleft"
                        dx="30" dy="40"/>
               </ui>"#,
        );
        let rects = s.layout(800.0, 600.0).unwrap();
        assert_eq!(rects["label"].x, 30.0);
        assert_eq!(rects["label"].y, 40.0);
    }

    #[test]
    fn dangling_anchor_detected() {
        let s = spec(
            r#"<ui>
                 <frame name="a" width="10" height="10" relative_to="ghost"/>
               </ui>"#,
        );
        assert!(matches!(
            s.layout(100.0, 100.0).unwrap_err(),
            UiError::DanglingAnchor { .. }
        ));
        assert_eq!(s.validate().len(), 1);
    }

    #[test]
    fn anchor_cycle_detected() {
        let s = spec(
            r#"<ui>
                 <frame name="a" width="10" height="10" relative_to="b"/>
                 <frame name="b" width="10" height="10" relative_to="a"/>
               </ui>"#,
        );
        match s.layout(100.0, 100.0).unwrap_err() {
            UiError::AnchorCycle(path) => {
                assert_eq!(path.len(), 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let root = gdml::parse(
            r#"<ui>
                 <frame name="x" width="1" height="1"/>
                 <frame name="x" width="1" height="1"/>
               </ui>"#,
        )
        .unwrap();
        assert!(matches!(
            UiSpec::from_gdml(&root).unwrap_err(),
            UiError::DuplicateName(_)
        ));
    }

    #[test]
    fn unknown_kind_and_anchor_point() {
        let bad_kind = gdml::parse(r#"<ui><dial name="x" width="1" height="1"/></ui>"#).unwrap();
        assert!(matches!(
            UiSpec::from_gdml(&bad_kind).unwrap_err(),
            UiError::UnknownWidgetKind { .. }
        ));
        let bad_point = gdml::parse(
            r#"<ui><frame name="x" width="1" height="1" anchor="middleish"/></ui>"#,
        )
        .unwrap();
        assert!(matches!(
            UiSpec::from_gdml(&bad_point).unwrap_err(),
            UiError::UnknownAnchorPoint { .. }
        ));
    }

    #[test]
    fn missing_width_is_error() {
        let root = gdml::parse(r#"<ui><frame name="x" height="1"/></ui>"#).unwrap();
        assert!(UiSpec::from_gdml(&root).is_err());
    }

    #[test]
    fn bar_requires_bind() {
        let root = gdml::parse(r#"<ui><bar name="x" width="1" height="1"/></ui>"#).unwrap();
        assert!(UiSpec::from_gdml(&root).is_err());
    }

    #[test]
    fn rect_overlap() {
        let a = Rect { x: 0.0, y: 0.0, w: 10.0, h: 10.0 };
        let b = Rect { x: 5.0, y: 5.0, w: 10.0, h: 10.0 };
        let c = Rect { x: 20.0, y: 0.0, w: 5.0, h: 5.0 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }
}
