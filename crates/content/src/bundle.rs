//! Content bundles: everything a game ships in its data files.
//!
//! A bundle groups the designer-authored artifacts — templates, triggers,
//! UI specs — under one `<content>` root, the way a game's data directory
//! (or an expansion pack) groups its files. Loading validates everything
//! eagerly and reports *all* problems, because designers iterate against
//! validation output, not one-error-at-a-time compiles.

use std::fmt;

use crate::gdml::{self, Element, GdmlError};
use crate::template::{TemplateError, TemplateLibrary};
use crate::trigger::{TriggerError, TriggerSet};
use crate::ui::{UiError, UiSpec};

/// A loaded content bundle.
#[derive(Debug, Clone, Default)]
pub struct ContentBundle {
    pub templates: TemplateLibrary,
    pub triggers: TriggerSet,
    pub ui: UiSpec,
}

/// Any problem found while loading or validating a bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentError {
    Gdml(GdmlError),
    Template(TemplateError),
    Trigger(TriggerError),
    Ui(UiError),
    /// A trigger spawns a template that does not exist.
    SpawnUnknownTemplate { trigger: String, template: String },
}

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentError::Gdml(e) => write!(f, "markup: {e}"),
            ContentError::Template(e) => write!(f, "template: {e}"),
            ContentError::Trigger(e) => write!(f, "trigger: {e}"),
            ContentError::Ui(e) => write!(f, "ui: {e}"),
            ContentError::SpawnUnknownTemplate { trigger, template } => {
                write!(f, "trigger {trigger} spawns unknown template {template}")
            }
        }
    }
}

impl std::error::Error for ContentError {}

impl ContentBundle {
    /// Parse a `<content>` document containing optional `<templates>`,
    /// `<triggers>`, and `<ui>` sections.
    pub fn from_gdml_str(src: &str) -> Result<Self, ContentError> {
        let root = gdml::parse(src).map_err(ContentError::Gdml)?;
        Self::from_gdml(&root)
    }

    /// Parse from an already-parsed root element.
    pub fn from_gdml(root: &Element) -> Result<Self, ContentError> {
        let templates = match root.first_child("templates") {
            Some(el) => TemplateLibrary::from_gdml(el).map_err(ContentError::Template)?,
            None => TemplateLibrary::new(),
        };
        let triggers = match root.first_child("triggers") {
            Some(el) => TriggerSet::from_gdml(el).map_err(ContentError::Trigger)?,
            None => TriggerSet::new(),
        };
        let ui = match root.first_child("ui") {
            Some(el) => UiSpec::from_gdml(el).map_err(ContentError::Ui)?,
            None => UiSpec::default(),
        };
        Ok(ContentBundle {
            templates,
            triggers,
            ui,
        })
    }

    /// Cross-artifact validation: resolve all templates, lay out the UI,
    /// and check trigger → template references. Returns every problem.
    pub fn validate(&self) -> Vec<ContentError> {
        let mut problems: Vec<ContentError> = Vec::new();
        problems.extend(self.templates.validate().into_iter().map(ContentError::Template));
        problems.extend(self.ui.validate().into_iter().map(ContentError::Ui));
        // trigger spawn targets must exist
        for t in self.triggers.iter() {
            for a in &t.actions {
                if let crate::trigger::Action::Spawn { template, .. } = a {
                    if self.templates.get(template).is_none() {
                        problems.push(ContentError::SpawnUnknownTemplate {
                            trigger: t.id.clone(),
                            template: template.clone(),
                        });
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUNDLE: &str = r#"
      <content>
        <templates>
          <template name="monster" tags="hostile">
            <component name="hp" type="float" default="100"/>
          </template>
          <template name="boss" extends="monster">
            <component name="hp" type="float" default="5000"/>
          </template>
        </templates>
        <triggers>
          <trigger id="summon" event="custom" name="ritual_complete">
            <action kind="spawn" template="boss" x="10" y="10"/>
          </trigger>
        </triggers>
        <ui>
          <bar name="boss_hp" width="300" height="16" bind="hp"
               anchor="top" relative_to="screen" relative_point="top" dy="20"/>
        </ui>
      </content>"#;

    #[test]
    fn load_full_bundle() {
        let b = ContentBundle::from_gdml_str(BUNDLE).unwrap();
        assert_eq!(b.templates.len(), 2);
        assert_eq!(b.triggers.len(), 1);
        assert_eq!(b.ui.widgets.len(), 1);
        assert!(b.validate().is_empty());
    }

    #[test]
    fn sections_optional() {
        let b = ContentBundle::from_gdml_str("<content/>").unwrap();
        assert!(b.templates.is_empty());
        assert!(b.triggers.is_empty());
        assert!(b.ui.widgets.is_empty());
        assert!(b.validate().is_empty());
    }

    #[test]
    fn spawn_of_unknown_template_reported() {
        let src = r#"
          <content>
            <triggers>
              <trigger id="bad" event="custom" name="e">
                <action kind="spawn" template="kraken" x="0" y="0"/>
              </trigger>
            </triggers>
          </content>"#;
        let b = ContentBundle::from_gdml_str(src).unwrap();
        let problems = b.validate();
        assert_eq!(problems.len(), 1);
        assert!(matches!(
            &problems[0],
            ContentError::SpawnUnknownTemplate { trigger, template }
                if trigger == "bad" && template == "kraken"
        ));
    }

    #[test]
    fn markup_errors_propagate() {
        let err = ContentBundle::from_gdml_str("<content><oops></content>").unwrap_err();
        assert!(matches!(err, ContentError::Gdml(_)));
    }

    #[test]
    fn validate_aggregates_multiple_problems() {
        let src = r#"
          <content>
            <templates>
              <template name="a" extends="missing"/>
            </templates>
            <triggers>
              <trigger id="bad" event="custom" name="e">
                <action kind="spawn" template="ghost" x="0" y="0"/>
              </trigger>
            </triggers>
          </content>"#;
        let b = ContentBundle::from_gdml_str(src).unwrap();
        assert_eq!(b.validate().len(), 2);
    }
}
