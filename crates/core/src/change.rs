//! The unified change-capture pipeline: one ordered mutation stream
//! behind every world write, consumed declaratively by every derived
//! subsystem.
//!
//! The paper's thesis is that a game *is* a database, so its machinery
//! should be database machinery. Before this module, each derived
//! subsystem (index maintenance, standing views, the WAL, replication)
//! was hand-wired into every `World` write path separately — four
//! parallel taps, each a chance to miss a mutation. Now every mutation
//! funnels through a single internal commit path that appends a typed
//! [`Change`] record to an ordered, tick-stamped **change stream**:
//!
//! * **Standing views** fold the stream at every refresh
//!   ([`crate::world::World::refresh_views`]).
//! * **Durability** is a tap: `gamedb-persist`'s `WalStore` attaches one
//!   ([`crate::world::World::attach_tap`]) and turns each pending
//!   segment into one group-commit WAL frame — so *any* mutation of the
//!   world (scripted ticks, effect batches, direct writes) is durable,
//!   not just calls that went through a mirrored store API.
//! * **Replication** is a tap: `gamedb-sync`'s `Replicator::sync_stream`
//!   ships delta-encoded segments built from the records themselves.
//!
//! ## Interned component names
//!
//! Row and index ops identify their component by [`ComponentId`] — the
//! world's interned small-int column id — not by name. A record no
//! longer clones a `String` per write, WAL frames carry a varint id
//! instead of a length-prefixed name, and replication delta segments
//! ship ids with a one-time name table. Consumers resolve ids through
//! the issuing world ([`crate::world::World::component_name`]); the
//! table itself is made durable by the snapshot schema (written in id
//! order) plus [`ChangeOp::ComponentDefined`] catalog records for
//! components interned after the last snapshot.
//!
//! ## Record taxonomy
//!
//! Row ops ([`ChangeOp::Set`], [`ChangeOp::Removed`],
//! [`ChangeOp::Spawned`], [`ChangeOp::Despawned`]) describe live-entity
//! state and are recorded whenever *any* consumer is attached (a
//! standing view or a tap). [`ChangeOp::Despawned`] carries the dropped
//! row image, so stream consumers (the wealth auditor, delta shipping)
//! can fold a death without rescanning the world. Catalog ops
//! (`ComponentDefined`/`CreateIndex`/`DropIndex`/`RegisterView`/
//! `DropView`/`RetargetView`) and tick stamps ([`ChangeOp::TickTo`])
//! describe schema, derived-state lifecycle, and time; views do not
//! consume them, so they are recorded only while a tap is attached.
//! With no consumers at all, nothing is recorded and writes stay on the
//! fast path.
//!
//! ## Ordering guarantees
//!
//! * Records carry a gap-free, monotonically increasing `seq`; every
//!   consumer observes records in that one order.
//! * Per `(entity, component)` slot, the `old` value of each `Set`
//!   equals the `new` value of the previous `Set` on that slot (or the
//!   pre-stream value) — replaying a recorded stream onto the base
//!   state reconstructs the world exactly (property-tested).
//! * A `ComponentDefined` record precedes the first row op naming its
//!   id, so a consumer decoding the stream in order can always resolve
//!   ids it has not seen before.
//! * A tap never observes a record twice: its cursor only moves forward
//!   ([`crate::world::World::ack_tap`]). Records are retained until the
//!   slowest consumer has consumed them, then reclaimed — unless a
//!   retention limit is set ([`crate::world::World::set_tap_retention`]),
//!   in which case a tap lagging past the limit is **evicted** instead
//!   of pinning the window forever (the leaked-consumer guard). The
//!   exception is a **pinned** tap
//!   ([`crate::world::World::attach_tap_pinned`]): a consumer whose
//!   misses would be data loss — the durability tap — is never evicted;
//!   its laggard pressure is answered by backpressure at its commit
//!   boundary, not by dropping records.
//!
//! [`WriteBatch`] is the batch commit surface: the tick executor's
//! merged effect buffers resolve into one batch and commit through
//! [`crate::world::World::apply_batch`] with amortized index
//! maintenance — and, with a durability tap attached, one WAL frame for
//! the whole batch instead of one per call.

use std::sync::Arc;

use gamedb_content::{Value, ValueType};
use gamedb_spatial::Vec2;

use crate::entity::EntityId;
use crate::index::IndexKind;
use crate::intern::ComponentId;
use crate::metrics::CoreMetrics;
use crate::query::Query;

/// One record of the world's ordered change stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Position in the world's total mutation order (gap-free,
    /// monotonically increasing).
    pub seq: u64,
    /// Tick counter at the moment the mutation committed.
    pub tick: u64,
    /// What changed.
    pub op: ChangeOp,
}

/// The typed payload of a [`Change`] record.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOp {
    /// A component was written. `old` is `None` when the component was
    /// newly added to the entity.
    Set {
        id: EntityId,
        component: ComponentId,
        old: Option<Value>,
        new: Value,
    },
    /// A component was removed from an entity.
    Removed {
        id: EntityId,
        component: ComponentId,
        old: Value,
    },
    /// An entity came to life (spawn or snapshot restore).
    Spawned { id: EntityId },
    /// An entity died. `row` is the dropped row image — every component
    /// value the entity held at death, in id order — so stream
    /// consumers can fold the loss (wealth conservation, delta
    /// shipping) without a world rescan.
    Despawned {
        id: EntityId,
        row: Vec<(ComponentId, Value)>,
    },
    /// A component column was defined (name interned). Recorded before
    /// any row op naming the id, so stream consumers and WAL redo can
    /// always resolve ids in order.
    ComponentDefined {
        component: ComponentId,
        name: String,
        ty: ValueType,
    },
    /// A secondary index was created on a component.
    CreateIndex {
        component: ComponentId,
        kind: IndexKind,
    },
    /// The secondary index on a component was dropped.
    DropIndex { component: ComponentId },
    /// A standing view was registered at a slot.
    RegisterView { slot: u32, query: Query },
    /// An operator-tree view (join / group-aggregate / scan chain) was
    /// registered at a slot — the differential-view sibling of
    /// [`ChangeOp::RegisterView`], carrying the full plan so WAL redo
    /// can re-install and re-materialize it at the exact slot.
    RegisterPlanView {
        slot: u32,
        plan: crate::dvm::ViewPlan,
    },
    /// The standing view at a slot was dropped.
    DropView { slot: u32 },
    /// A spatial view's disk moved (interest bubbles following a focus).
    RetargetView { slot: u32, x: f32, y: f32, radius: f32 },
    /// The tick counter advanced to an absolute value.
    TickTo { tick: u64 },
}

impl ChangeOp {
    /// The entity a row op touches; `None` for catalog and tick ops.
    pub fn entity(&self) -> Option<EntityId> {
        match self {
            ChangeOp::Set { id, .. }
            | ChangeOp::Removed { id, .. }
            | ChangeOp::Spawned { id }
            | ChangeOp::Despawned { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// True for row ops (entity state), false for catalog/tick ops.
    pub fn is_row_op(&self) -> bool {
        self.entity().is_some()
    }
}

/// The watermark surface an asynchronous durability pipeline exposes:
/// how far commits have been handed to the writer, and how far the
/// writer has made them durable. Consumers that must not run ahead of
/// durability — a Strict-level replicator shipping state that a primary
/// crash could otherwise un-happen — gate on [`DurabilityWatermark::is_drained`].
///
/// Sequence numbers are commit sequences (one per commit boundary, not
/// per mutation); `0` means "nothing yet". Implemented by
/// `gamedb-persist`'s `WalStore` in both sync and async modes.
pub trait DurabilityWatermark {
    /// Highest commit sequence handed to the durability pipeline.
    fn enqueued_seq(&self) -> u64;
    /// Highest commit sequence durably flushed (the ack watermark).
    fn durable_seq(&self) -> u64;
    /// True when everything enqueued is durable — the unacked window is
    /// empty, so nothing observable could be lost by a crash right now.
    fn is_drained(&self) -> bool {
        self.durable_seq() >= self.enqueued_seq()
    }

    /// A copyable point-in-time reading of both sequences. Take one
    /// when the borrow checker forbids holding the pipeline itself
    /// alongside a mutable borrow of the world it persists (the
    /// replication call shape: `sync_stream_durable(store.world_mut(),
    /// …, &store.snapshot_watermark())`).
    fn snapshot_watermark(&self) -> WatermarkSnapshot {
        WatermarkSnapshot {
            enqueued: self.enqueued_seq(),
            durable: self.durable_seq(),
        }
    }
}

/// A detached [`DurabilityWatermark`] reading — see
/// [`DurabilityWatermark::snapshot_watermark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatermarkSnapshot {
    /// Highest commit sequence handed to the durability pipeline.
    pub enqueued: u64,
    /// Highest commit sequence durably flushed.
    pub durable: u64,
}

impl DurabilityWatermark for WatermarkSnapshot {
    fn enqueued_seq(&self) -> u64 {
        self.enqueued
    }

    fn durable_seq(&self) -> u64 {
        self.durable
    }
}

/// Handle to an attached change-stream tap (see
/// [`crate::world::World::attach_tap`]). The handle is only meaningful
/// against the world (or clone lineage) that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TapId(pub(crate) u32);

/// One coherent reading of a tap's consumer state
/// ([`crate::world::World::tap_stats`]): lag, cursor position, and the
/// pinned/evicted flags in a single value, so the metrics layer and
/// sync-loop callers stop re-deriving them from separate
/// `tap_lag`/`tap_pinned`/`tap_evicted` calls that could interleave
/// with writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TapStats {
    /// Records not yet consumed (head seq − cursor); 0 for detached or
    /// evicted taps.
    pub lag: u64,
    /// The tap's cursor: seq of the next record it will observe —
    /// everything below it is acknowledged. 0 for detached or evicted
    /// taps.
    pub acked_seq: u64,
    /// Exempt from retention eviction (the durability tap).
    pub pinned: bool,
    /// Evicted by the retention policy: the consumer must resync from
    /// live state and re-attach.
    pub evicted: bool,
    /// Currently attached (active — neither free nor evicted).
    pub attached: bool,
}

/// One tap slot of the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TapSlot {
    /// Never attached, or detached — free for reuse.
    Free,
    /// Attached, cursor at the contained seq. A **pinned** tap is
    /// exempt from retention eviction: it is a consumer that must never
    /// miss a record (the durability tap), so a laggard is backpressured
    /// by its own commit cadence instead of silently dropped — the
    /// window grows past the retention limit rather than losing
    /// durability.
    Active { cursor: u64, pinned: bool },
    /// Evicted by the retention policy: the consumer leaked its tap (or
    /// fell hopelessly behind) and the stream stopped retaining records
    /// for it. Reads return nothing; the slot frees on detach.
    Evicted,
}

/// The world's change stream: the retained record window plus one
/// cursor per consumer (the standing-view fold position and every
/// attached tap). Records are reclaimed once every cursor has passed
/// them.
///
/// `Clone` is manual: taps do **not** survive into a clone. A tap's
/// `TapId` is held by the consumer that attached it against the
/// original world — nothing could ever ack the cloned cursor, so a
/// copied tap would pin the clone's record window (and per-write
/// recording cost) forever. Clones keep the retained records and the
/// view fold cursor (their standing views still need the pending
/// segment) and start with no taps.
#[derive(Debug, Default)]
pub(crate) struct ChangeStream {
    /// Retained records, oldest first; `records[i]` has seq `base + i`.
    records: Vec<Change>,
    /// Seq of `records[0]`.
    base: u64,
    /// Seq the next record will get.
    next: u64,
    /// Fold position of the standing-view registry.
    views_at: u64,
    /// Cursor per attached tap.
    taps: Vec<TapSlot>,
    /// Maximum records a lagging tap may pin before it is evicted
    /// (`None` = retain forever, the default).
    retention: Option<usize>,
    /// Attached instrumentation ([`crate::world::World::attach_metrics`]).
    /// Lives here because every write path funnels through
    /// [`ChangeStream::record`] — including the batch path that
    /// destructures the world. Clones do not inherit it (same rationale
    /// as taps: a cloned oracle double-reporting would corrupt the
    /// registry).
    metrics: Option<Arc<CoreMetrics>>,
}

impl Clone for ChangeStream {
    fn clone(&self) -> Self {
        ChangeStream {
            records: self.records.clone(),
            base: self.base,
            next: self.next,
            views_at: self.views_at,
            taps: Vec::new(),
            retention: self.retention,
            metrics: None,
        }
    }
}

impl ChangeStream {
    /// True while at least one live tap is attached (catalog/tick ops
    /// are recorded only then).
    #[inline]
    pub fn has_taps(&self) -> bool {
        self.taps.iter().any(|t| matches!(t, TapSlot::Active { .. }))
    }

    /// Append a record stamped with the current tick.
    pub fn record(&mut self, tick: u64, op: ChangeOp) {
        self.records.push(Change {
            seq: self.next,
            tick,
            op,
        });
        self.next += 1;
        if let Some(limit) = self.retention {
            if self.records.len() > limit {
                self.evict_laggards(limit);
            }
        }
        if let Some(m) = &self.metrics {
            m.records.inc();
            m.retained.set(self.records.len() as i64);
        }
    }

    /// Attach instrumentation (see
    /// [`crate::world::World::attach_metrics`]).
    pub fn set_metrics(&mut self, metrics: Option<Arc<CoreMetrics>>) {
        self.metrics = metrics;
    }

    /// The attached instrumentation, if any.
    #[inline]
    pub fn metrics(&self) -> Option<&Arc<CoreMetrics>> {
        self.metrics.as_ref()
    }

    /// Seq the next record will receive (how far the stream has run).
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Retained (not yet reclaimed) records — what lagging consumers
    /// are pinning in memory.
    #[inline]
    pub fn retained(&self) -> usize {
        self.records.len()
    }

    /// Set the retention limit (see
    /// [`crate::world::World::set_tap_retention`]).
    pub fn set_retention(&mut self, limit: Option<usize>) {
        self.retention = limit;
        if let Some(limit) = limit {
            if self.records.len() > limit {
                self.evict_laggards(limit);
            }
        }
    }

    /// Evict every unpinned tap whose lag exceeds `limit`, then
    /// reclaim. The standing-view cursor is never evicted: the world
    /// folds it automatically at every tick, so it cannot leak. Pinned
    /// taps (durability) are never evicted either — a lagging durable
    /// flusher must be backpressured by its caller, not silently
    /// dropped, so the window is allowed to outgrow the limit while a
    /// pinned laggard drains.
    fn evict_laggards(&mut self, limit: usize) {
        let horizon = self.next.saturating_sub(limit as u64);
        let mut evicted = 0u64;
        for slot in &mut self.taps {
            if let TapSlot::Active { cursor, pinned: false } = slot {
                if *cursor < horizon {
                    *slot = TapSlot::Evicted;
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            if let Some(m) = &self.metrics {
                m.tap_evictions.add(evicted);
            }
        }
        self.gc();
    }

    fn idx(&self, seq: u64) -> usize {
        (seq.max(self.base) - self.base) as usize
    }

    /// Records the standing views have not folded yet.
    pub fn pending_views(&self) -> &[Change] {
        &self.records[self.idx(self.views_at)..]
    }

    /// Advance the view fold cursor past everything recorded so far.
    pub fn mark_views_folded(&mut self) {
        self.views_at = self.next;
        self.gc();
    }

    /// Attach a tap whose cursor starts at the current end of stream.
    pub fn attach(&mut self) -> TapId {
        self.attach_with(false)
    }

    /// Attach a **pinned** tap: exempt from retention eviction (see
    /// [`ChangeStream::evict_laggards`]). For consumers whose misses
    /// are data loss — the durability tap.
    pub fn attach_pinned(&mut self) -> TapId {
        self.attach_with(true)
    }

    fn attach_with(&mut self, pinned: bool) -> TapId {
        let slot = TapSlot::Active {
            cursor: self.next,
            pinned,
        };
        if let Some(i) = self.taps.iter().position(|t| *t == TapSlot::Free) {
            self.taps[i] = slot;
            TapId(i as u32)
        } else {
            self.taps.push(slot);
            TapId((self.taps.len() - 1) as u32)
        }
    }

    /// True when `tap` is attached and pinned.
    pub fn tap_pinned(&self, tap: TapId) -> bool {
        matches!(
            self.taps.get(tap.0 as usize),
            Some(TapSlot::Active { pinned: true, .. })
        )
    }

    /// Records `tap` has not consumed yet, as a count (its lag behind
    /// the head of the stream); 0 for detached or evicted taps.
    pub fn tap_lag(&self, tap: TapId) -> u64 {
        match self.taps.get(tap.0 as usize) {
            Some(TapSlot::Active { cursor, .. }) => self.next - *cursor,
            _ => 0,
        }
    }

    /// Detach a tap; returns whether it was attached (evicted taps
    /// count — detaching one frees its slot).
    pub fn detach(&mut self, tap: TapId) -> bool {
        match self.taps.get_mut(tap.0 as usize) {
            Some(slot) if *slot != TapSlot::Free => {
                *slot = TapSlot::Free;
                self.gc();
                true
            }
            _ => false,
        }
    }

    /// True when the retention policy evicted this tap: the consumer
    /// missed records and must resynchronize from current state.
    pub fn tap_evicted(&self, tap: TapId) -> bool {
        matches!(self.taps.get(tap.0 as usize), Some(TapSlot::Evicted))
    }

    /// Records the tap has not consumed yet (empty for detached or
    /// evicted taps).
    pub fn tap_pending(&self, tap: TapId) -> &[Change] {
        match self.taps.get(tap.0 as usize) {
            Some(TapSlot::Active { cursor, .. }) => &self.records[self.idx(*cursor)..],
            _ => &[],
        }
    }

    /// The tap's cursor — the seq of the next record it will observe —
    /// or `None` for detached/evicted taps. This is the **handoff
    /// snapshot anchor**: mutation and consumption are synchronous, so
    /// a row image read from the world while a tap's cursor sits at
    /// seq `S` is exactly the state-as-of-`S` for that row, and the
    /// image plus every record from `S` on replays to current state.
    /// `ShardRouter` uses this to stamp the full-row images it ships
    /// when an entity is handed to another node, and a warm standby
    /// uses it to know which tail it still has to replay.
    pub fn tap_cursor(&self, tap: TapId) -> Option<u64> {
        match self.taps.get(tap.0 as usize) {
            Some(TapSlot::Active { cursor, .. }) => Some(*cursor),
            _ => None,
        }
    }

    /// Move the tap's cursor forward to `seq` (clamped to the head of
    /// the stream). Cursors only move forward: acking below the
    /// current cursor is a no-op. Partial acks let a consumer that
    /// shipped only a prefix of its pending window (a per-link router
    /// whose segment for one node cut off mid-stream) release exactly
    /// what it consumed.
    pub fn ack_to(&mut self, tap: TapId, seq: u64) {
        if let Some(TapSlot::Active { cursor, .. }) = self.taps.get_mut(tap.0 as usize) {
            let target = seq.min(self.next);
            if target > *cursor {
                let drained = target - *cursor;
                *cursor = target;
                if let Some(m) = &self.metrics {
                    m.note_tap_drain(tap.0 as usize, drained);
                }
                self.gc();
            }
        }
    }

    /// One coherent reading of a tap's state (see [`TapStats`]).
    pub fn tap_stats(&self, tap: TapId) -> TapStats {
        match self.taps.get(tap.0 as usize) {
            Some(TapSlot::Active { cursor, pinned }) => TapStats {
                lag: self.next - *cursor,
                acked_seq: *cursor,
                pinned: *pinned,
                evicted: false,
                attached: true,
            },
            Some(TapSlot::Evicted) => TapStats {
                evicted: true,
                ..TapStats::default()
            },
            _ => TapStats::default(),
        }
    }

    /// Move the tap's cursor past everything recorded so far. Cursors
    /// only move forward: a tap never sees a record twice.
    pub fn ack(&mut self, tap: TapId) {
        if let Some(TapSlot::Active { cursor, .. }) = self.taps.get_mut(tap.0 as usize) {
            let drained = self.next - *cursor;
            *cursor = self.next;
            if let Some(m) = &self.metrics {
                m.note_tap_drain(tap.0 as usize, drained);
            }
            self.gc();
        }
    }

    /// Drop every retained record (only sound with no consumers left).
    pub fn clear(&mut self) {
        self.records.clear();
        self.base = self.next;
        self.views_at = self.next;
    }

    /// Reclaim records every cursor has passed.
    fn gc(&mut self) {
        let mut min = self.views_at;
        for slot in &self.taps {
            if let TapSlot::Active { cursor, .. } = slot {
                min = min.min(*cursor);
            }
        }
        if min > self.base {
            self.records.drain(..(min - self.base) as usize);
            self.base = min;
            if let Some(m) = &self.metrics {
                m.retained.set(self.records.len() as i64);
            }
        }
    }
}

/// One primitive write of a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Set a component value (non-`pos`; `pos` values route through
    /// [`BatchOp::SetPos`] semantics either way).
    Set {
        id: EntityId,
        component: String,
        value: Value,
    },
    /// Move an entity.
    SetPos { id: EntityId, pos: Vec2 },
    /// Remove a component from an entity.
    Remove { id: EntityId, component: String },
    /// Despawn an entity.
    Despawn { id: EntityId },
    /// Spawn a fresh entity at a position with initial components
    /// (unknown components are auto-defined from the value's type, as
    /// template spawning does).
    Spawn {
        components: Vec<(String, Value)>,
        pos: Vec2,
    },
}

/// An ordered batch of primitive writes committed in one call through
/// [`crate::world::World::apply_batch`]. Maximal runs of value writes
/// are regrouped by interned column id internally (per-slot order
/// preserved), so column resolution and index lookup are paid once per
/// component group instead of once per write — and a durability tap
/// sees the whole batch as one segment, i.e. one group-commit WAL
/// frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    pub(crate) ops: Vec<BatchOp>,
}

impl WriteBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a component write.
    pub fn set(&mut self, id: EntityId, component: impl Into<String>, value: Value) {
        self.ops.push(BatchOp::Set {
            id,
            component: component.into(),
            value,
        });
    }

    /// Queue a position write.
    pub fn set_pos(&mut self, id: EntityId, pos: Vec2) {
        self.ops.push(BatchOp::SetPos { id, pos });
    }

    /// Queue a component removal.
    pub fn remove(&mut self, id: EntityId, component: impl Into<String>) {
        self.ops.push(BatchOp::Remove {
            id,
            component: component.into(),
        });
    }

    /// Queue a despawn.
    pub fn despawn(&mut self, id: EntityId) {
        self.ops.push(BatchOp::Despawn { id });
    }

    /// Queue a spawn.
    pub fn spawn(&mut self, components: Vec<(String, Value)>, pos: Vec2) {
        self.ops.push(BatchOp::Spawn { components, pos });
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued ops, in order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64) -> ChangeOp {
        ChangeOp::Despawned {
            id: EntityId::from_bits(i),
            row: Vec::new(),
        }
    }

    #[test]
    fn taps_see_each_record_exactly_once() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        s.record(0, op(1));
        s.record(0, op(2));
        assert_eq!(s.tap_pending(t).len(), 2);
        s.ack(t);
        assert!(s.tap_pending(t).is_empty());
        s.record(1, op(3));
        let pending = s.tap_pending(t);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].seq, 2);
        assert_eq!(pending[0].tick, 1);
    }

    #[test]
    fn records_retained_until_slowest_consumer_acks() {
        let mut s = ChangeStream::default();
        let a = s.attach();
        let b = s.attach();
        s.record(0, op(1));
        s.mark_views_folded();
        s.ack(a);
        // b has not acked: the record must survive for it
        assert_eq!(s.tap_pending(b).len(), 1);
        s.ack(b);
        assert!(s.records.is_empty(), "all cursors passed: reclaimed");
    }

    #[test]
    fn detach_frees_the_slot_and_releases_records() {
        let mut s = ChangeStream::default();
        let a = s.attach();
        s.record(0, op(1));
        s.mark_views_folded();
        assert!(s.detach(a));
        assert!(!s.detach(a));
        assert!(s.records.is_empty());
        assert!(s.tap_pending(a).is_empty(), "detached tap reads nothing");
        // the slot is reused, cursor anchored at the current end
        let b = s.attach();
        assert_eq!(a.0, b.0);
        assert!(s.tap_pending(b).is_empty());
    }

    #[test]
    fn clones_do_not_inherit_taps() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        s.record(0, op(1));
        let mut c = s.clone();
        assert!(!c.has_taps(), "a cloned cursor could never be acked");
        assert!(c.tap_pending(t).is_empty());
        // the view window survives the clone; gc can reclaim it
        assert_eq!(c.pending_views().len(), 1);
        c.mark_views_folded();
        assert!(c.records.is_empty());
        // the original tap is untouched
        assert_eq!(s.tap_pending(t).len(), 1);
    }

    #[test]
    fn seq_is_gap_free_across_gc() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        for i in 0..5 {
            s.record(0, op(i));
        }
        s.mark_views_folded();
        s.ack(t);
        s.record(0, op(99));
        assert_eq!(s.tap_pending(t)[0].seq, 5);
        assert_eq!(s.next_seq(), 6);
    }

    /// ISSUE-5 satellite: a consumer that leaks its tap (drops the
    /// `TapId` without detaching) must not pin the record window
    /// forever once a retention limit is set — the laggard is evicted,
    /// the window stays bounded, and prompt consumers are untouched.
    #[test]
    fn leaked_tap_is_evicted_under_retention_limit() {
        let mut s = ChangeStream::default();
        s.set_retention(Some(16));
        let leaked = s.attach();
        let prompt = s.attach();
        s.mark_views_folded();
        for i in 0..200 {
            s.record(0, op(i));
            s.ack(prompt);
            s.mark_views_folded();
            assert!(s.retained() <= 17, "window must stay bounded");
        }
        assert!(s.tap_evicted(leaked), "laggard evicted");
        assert!(!s.tap_evicted(prompt), "prompt consumer unaffected");
        assert!(s.tap_pending(leaked).is_empty(), "evicted tap reads nothing");
        // eviction stops the eviction victim from counting as a consumer
        assert!(s.has_taps(), "prompt tap still live");
        // acking an evicted tap is a no-op; detaching frees the slot
        s.ack(leaked);
        assert!(s.tap_evicted(leaked));
        assert!(s.detach(leaked));
        assert!(!s.tap_evicted(leaked));
        let reused = s.attach();
        assert_eq!(reused.0, leaked.0, "slot is reusable after detach");
        assert!(!s.tap_evicted(reused));
    }

    /// ISSUE-6 satellite: retention must never evict the durability
    /// tap. A pinned laggard keeps its records — the window outgrows
    /// the limit instead — while unpinned laggards are still evicted.
    #[test]
    fn pinned_tap_survives_retention_pressure() {
        let mut s = ChangeStream::default();
        s.set_retention(Some(16));
        let durability = s.attach_pinned();
        let leaked = s.attach();
        s.mark_views_folded();
        for i in 0..200 {
            s.record(0, op(i));
            s.mark_views_folded();
        }
        assert!(s.tap_evicted(leaked), "unpinned laggard still evicted");
        assert!(!s.tap_evicted(durability), "pinned tap never evicted");
        assert!(s.tap_pinned(durability));
        assert!(!s.tap_pinned(leaked));
        assert_eq!(
            s.tap_pending(durability).len(),
            200,
            "every record retained for the pinned tap"
        );
        assert_eq!(s.tap_lag(durability), 200);
        // once the pinned consumer drains, the window reclaims
        s.ack(durability);
        assert_eq!(s.retained(), 0);
        assert_eq!(s.tap_lag(durability), 0);
    }

    #[test]
    fn pinned_tap_detach_frees_slot_and_clears_pin() {
        let mut s = ChangeStream::default();
        let t = s.attach_pinned();
        assert!(s.tap_pinned(t));
        assert!(s.detach(t));
        assert!(!s.tap_pinned(t));
        let u = s.attach();
        assert_eq!(u.0, t.0, "slot reused");
        assert!(!s.tap_pinned(u), "pin does not leak into the reused slot");
    }

    /// ISSUE-8 tentpole: the handoff-snapshot anchor. A tap's cursor
    /// names the seq a row image read "now" corresponds to, and
    /// partial acks release exactly the consumed prefix while the
    /// remainder stays pending.
    #[test]
    fn tap_cursor_and_partial_ack() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        assert_eq!(s.tap_cursor(t), Some(0));
        for i in 0..6 {
            s.record(0, op(i));
        }
        s.mark_views_folded();
        assert_eq!(s.tap_cursor(t), Some(0));
        assert_eq!(s.tap_pending(t).len(), 6);
        // consume a prefix: the cursor advances, the tail stays pending
        s.ack_to(t, 4);
        assert_eq!(s.tap_cursor(t), Some(4));
        let pending = s.tap_pending(t);
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].seq, 4);
        // the released prefix is reclaimed (no other consumers)
        assert_eq!(s.retained(), 2);
        // backwards and overshooting acks clamp
        s.ack_to(t, 1);
        assert_eq!(s.tap_cursor(t), Some(4), "cursors never move backward");
        s.ack_to(t, 100);
        assert_eq!(s.tap_cursor(t), Some(6), "clamped to the stream head");
        assert!(s.tap_pending(t).is_empty());
        // detached taps read no cursor
        s.detach(t);
        assert_eq!(s.tap_cursor(t), None);
    }

    #[test]
    fn evicted_tap_has_no_cursor() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        s.mark_views_folded();
        for i in 0..50 {
            s.record(0, op(i));
        }
        s.set_retention(Some(8));
        assert!(s.tap_evicted(t));
        assert_eq!(s.tap_cursor(t), None);
        s.ack_to(t, 10); // no-op on an evicted tap
        assert!(s.tap_evicted(t));
    }

    #[test]
    fn lowering_retention_evicts_immediately() {
        let mut s = ChangeStream::default();
        let t = s.attach();
        s.mark_views_folded();
        for i in 0..50 {
            s.record(0, op(i));
        }
        s.mark_views_folded();
        assert_eq!(s.tap_pending(t).len(), 50);
        s.set_retention(Some(8));
        assert!(s.tap_evicted(t));
        assert!(s.retained() <= 8);
    }

    #[test]
    fn tap_within_retention_window_is_kept() {
        let mut s = ChangeStream::default();
        s.set_retention(Some(64));
        let t = s.attach();
        s.mark_views_folded();
        for i in 0..60 {
            s.record(0, op(i));
            s.mark_views_folded();
        }
        assert!(!s.tap_evicted(t), "lag 60 <= limit 64: kept");
        assert_eq!(s.tap_pending(t).len(), 60);
    }
}
