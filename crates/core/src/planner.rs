//! A cost-based planner for world queries.
//!
//! The paper's thesis is that game-state access is query processing in
//! disguise — and a query processor earns its keep by *choosing plans*.
//! [`Query`] always probes the spatial index when a `within` restriction
//! exists and evaluates predicates in authoring order; this module adds
//! what a database would: [`TableStats`] collected from the world,
//! selectivity estimation per predicate, short-circuit-aware predicate
//! reordering, and a costed choice between a full scan and the spatial
//! index (a huge radius covers the whole map, where the index only adds
//! overhead). [`Plan::explain`] renders the decision like `EXPLAIN`.
//!
//! Experiment E14 sweeps the query radius and shows the planner tracking
//! the better of the two access paths across the crossover.

use std::collections::HashSet;
use std::fmt;

use gamedb_content::{CmpOp, Value};
use gamedb_spatial::Vec2;

use crate::entity::EntityId;
use crate::query::{Pred, Query};
use crate::world::World;

/// Per-component statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Entities carrying the component.
    pub present: usize,
    /// Number of distinct values.
    pub ndv: usize,
    /// Minimum numeric value (numeric components only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric components only).
    pub max: Option<f64>,
}

/// World statistics the planner costs plans against.
///
/// Built by one full scan ([`TableStats::build`]); games would refresh
/// this at content-load or checkpoint cadence, not per tick — plans stay
/// valid as long as the *distribution* holds, which for designer-authored
/// component data changes slowly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Live entities.
    pub rows: usize,
    /// Entities with a position.
    pub positioned: usize,
    /// Bounding box of positioned entities.
    pub bounds: Option<(Vec2, Vec2)>,
    columns: Vec<(String, ColumnStats)>,
}

impl TableStats {
    /// Collect exact statistics from the world.
    pub fn build(world: &World) -> Self {
        let mut rows = 0usize;
        let mut positioned = 0usize;
        let mut lo = Vec2::new(f32::INFINITY, f32::INFINITY);
        let mut hi = Vec2::new(f32::NEG_INFINITY, f32::NEG_INFINITY);
        let names: Vec<String> = world
            .schema()
            .filter(|(n, _)| *n != crate::world::POS)
            .map(|(n, _)| n.to_string())
            .collect();
        let mut present = vec![0usize; names.len()];
        let mut distinct: Vec<HashSet<u64>> = names.iter().map(|_| HashSet::new()).collect();
        let mut min = vec![f64::INFINITY; names.len()];
        let mut max = vec![f64::NEG_INFINITY; names.len()];
        for id in world.entities() {
            rows += 1;
            if let Some(p) = world.pos(id) {
                positioned += 1;
                lo = Vec2::new(lo.x.min(p.x), lo.y.min(p.y));
                hi = Vec2::new(hi.x.max(p.x), hi.y.max(p.y));
            }
            for (c, name) in names.iter().enumerate() {
                let Some(v) = world.get(id, name) else { continue };
                present[c] += 1;
                distinct[c].insert(value_fingerprint(&v));
                if let Some(n) = v.as_number() {
                    min[c] = min[c].min(n);
                    max[c] = max[c].max(n);
                }
            }
        }
        let columns = names
            .into_iter()
            .enumerate()
            .map(|(c, name)| {
                let numeric = min[c] <= max[c];
                (
                    name,
                    ColumnStats {
                        present: present[c],
                        ndv: distinct[c].len(),
                        min: numeric.then_some(min[c]),
                        max: numeric.then_some(max[c]),
                    },
                )
            })
            .collect();
        TableStats {
            rows,
            positioned,
            bounds: (positioned > 0).then_some((lo, hi)),
            columns,
        }
    }

    /// Statistics for one component, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Estimated fraction of live entities a predicate keeps.
    ///
    /// Classic System-R style: equality = 1/NDV, ranges interpolate the
    /// [min, max] span, everything scaled by the component's presence
    /// fraction (a missing component fails the predicate).
    pub fn selectivity(&self, pred: &Pred) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let Some(col) = self.column(&pred.component) else {
            return 0.0; // unknown component: nothing can match
        };
        let presence = col.present as f64 / self.rows as f64;
        if col.present == 0 {
            return 0.0;
        }
        let among_present = match pred.op {
            CmpOp::Eq => 1.0 / col.ndv.max(1) as f64,
            CmpOp::Ne => 1.0 - 1.0 / col.ndv.max(1) as f64,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                match (col.min, col.max, pred.value.as_number()) {
                    (Some(lo), Some(hi), Some(v)) if hi > lo => {
                        let below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                        match pred.op {
                            CmpOp::Lt | CmpOp::Le => below,
                            _ => 1.0 - below,
                        }
                    }
                    // degenerate span or non-numeric literal: even odds
                    _ => 0.5,
                }
            }
        };
        presence * among_present
    }

    /// Estimated entities inside a query disk, from positioned density
    /// over the bounding box (uniformity assumption).
    pub fn est_in_radius(&self, radius: f32) -> f64 {
        let Some((lo, hi)) = self.bounds else { return 0.0 };
        let area = ((hi.x - lo.x) as f64).max(1e-9) * ((hi.y - lo.y) as f64).max(1e-9);
        let disk = std::f64::consts::PI * radius as f64 * radius as f64;
        (self.positioned as f64 * (disk / area).min(1.0)).min(self.positioned as f64)
    }
}

fn value_fingerprint(v: &Value) -> u64 {
    match v {
        Value::Float(x) => 0x1000_0000_0000_0000 ^ (*x as f64).to_bits(),
        Value::Int(x) => 0x2000_0000_0000_0000 ^ *x as u64,
        Value::Bool(b) => 0x3000_0000_0000_0000 ^ *b as u64,
        Value::Str(s) => s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        }),
        Value::Vec2(x, y) => ((x.to_bits() as u64) << 32) | y.to_bits() as u64,
    }
}

/// How a plan reaches its candidate rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every live entity.
    FullScan,
    /// Probe the spatial index.
    SpatialIndex { center: Vec2, radius: f32 },
}

/// Cost-model constants (relative units; an index probe costs a few row
/// visits, and every candidate drawn from the index pays a small
/// indirection over a dense scan).
const INDEX_PROBE_COST: f64 = 8.0;
const INDEX_ROW_FACTOR: f64 = 1.4;

/// A chosen execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Access path.
    pub access: Access,
    /// Predicates in evaluation order (most selective first).
    pub preds: Vec<Pred>,
    /// Per-predicate selectivity estimates, aligned with `preds`.
    pub selectivities: Vec<f64>,
    /// Entity the query excludes.
    pub exclude: Option<EntityId>,
    /// When the access path is a full scan but the query had a `within`,
    /// the spatial test runs as a residual predicate.
    pub residual_within: Option<(Vec2, f32)>,
    /// Estimated candidate rows entering predicate evaluation.
    pub est_candidates: f64,
    /// Estimated matching rows.
    pub est_rows: f64,
    /// Estimated total cost (relative units).
    pub est_cost: f64,
}

impl Plan {
    /// Render the plan like `EXPLAIN`.
    pub fn explain(&self) -> String {
        format!("{self}")
    }

    /// Execute, returning matches in deterministic (id) order — always
    /// the same result set as [`Query::run`] on the same query.
    pub fn run(&self, world: &World) -> Vec<EntityId> {
        let keep = |id: EntityId| {
            if Some(id) == self.exclude {
                return false;
            }
            if let Some((center, radius)) = self.residual_within {
                match world.pos(id) {
                    Some(p) => {
                        if p.dist2(center) > radius * radius {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            self.preds.iter().all(|p| p.eval(world, id))
        };
        let mut out: Vec<EntityId> = match &self.access {
            Access::FullScan => world.entities().filter(|&id| keep(id)).collect(),
            Access::SpatialIndex { center, radius } => {
                let mut cands = Vec::new();
                world.within(*center, *radius, &mut cands);
                cands.sort_unstable();
                cands.into_iter().filter(|&id| keep(id)).collect()
            }
        };
        out.dedup();
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.access {
            Access::FullScan => write!(f, "FullScan")?,
            Access::SpatialIndex { center, radius } => {
                write!(f, "SpatialIndex(center=({}, {}), r={radius})", center.x, center.y)?
            }
        }
        if let Some((_, r)) = self.residual_within {
            write!(f, " -> Within(r={r})")?;
        }
        for (p, s) in self.preds.iter().zip(&self.selectivities) {
            write!(f, " -> Filter({} {:?} {:?}, sel={s:.3})", p.component, p.op, p.value)?;
        }
        write!(
            f,
            " | est_candidates={:.1} est_rows={:.1} est_cost={:.1}",
            self.est_candidates, self.est_rows, self.est_cost
        )
    }
}

/// Choose a plan for `query` under `stats`.
///
/// Predicates are ordered by ascending selectivity (cheapest way to
/// short-circuit a conjunction of independent predicates). The access
/// path compares `rows` scan cost against index probe + candidate cost;
/// when the disk covers most of the map the scan wins and the `within`
/// becomes a residual filter.
pub fn plan(query: &Query, stats: &TableStats) -> Plan {
    let mut preds: Vec<Pred> = query.predicates().to_vec();
    let mut sels: Vec<f64> = preds.iter().map(|p| stats.selectivity(p)).collect();
    // stable sort by selectivity, keeping authoring order on ties
    let mut order: Vec<usize> = (0..preds.len()).collect();
    order.sort_by(|&a, &b| sels[a].partial_cmp(&sels[b]).unwrap_or(std::cmp::Ordering::Equal));
    preds = order.iter().map(|&i| preds[i].clone()).collect();
    sels = order.iter().map(|&i| sels[i]).collect();

    // expected predicate evaluations per candidate under short-circuit:
    // 1 + s1 + s1·s2 + …  (the last term drops out of the cost of *evals*)
    let mut pred_cost_per_row = 0.0;
    let mut pass = 1.0;
    for s in &sels {
        pred_cost_per_row += pass;
        pass *= s;
    }
    let pred_pass: f64 = sels.iter().product();

    match query.spatial() {
        Some((center, radius)) => {
            let est_cands = stats.est_in_radius(radius);
            let index_cost = INDEX_PROBE_COST + est_cands * (INDEX_ROW_FACTOR + pred_cost_per_row);
            // scanning still pays the distance test on every row
            let scan_cost = stats.rows as f64 * (1.0 + pred_cost_per_row);
            if index_cost <= scan_cost {
                Plan {
                    access: Access::SpatialIndex { center, radius },
                    preds,
                    selectivities: sels,
                    exclude: query.excluded(),
                    residual_within: None,
                    est_candidates: est_cands,
                    est_rows: est_cands * pred_pass,
                    est_cost: index_cost,
                }
            } else {
                Plan {
                    access: Access::FullScan,
                    preds,
                    selectivities: sels,
                    exclude: query.excluded(),
                    residual_within: Some((center, radius)),
                    est_candidates: stats.rows as f64,
                    est_rows: est_cands * pred_pass,
                    est_cost: scan_cost,
                }
            }
        }
        None => Plan {
            access: Access::FullScan,
            preds,
            selectivities: sels,
            exclude: query.excluded(),
            residual_within: None,
            est_candidates: stats.rows as f64,
            est_rows: stats.rows as f64 * pred_pass,
            est_cost: stats.rows as f64 * pred_cost_per_row.max(1.0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    /// 100 entities on a 100×100 grid-ish line; 10 "rare" reds, the rest
    /// blue; hp spans 0..99.
    fn stats_world() -> (World, Vec<EntityId>) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.define_component("level", ValueType::Int).unwrap();
        let mut ids = Vec::new();
        for i in 0..100usize {
            let e = w.spawn_at(Vec2::new((i % 10) as f32 * 11.0, (i / 10) as f32 * 11.0));
            w.set_f32(e, "hp", i as f32).unwrap();
            w.set(
                e,
                "team",
                Value::Str(if i % 10 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
            if i % 2 == 0 {
                w.set(e, "level", Value::Int((i % 5) as i64)).unwrap();
            }
            ids.push(e);
        }
        (w, ids)
    }

    #[test]
    fn stats_counts_and_bounds() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        assert_eq!(s.rows, 100);
        assert_eq!(s.positioned, 100);
        let (lo, hi) = s.bounds.unwrap();
        assert_eq!(lo, Vec2::ZERO);
        assert_eq!(hi, Vec2::new(99.0, 99.0));
        let hp = s.column("hp").unwrap();
        assert_eq!(hp.present, 100);
        assert_eq!(hp.ndv, 100);
        assert_eq!(hp.min, Some(0.0));
        assert_eq!(hp.max, Some(99.0));
        let team = s.column("team").unwrap();
        assert_eq!(team.ndv, 2);
        let level = s.column("level").unwrap();
        assert_eq!(level.present, 50);
        assert_eq!(level.ndv, 5);
    }

    #[test]
    fn equality_selectivity_uses_ndv() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let sel = s.selectivity(&Pred::new("team", CmpOp::Eq, Value::Str("red".into())));
        assert!((sel - 0.5).abs() < 1e-9, "1/ndv = 1/2, got {sel}");
        let sel = s.selectivity(&Pred::new("hp", CmpOp::Eq, Value::Float(5.0)));
        assert!((sel - 0.01).abs() < 1e-9, "1/100, got {sel}");
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let low = s.selectivity(&Pred::new("hp", CmpOp::Lt, Value::Float(9.9)));
        assert!((0.05..0.2).contains(&low), "~10%, got {low}");
        let high = s.selectivity(&Pred::new("hp", CmpOp::Ge, Value::Float(49.5)));
        assert!((0.4..0.6).contains(&high), "~50%, got {high}");
        // out-of-range bounds clamp
        assert_eq!(s.selectivity(&Pred::new("hp", CmpOp::Lt, Value::Float(-5.0))), 0.0);
        assert_eq!(s.selectivity(&Pred::new("hp", CmpOp::Ge, Value::Float(-5.0))), 1.0);
    }

    #[test]
    fn presence_scales_selectivity() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        // level present on half the rows, 5 distinct values
        let sel = s.selectivity(&Pred::new("level", CmpOp::Eq, Value::Int(3)));
        assert!((sel - 0.5 * 0.2).abs() < 1e-9, "got {sel}");
    }

    #[test]
    fn unknown_component_matches_nothing() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        assert_eq!(s.selectivity(&Pred::new("mana", CmpOp::Ge, Value::Float(0.0))), 0.0);
    }

    #[test]
    fn predicates_ordered_most_selective_first() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select()
            .filter("team", CmpOp::Ne, Value::Str("red".into())) // sel 0.5
            .filter("hp", CmpOp::Eq, Value::Float(30.0)); // sel 0.01
        let p = plan(&q, &s);
        assert_eq!(p.preds[0].component, "hp", "{}", p.explain());
        assert!(p.selectivities[0] <= p.selectivities[1]);
    }

    #[test]
    fn small_radius_picks_index_huge_radius_picks_scan() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let small = plan(&Query::select().within(Vec2::new(50.0, 50.0), 5.0), &s);
        assert!(matches!(small.access, Access::SpatialIndex { .. }), "{}", small.explain());
        let huge = plan(&Query::select().within(Vec2::new(50.0, 50.0), 500.0), &s);
        assert!(matches!(huge.access, Access::FullScan), "{}", huge.explain());
        assert!(huge.residual_within.is_some());
    }

    #[test]
    fn plans_return_exactly_what_query_returns() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let queries = vec![
            Query::select(),
            Query::select().filter("team", CmpOp::Eq, Value::Str("red".into())),
            Query::select()
                .within(Vec2::new(33.0, 33.0), 25.0)
                .filter("hp", CmpOp::Ge, Value::Float(20.0)),
            Query::select().within(Vec2::new(50.0, 50.0), 1000.0),
            Query::select()
                .within(Vec2::new(0.0, 0.0), 40.0)
                .filter("level", CmpOp::Le, Value::Int(2))
                .filter("team", CmpOp::Eq, Value::Str("blue".into())),
        ];
        for q in queries {
            let p = plan(&q, &s);
            assert_eq!(p.run(&w), q.run(&w), "plan: {}", p.explain());
        }
    }

    #[test]
    fn excluded_entity_respected() {
        let (w, ids) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select().excluding(ids[0]);
        let p = plan(&q, &s);
        let out = p.run(&w);
        assert_eq!(out.len(), 99);
        assert!(!out.contains(&ids[0]));
    }

    #[test]
    fn est_rows_tracks_reality_roughly() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select().filter("team", CmpOp::Eq, Value::Str("blue".into()));
        let p = plan(&q, &s);
        let actual = p.run(&w).len() as f64; // 90
        // NDV-based estimate says 50; order-of-magnitude is what planners get
        assert!(p.est_rows >= 25.0 && p.est_rows <= 100.0, "est {}", p.est_rows);
        assert!(actual == 90.0);
    }

    #[test]
    fn empty_world_plans_cleanly() {
        let w = World::new();
        let s = TableStats::build(&w);
        assert_eq!(s.rows, 0);
        assert!(s.bounds.is_none());
        let p = plan(&Query::select().within(Vec2::ZERO, 10.0), &s);
        assert!(p.run(&w).is_empty());
    }

    #[test]
    fn explain_mentions_the_path() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let p = plan(
            &Query::select()
                .within(Vec2::new(50.0, 50.0), 5.0)
                .filter("hp", CmpOp::Ge, Value::Float(10.0)),
            &s,
        );
        let text = p.explain();
        assert!(text.contains("SpatialIndex"), "{text}");
        assert!(text.contains("Filter(hp"), "{text}");
        assert!(text.contains("est_cost"), "{text}");
    }

    #[test]
    fn est_in_radius_density_model() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        // disk area π·25 over bbox ~99² ≈ 0.8% of 100 entities
        let est = s.est_in_radius(5.0);
        assert!(est > 0.2 && est < 3.0, "got {est}");
        // radius covering everything saturates at positioned count
        assert_eq!(s.est_in_radius(10_000.0), 100.0);
    }
}
