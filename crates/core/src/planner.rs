//! A cost-based planner for world queries.
//!
//! The paper's thesis is that game-state access is query processing in
//! disguise — and a query processor earns its keep by *choosing plans*.
//! [`Query`] always probes the spatial index when a `within` restriction
//! exists and evaluates predicates in authoring order; this module adds
//! what a database would: [`TableStats`] collected from the world,
//! selectivity estimation per predicate, short-circuit-aware predicate
//! reordering, and a costed choice among three access paths:
//!
//! * **full scan** — every live entity, residual filters on all of it;
//! * **spatial probe** — when a `within` restriction exists and the disk
//!   is small relative to the map (a huge radius covers the whole map,
//!   where the index only adds overhead);
//! * **attribute-index probe** — when a predicate's component carries a
//!   [`crate::index::SecondaryIndex`] that supports its operator; the
//!   most selective such predicate is pushed into the index and the rest
//!   run as residual filters.
//!
//! Index-backed columns report *exact* NDV and numeric bounds
//! (maintained incrementally by the index itself), so
//! [`TableStats::from_catalog`] prices plans in O(schema) without the
//! full scan [`TableStats::build`] pays — cheap enough that
//! [`Query::run`] replans on every execution. [`Plan::explain`] renders
//! the decision like `EXPLAIN`.
//!
//! Experiment E14 sweeps the query radius and shows the planner tracking
//! the better of the two spatial paths across the crossover; the
//! `secondary_index` bench does the same for attribute probes.

use std::collections::HashSet;
use std::fmt;

use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_spatial::Vec2;

use crate::entity::EntityId;
use crate::index::IndexKind;
use crate::query::{Pred, Query};
use crate::world::World;

/// Per-component statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column value type (range probes are unservable on vec2).
    pub ty: ValueType,
    /// Entities carrying the component.
    pub present: usize,
    /// Number of distinct values.
    pub ndv: usize,
    /// Minimum numeric value (numeric components only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric components only).
    pub max: Option<f64>,
    /// Secondary index on this component, if one exists.
    pub index: Option<IndexKind>,
}

/// World statistics the planner costs plans against.
///
/// Built by one full scan ([`TableStats::build`]); games would refresh
/// this at content-load or checkpoint cadence, not per tick — plans stay
/// valid as long as the *distribution* holds, which for designer-authored
/// component data changes slowly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Live entities.
    pub rows: usize,
    /// Entities with a position.
    pub positioned: usize,
    /// Bounding box of positioned entities.
    pub bounds: Option<(Vec2, Vec2)>,
    columns: Vec<(String, ColumnStats)>,
}

impl TableStats {
    /// Collect exact statistics from the world.
    pub fn build(world: &World) -> Self {
        let mut rows = 0usize;
        let mut positioned = 0usize;
        let mut lo = Vec2::new(f32::INFINITY, f32::INFINITY);
        let mut hi = Vec2::new(f32::NEG_INFINITY, f32::NEG_INFINITY);
        let names: Vec<(String, ValueType)> = world
            .schema()
            .filter(|(n, _)| *n != crate::world::POS)
            .map(|(n, t)| (n.to_string(), t))
            .collect();
        let mut present = vec![0usize; names.len()];
        let mut distinct: Vec<HashSet<u64>> = names.iter().map(|_| HashSet::new()).collect();
        let mut min = vec![f64::INFINITY; names.len()];
        let mut max = vec![f64::NEG_INFINITY; names.len()];
        for id in world.entities() {
            rows += 1;
            if let Some(p) = world.pos(id) {
                positioned += 1;
                lo = Vec2::new(lo.x.min(p.x), lo.y.min(p.y));
                hi = Vec2::new(hi.x.max(p.x), hi.y.max(p.y));
            }
            for (c, (name, _)) in names.iter().enumerate() {
                let Some(v) = world.get(id, name) else { continue };
                present[c] += 1;
                distinct[c].insert(value_fingerprint(&v));
                if let Some(n) = v.as_number() {
                    min[c] = min[c].min(n);
                    max[c] = max[c].max(n);
                }
            }
        }
        let columns = names
            .into_iter()
            .enumerate()
            .map(|(c, (name, ty))| {
                let numeric = min[c] <= max[c];
                let index = world.index_on(&name).map(|i| i.kind());
                (
                    name,
                    ColumnStats {
                        ty,
                        present: present[c],
                        ndv: distinct[c].len(),
                        min: numeric.then_some(min[c]),
                        max: numeric.then_some(max[c]),
                        index,
                    },
                )
            })
            .collect();
        TableStats {
            rows,
            positioned,
            bounds: (positioned > 0).then_some((lo, hi)),
            columns,
        }
    }

    /// Collect statistics in O(schema) from metadata the world maintains
    /// incrementally — no row scan.
    ///
    /// Per column: presence counts come from the column itself; NDV and
    /// numeric bounds are exact for indexed columns (the index tracks
    /// them); unindexed columns fall back to a default NDV
    /// ([`DEFAULT_NDV`] — equality keeps ~10% of present rows) and
    /// unknown bounds. The position bounding box is the world's expand-only
    /// approximation. This is the statistics source [`Query::run`] uses
    /// to replan per execution; [`TableStats::build`] remains the exact
    /// (and expensive) option for offline analysis.
    pub fn from_catalog(world: &World) -> Self {
        Self::catalog_stats(world, None)
    }

    /// [`TableStats::from_catalog`] restricted to the components `query`
    /// references — the per-execution replanning path. The plan can only
    /// use statistics for predicate columns, so skipping the rest keeps
    /// hot-path replanning O(predicates) instead of O(schema).
    pub fn for_query(world: &World, query: &Query) -> Self {
        Self::catalog_stats(world, Some(query))
    }

    fn catalog_stats(world: &World, query: Option<&Query>) -> Self {
        let mut columns: Vec<(String, ColumnStats)> = Vec::new();
        let mut push = |name: &str| {
            if name == crate::world::POS || columns.iter().any(|(n, _)| n == name) {
                return;
            }
            let Some(col) = world.column(name) else { return };
            let present = col.present_count();
            let (ndv, min, max, index) = match world.index_on(name) {
                Some(idx) => {
                    let (min, max) = match idx.numeric_bounds() {
                        Some((lo, hi)) => (Some(lo), Some(hi)),
                        None => (None, None),
                    };
                    (idx.ndv(), min, max, Some(idx.kind()))
                }
                // No index ⇒ NDV is unknown; assume a System-R-ish 10
                // distinct values (equality keeps ~10% of present rows)
                // rather than `present`, which would be the *most*
                // optimistic possible equality estimate and underprice
                // residual work.
                None => (present.min(DEFAULT_NDV), None, None, None),
            };
            columns.push((
                name.to_string(),
                ColumnStats {
                    ty: col.ty(),
                    present,
                    ndv,
                    min,
                    max,
                    index,
                },
            ));
        };
        match query {
            // O(predicates): only the columns the plan can use.
            Some(q) => {
                for pred in q.predicates() {
                    push(&pred.component);
                }
            }
            None => {
                for (name, _) in world.schema() {
                    push(name);
                }
            }
        }
        TableStats {
            rows: world.len(),
            positioned: world.positioned_count(),
            bounds: world.approx_bounds(),
            columns,
        }
    }

    /// Statistics for one component, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Estimated fraction of live entities a predicate keeps.
    ///
    /// Classic System-R style: equality = 1/NDV, ranges interpolate the
    /// [min, max] span, everything scaled by the component's presence
    /// fraction (a missing component fails the predicate).
    pub fn selectivity(&self, pred: &Pred) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let Some(col) = self.column(&pred.component) else {
            return 0.0; // unknown component: nothing can match
        };
        let presence = col.present as f64 / self.rows as f64;
        if col.present == 0 {
            return 0.0;
        }
        let among_present = match pred.op {
            CmpOp::Eq => 1.0 / col.ndv.max(1) as f64,
            CmpOp::Ne => 1.0 - 1.0 / col.ndv.max(1) as f64,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                match (col.min, col.max, pred.value.as_number()) {
                    (Some(lo), Some(hi), Some(v)) if hi > lo => {
                        let below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                        match pred.op {
                            CmpOp::Lt | CmpOp::Le => below,
                            _ => 1.0 - below,
                        }
                    }
                    // degenerate span or non-numeric literal: even odds
                    _ => 0.5,
                }
            }
        };
        presence * among_present
    }

    /// Estimated entities inside a query disk, from positioned density
    /// over the bounding box (uniformity assumption).
    pub fn est_in_radius(&self, radius: f32) -> f64 {
        let Some((lo, hi)) = self.bounds else { return 0.0 };
        let area = ((hi.x - lo.x) as f64).max(1e-9) * ((hi.y - lo.y) as f64).max(1e-9);
        let disk = std::f64::consts::PI * radius as f64 * radius as f64;
        (self.positioned as f64 * (disk / area).min(1.0)).min(self.positioned as f64)
    }
}

fn value_fingerprint(v: &Value) -> u64 {
    match v {
        Value::Float(x) => 0x1000_0000_0000_0000 ^ (*x as f64).to_bits(),
        Value::Int(x) => 0x2000_0000_0000_0000 ^ *x as u64,
        Value::Bool(b) => 0x3000_0000_0000_0000 ^ *b as u64,
        Value::Str(s) => s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        }),
        Value::Vec2(x, y) => ((x.to_bits() as u64) << 32) | y.to_bits() as u64,
    }
}

/// How a plan reaches its candidate rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every live entity.
    FullScan,
    /// Probe the spatial index.
    SpatialIndex { center: Vec2, radius: f32 },
    /// Probe a secondary attribute index with one pushed-down predicate;
    /// the remaining predicates (and any `within`) run as residuals.
    AttributeIndex {
        component: String,
        op: CmpOp,
        value: Value,
    },
}

/// Cost-model constants (relative units; an index probe costs a few row
/// visits, and every candidate drawn from the index pays a small
/// indirection over a dense scan).
const INDEX_PROBE_COST: f64 = 8.0;
const INDEX_ROW_FACTOR: f64 = 1.4;
/// Assumed distinct-value count for unindexed columns in catalog stats
/// (equality selectivity defaults to ~1/10, the classic System-R guess).
const DEFAULT_NDV: usize = 10;

/// A chosen execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Access path.
    pub access: Access,
    /// Predicates in evaluation order (most selective first).
    pub preds: Vec<Pred>,
    /// Per-predicate selectivity estimates, aligned with `preds`.
    pub selectivities: Vec<f64>,
    /// Entity the query excludes.
    pub exclude: Option<EntityId>,
    /// When the access path is a full scan but the query had a `within`,
    /// the spatial test runs as a residual predicate.
    pub residual_within: Option<(Vec2, f32)>,
    /// Estimated candidate rows entering predicate evaluation.
    pub est_candidates: f64,
    /// Estimated matching rows.
    pub est_rows: f64,
    /// Estimated total cost (relative units).
    pub est_cost: f64,
}

impl Plan {
    /// Render the plan like `EXPLAIN`.
    pub fn explain(&self) -> String {
        format!("{self}")
    }

    /// Execute, returning matches in deterministic (id) order — always
    /// the same result set as [`Query::run`] on the same query.
    pub fn run(&self, world: &World) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.visit_matches(world, &mut |id| out.push(id));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Count matches without materializing ids — same rows as
    /// [`Plan::run`]`.len()`, zero allocation on the scan and probe-free
    /// paths.
    pub fn count(&self, world: &World) -> usize {
        let mut n = 0usize;
        self.visit_matches(world, &mut |_| n += 1);
        n
    }

    /// The one candidate-iteration used by both [`Plan::run`] and
    /// [`Plan::count`]: access-path dispatch, residual `within` distance
    /// test, residual predicate evaluation, probe-failure degradation.
    /// Matching ids reach `sink` exactly once each (candidate sources
    /// are duplicate-free), in candidate order.
    fn visit_matches(&self, world: &World, sink: &mut dyn FnMut(EntityId)) {
        let keep = |id: EntityId| {
            if Some(id) == self.exclude {
                return false;
            }
            if let Some((center, radius)) = self.residual_within {
                match world.pos(id) {
                    Some(p) => {
                        if p.dist2(center) > radius * radius {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            self.preds.iter().all(|p| p.eval(world, id))
        };
        match &self.access {
            Access::FullScan => {
                for id in world.entities() {
                    if keep(id) {
                        sink(id);
                    }
                }
            }
            Access::SpatialIndex { center, radius } => {
                let mut cands = Vec::new();
                world.within(*center, *radius, &mut cands);
                for id in cands {
                    if keep(id) {
                        sink(id);
                    }
                }
            }
            Access::AttributeIndex {
                component,
                op,
                value,
            } => {
                let mut cands = Vec::new();
                if !world.index_probe(component, *op, value, &mut cands) {
                    // Index vanished between planning and execution
                    // (dropped, or a stale plan): degrade to the scan the
                    // probe replaced — same rows, just slower.
                    self.degraded_scan(component, *op, value)
                        .visit_matches(world, sink);
                    return;
                }
                for id in cands {
                    if keep(id) {
                        sink(id);
                    }
                }
            }
        }
    }

    /// The scan a stale attribute probe degrades to: same rows, slower.
    fn degraded_scan(&self, component: &str, op: CmpOp, value: &Value) -> Plan {
        let mut preds = self.preds.clone();
        preds.push(Pred::new(component.to_string(), op, value.clone()));
        Plan {
            access: Access::FullScan,
            selectivities: vec![0.5; preds.len()],
            preds,
            exclude: self.exclude,
            residual_within: self.residual_within,
            est_candidates: self.est_candidates,
            est_rows: self.est_rows,
            est_cost: self.est_cost,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.access {
            Access::FullScan => write!(f, "FullScan")?,
            Access::SpatialIndex { center, radius } => {
                write!(f, "SpatialIndex(center=({}, {}), r={radius})", center.x, center.y)?
            }
            Access::AttributeIndex {
                component,
                op,
                value,
            } => write!(f, "AttrIndex({component} {op:?} {value:?})")?,
        }
        if let Some((_, r)) = self.residual_within {
            write!(f, " -> Within(r={r})")?;
        }
        for (p, s) in self.preds.iter().zip(&self.selectivities) {
            write!(f, " -> Filter({} {:?} {:?}, sel={s:.3})", p.component, p.op, p.value)?;
        }
        write!(
            f,
            " | est_candidates={:.1} est_rows={:.1} est_cost={:.1}",
            self.est_candidates, self.est_rows, self.est_cost
        )
    }
}

/// Choose a plan for `query` under `stats`.
///
/// Predicates are ordered by ascending selectivity (cheapest way to
/// short-circuit a conjunction of independent predicates), then three
/// access-path families compete on estimated cost:
///
/// 1. a full scan (always available; pays the distance test per row when
///    a `within` exists);
/// 2. the spatial index (when a `within` exists; loses once the disk
///    covers most of the map);
/// 3. one attribute-index probe per indexed, operator-compatible
///    predicate — the probed predicate leaves the residual set, and any
///    `within` demotes to a residual distance test.
///
/// Whatever wins returns exactly the rows [`Query::run`]'s reference
/// semantics define; costs only pick *how* to get them.
pub fn plan(query: &Query, stats: &TableStats) -> Plan {
    let mut preds: Vec<Pred> = query.predicates().to_vec();
    let mut sels: Vec<f64> = preds.iter().map(|p| stats.selectivity(p)).collect();
    // stable sort by selectivity, keeping authoring order on ties
    let mut order: Vec<usize> = (0..preds.len()).collect();
    order.sort_by(|&a, &b| sels[a].partial_cmp(&sels[b]).unwrap_or(std::cmp::Ordering::Equal));
    preds = order.iter().map(|&i| preds[i].clone()).collect();
    sels = order.iter().map(|&i| sels[i]).collect();

    // expected predicate evaluations per candidate under short-circuit:
    // 1 + s1 + s1·s2 + …  (the last term drops out of the cost of *evals*)
    let mut pred_cost_per_row = 0.0;
    let mut pass = 1.0;
    for s in &sels {
        pred_cost_per_row += pass;
        pass *= s;
    }
    let pred_pass: f64 = sels.iter().product();
    let rows = stats.rows as f64;

    // Fraction of rows a `within` keeps (1.0 when there is none).
    let within_frac = match query.spatial() {
        Some((_, radius)) if stats.positioned > 0 => {
            (stats.est_in_radius(radius) / stats.positioned as f64).min(1.0)
        }
        Some(_) => 0.0,
        None => 1.0,
    };

    // Price the three path families as scalars; only the winner gets a
    // Plan built (this runs on every indexed Query::run, so candidate
    // plans must not allocate).
    enum Choice {
        Scan,
        Spatial,
        /// Probe via `preds[i]`, with `(est_candidates, residual_pass)`.
        Attr(usize, f64, f64),
    }

    // 1. Full scan (always available; pays a distance test per row when
    // a `within` exists).
    let mut best_cost = match query.spatial() {
        Some(_) => rows * (1.0 + pred_cost_per_row),
        None => rows * pred_cost_per_row.max(1.0),
    };
    let mut choice = Choice::Scan;

    // 2. Spatial probe (ties go to the index, as the seed planner chose).
    if let Some((_, radius)) = query.spatial() {
        let est_cands = stats.est_in_radius(radius);
        let cost = INDEX_PROBE_COST + est_cands * (INDEX_ROW_FACTOR + pred_cost_per_row);
        if cost <= best_cost {
            best_cost = cost;
            choice = Choice::Spatial;
        }
    }

    // 3. One attribute probe per indexed predicate. `preds` is already
    // selectivity-sorted, so the most selective eligible probe is
    // considered first and wins cost ties.
    let within_test = if query.spatial().is_some() { 1.0 } else { 0.0 };
    for (i, pred) in preds.iter().enumerate() {
        let Some(col) = stats.column(&pred.component) else {
            continue;
        };
        let Some(kind) = col.index else { continue };
        if !crate::index::supports(kind, col.ty, pred.op) {
            continue;
        }
        let est_cands = sels[i] * rows;
        let mut residual_cost = 0.0;
        let mut residual_pass = 1.0;
        for (j, s) in sels.iter().enumerate() {
            if j != i {
                residual_cost += residual_pass;
                residual_pass *= s;
            }
        }
        let cost =
            INDEX_PROBE_COST + est_cands * (INDEX_ROW_FACTOR + within_test + residual_cost);
        if cost < best_cost {
            best_cost = cost;
            choice = Choice::Attr(i, est_cands, residual_pass);
        }
    }

    match choice {
        Choice::Scan => Plan {
            access: Access::FullScan,
            est_candidates: rows,
            est_rows: match query.spatial() {
                Some((_, radius)) => stats.est_in_radius(radius) * pred_pass,
                None => rows * pred_pass,
            },
            est_cost: best_cost,
            residual_within: query.spatial(),
            exclude: query.excluded(),
            preds,
            selectivities: sels,
        },
        Choice::Spatial => {
            let (center, radius) = query.spatial().expect("spatial choice implies within");
            Plan {
                access: Access::SpatialIndex { center, radius },
                est_candidates: stats.est_in_radius(radius),
                est_rows: stats.est_in_radius(radius) * pred_pass,
                est_cost: best_cost,
                residual_within: None,
                exclude: query.excluded(),
                preds,
                selectivities: sels,
            }
        }
        Choice::Attr(i, est_cands, residual_pass) => {
            let probed = preds.remove(i);
            sels.remove(i);
            Plan {
                access: Access::AttributeIndex {
                    component: probed.component,
                    op: probed.op,
                    value: probed.value,
                },
                est_candidates: est_cands,
                est_rows: est_cands * residual_pass * within_frac,
                est_cost: best_cost,
                residual_within: query.spatial(),
                exclude: query.excluded(),
                preds,
                selectivities: sels,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    /// 100 entities on a 100×100 grid-ish line; 10 "rare" reds, the rest
    /// blue; hp spans 0..99.
    fn stats_world() -> (World, Vec<EntityId>) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.define_component("level", ValueType::Int).unwrap();
        let mut ids = Vec::new();
        for i in 0..100usize {
            let e = w.spawn_at(Vec2::new((i % 10) as f32 * 11.0, (i / 10) as f32 * 11.0));
            w.set_f32(e, "hp", i as f32).unwrap();
            w.set(
                e,
                "team",
                Value::Str(if i % 10 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
            if i % 2 == 0 {
                w.set(e, "level", Value::Int((i % 5) as i64)).unwrap();
            }
            ids.push(e);
        }
        (w, ids)
    }

    #[test]
    fn stats_counts_and_bounds() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        assert_eq!(s.rows, 100);
        assert_eq!(s.positioned, 100);
        let (lo, hi) = s.bounds.unwrap();
        assert_eq!(lo, Vec2::ZERO);
        assert_eq!(hi, Vec2::new(99.0, 99.0));
        let hp = s.column("hp").unwrap();
        assert_eq!(hp.present, 100);
        assert_eq!(hp.ndv, 100);
        assert_eq!(hp.min, Some(0.0));
        assert_eq!(hp.max, Some(99.0));
        let team = s.column("team").unwrap();
        assert_eq!(team.ndv, 2);
        let level = s.column("level").unwrap();
        assert_eq!(level.present, 50);
        assert_eq!(level.ndv, 5);
    }

    #[test]
    fn equality_selectivity_uses_ndv() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let sel = s.selectivity(&Pred::new("team", CmpOp::Eq, Value::Str("red".into())));
        assert!((sel - 0.5).abs() < 1e-9, "1/ndv = 1/2, got {sel}");
        let sel = s.selectivity(&Pred::new("hp", CmpOp::Eq, Value::Float(5.0)));
        assert!((sel - 0.01).abs() < 1e-9, "1/100, got {sel}");
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let low = s.selectivity(&Pred::new("hp", CmpOp::Lt, Value::Float(9.9)));
        assert!((0.05..0.2).contains(&low), "~10%, got {low}");
        let high = s.selectivity(&Pred::new("hp", CmpOp::Ge, Value::Float(49.5)));
        assert!((0.4..0.6).contains(&high), "~50%, got {high}");
        // out-of-range bounds clamp
        assert_eq!(s.selectivity(&Pred::new("hp", CmpOp::Lt, Value::Float(-5.0))), 0.0);
        assert_eq!(s.selectivity(&Pred::new("hp", CmpOp::Ge, Value::Float(-5.0))), 1.0);
    }

    #[test]
    fn presence_scales_selectivity() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        // level present on half the rows, 5 distinct values
        let sel = s.selectivity(&Pred::new("level", CmpOp::Eq, Value::Int(3)));
        assert!((sel - 0.5 * 0.2).abs() < 1e-9, "got {sel}");
    }

    #[test]
    fn unknown_component_matches_nothing() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        assert_eq!(s.selectivity(&Pred::new("mana", CmpOp::Ge, Value::Float(0.0))), 0.0);
    }

    #[test]
    fn predicates_ordered_most_selective_first() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select()
            .filter("team", CmpOp::Ne, Value::Str("red".into())) // sel 0.5
            .filter("hp", CmpOp::Eq, Value::Float(30.0)); // sel 0.01
        let p = plan(&q, &s);
        assert_eq!(p.preds[0].component, "hp", "{}", p.explain());
        assert!(p.selectivities[0] <= p.selectivities[1]);
    }

    #[test]
    fn small_radius_picks_index_huge_radius_picks_scan() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let small = plan(&Query::select().within(Vec2::new(50.0, 50.0), 5.0), &s);
        assert!(matches!(small.access, Access::SpatialIndex { .. }), "{}", small.explain());
        let huge = plan(&Query::select().within(Vec2::new(50.0, 50.0), 500.0), &s);
        assert!(matches!(huge.access, Access::FullScan), "{}", huge.explain());
        assert!(huge.residual_within.is_some());
    }

    #[test]
    fn plans_return_exactly_what_query_returns() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let queries = vec![
            Query::select(),
            Query::select().filter("team", CmpOp::Eq, Value::Str("red".into())),
            Query::select()
                .within(Vec2::new(33.0, 33.0), 25.0)
                .filter("hp", CmpOp::Ge, Value::Float(20.0)),
            Query::select().within(Vec2::new(50.0, 50.0), 1000.0),
            Query::select()
                .within(Vec2::new(0.0, 0.0), 40.0)
                .filter("level", CmpOp::Le, Value::Int(2))
                .filter("team", CmpOp::Eq, Value::Str("blue".into())),
        ];
        for q in queries {
            let p = plan(&q, &s);
            assert_eq!(p.run(&w), q.run(&w), "plan: {}", p.explain());
        }
    }

    #[test]
    fn excluded_entity_respected() {
        let (w, ids) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select().excluding(ids[0]);
        let p = plan(&q, &s);
        let out = p.run(&w);
        assert_eq!(out.len(), 99);
        assert!(!out.contains(&ids[0]));
    }

    #[test]
    fn est_rows_tracks_reality_roughly() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let q = Query::select().filter("team", CmpOp::Eq, Value::Str("blue".into()));
        let p = plan(&q, &s);
        let actual = p.run(&w).len() as f64; // 90
        // NDV-based estimate says 50; order-of-magnitude is what planners get
        assert!(p.est_rows >= 25.0 && p.est_rows <= 100.0, "est {}", p.est_rows);
        assert!(actual == 90.0);
    }

    #[test]
    fn empty_world_plans_cleanly() {
        let w = World::new();
        let s = TableStats::build(&w);
        assert_eq!(s.rows, 0);
        assert!(s.bounds.is_none());
        let p = plan(&Query::select().within(Vec2::ZERO, 10.0), &s);
        assert!(p.run(&w).is_empty());
    }

    #[test]
    fn explain_mentions_the_path() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        let p = plan(
            &Query::select()
                .within(Vec2::new(50.0, 50.0), 5.0)
                .filter("hp", CmpOp::Ge, Value::Float(10.0)),
            &s,
        );
        let text = p.explain();
        assert!(text.contains("SpatialIndex"), "{text}");
        assert!(text.contains("Filter(hp"), "{text}");
        assert!(text.contains("est_cost"), "{text}");
    }

    #[test]
    fn attribute_index_chosen_for_selective_pred() {
        let (mut w, _) = stats_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let s = TableStats::build(&w);
        // hp == 30 keeps 1/100 rows: probing beats scanning
        let q = Query::select()
            .filter("team", CmpOp::Ne, Value::Str("red".into()))
            .filter("hp", CmpOp::Eq, Value::Float(30.0));
        let p = plan(&q, &s);
        assert!(
            matches!(&p.access, Access::AttributeIndex { component, op: CmpOp::Eq, .. } if component == "hp"),
            "{}",
            p.explain()
        );
        // the pushed predicate left the residual set
        assert_eq!(p.preds.len(), 1);
        assert_eq!(p.preds[0].component, "team");
        assert_eq!(p.run(&w), q.run_scan(&w));
        assert!(p.explain().contains("AttrIndex"), "{}", p.explain());
    }

    #[test]
    fn unselective_indexed_pred_still_scans() {
        let (mut w, _) = stats_world();
        w.create_index("team", IndexKind::Hash).unwrap();
        let s = TableStats::build(&w);
        // team has 2 distinct values: probing gains nothing over a scan
        // at n=100 once the per-candidate indirection is priced in.
        let q = Query::select().filter("team", CmpOp::Eq, Value::Str("blue".into()));
        let p = plan(&q, &s);
        assert_eq!(p.run(&w), q.run_scan(&w), "{}", p.explain());
    }

    #[test]
    fn hash_index_never_serves_ranges() {
        let (mut w, _) = stats_world();
        w.create_index("hp", IndexKind::Hash).unwrap();
        let s = TableStats::build(&w);
        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(5.0));
        let p = plan(&q, &s);
        assert!(
            matches!(p.access, Access::FullScan),
            "hash cannot serve <: {}",
            p.explain()
        );
        assert_eq!(p.run(&w), q.run_scan(&w));
    }

    #[test]
    fn attribute_probe_with_within_residual() {
        let (mut w, _) = stats_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let s = TableStats::build(&w);
        // hp < 3 keeps ~3 rows; the disk keeps ~half the map. The probe
        // should win and the within become a residual distance test.
        let q = Query::select()
            .within(Vec2::new(50.0, 50.0), 70.0)
            .filter("hp", CmpOp::Lt, Value::Float(3.0));
        let p = plan(&q, &s);
        assert!(
            matches!(p.access, Access::AttributeIndex { .. }),
            "{}",
            p.explain()
        );
        assert_eq!(p.residual_within, Some((Vec2::new(50.0, 50.0), 70.0)));
        assert_eq!(p.run(&w), q.run_scan(&w));
    }

    #[test]
    fn catalog_stats_match_world_metadata() {
        let (mut w, _) = stats_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("team", IndexKind::Hash).unwrap();
        let s = TableStats::from_catalog(&w);
        assert_eq!(s.rows, 100);
        assert_eq!(s.positioned, 100);
        let hp = s.column("hp").unwrap();
        assert_eq!(hp.present, 100);
        assert_eq!(hp.ndv, 100, "indexed column reports exact ndv");
        assert_eq!(hp.min, Some(0.0));
        assert_eq!(hp.max, Some(99.0));
        assert_eq!(hp.index, Some(IndexKind::Sorted));
        let team = s.column("team").unwrap();
        assert_eq!(team.ndv, 2);
        assert_eq!(team.index, Some(IndexKind::Hash));
        // unindexed column: System-R default ndv (equality ~ 10%)
        let level = s.column("level").unwrap();
        assert_eq!(level.present, 50);
        assert_eq!(level.ndv, 10);
        assert_eq!(level.index, None);
        assert_eq!(level.ty, gamedb_content::ValueType::Int);
        // expand-only bounds cover the exact ones
        let (lo, hi) = s.bounds.unwrap();
        assert!(lo.x <= 0.0 && lo.y <= 0.0 && hi.x >= 99.0 && hi.y >= 99.0);
    }

    #[test]
    fn planned_equals_scan_with_indexes_everywhere() {
        let (mut w, ids) = stats_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("team", IndexKind::Hash).unwrap();
        w.create_index("level", IndexKind::Sorted).unwrap();
        let s = TableStats::build(&w);
        let queries = vec![
            Query::select().filter("hp", CmpOp::Eq, Value::Float(30.0)),
            Query::select().filter("hp", CmpOp::Ge, Value::Float(95.0)),
            Query::select()
                .filter("level", CmpOp::Le, Value::Int(1))
                .filter("team", CmpOp::Eq, Value::Str("red".into())),
            Query::select()
                .within(Vec2::new(33.0, 33.0), 25.0)
                .filter("hp", CmpOp::Lt, Value::Float(10.0)),
            Query::select()
                .filter("hp", CmpOp::Gt, Value::Float(90.0))
                .excluding(ids[95]),
            // literal type that can never match: empty either way
            Query::select().filter("team", CmpOp::Eq, Value::Int(3)),
        ];
        for q in queries {
            let p = plan(&q, &s);
            assert_eq!(p.run(&w), q.run_scan(&w), "plan: {}", p.explain());
            assert_eq!(q.run(&w), q.run_scan(&w));
        }
    }

    #[test]
    fn vec2_sorted_index_never_planned_for_ranges() {
        let mut w = World::new();
        w.define_component("vel", gamedb_content::ValueType::Vec2)
            .unwrap();
        for i in 0..50 {
            let e = w.spawn_at(Vec2::new(i as f32, 0.0));
            w.set(e, "vel", Value::Vec2(i as f32, 0.0)).unwrap();
        }
        w.create_index("vel", IndexKind::Sorted).unwrap();
        let s = TableStats::from_catalog(&w);
        // a range over vec2 is unservable; the planner must not pick a
        // probe the executor degrades out of on every run
        let q = Query::select().filter("vel", CmpOp::Lt, Value::Vec2(10.0, 0.0));
        let p = plan(&q, &s);
        assert!(matches!(p.access, Access::FullScan), "{}", p.explain());
        assert_eq!(p.run(&w), q.run_scan(&w));
        // equality on vec2 stays probe-eligible
        let qe = Query::select().filter("vel", CmpOp::Eq, Value::Vec2(10.0, 0.0));
        assert_eq!(qe.run(&w), qe.run_scan(&w));
    }

    #[test]
    fn plan_count_matches_run_len() {
        let (mut w, ids) = stats_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let s = TableStats::build(&w);
        let queries = vec![
            Query::select().filter("hp", CmpOp::Lt, Value::Float(10.0)),
            Query::select()
                .within(Vec2::new(33.0, 33.0), 25.0)
                .filter("hp", CmpOp::Ge, Value::Float(20.0)),
            Query::select().excluding(ids[0]),
            Query::select().filter("team", CmpOp::Eq, Value::Str("red".into())),
        ];
        for q in queries {
            let p = plan(&q, &s);
            assert_eq!(p.count(&w), p.run(&w).len(), "{}", p.explain());
            assert_eq!(q.count(&w), q.run_scan(&w).len());
        }
    }

    #[test]
    fn est_in_radius_density_model() {
        let (w, _) = stats_world();
        let s = TableStats::build(&w);
        // disk area π·25 over bbox ~99² ≈ 0.8% of 100 entities
        let est = s.est_in_radius(5.0);
        assert!(est > 0.2 && est < 3.0, "got {est}");
        // radius covering everything saturates at positioned count
        assert_eq!(s.est_in_radius(10_000.0), 100.0);
    }
}
