//! The tick executor: sequential and data-parallel system execution.
//!
//! "We will also look at how game developers have been using parallel
//! programming to improve performance; this is an area in which game
//! developers potentially have a lot to learn from the database
//! community." The executor treats a tick as a batch query: each *system*
//! is a function from an entity and the immutable tick-start state to
//! effects. Entities are partitioned into chunks and fanned out over
//! scoped threads (the GPU-batch analogue on CPU cores); per-chunk effect
//! buffers are merged in chunk order and applied once — so the result is
//! bit-identical regardless of thread count (see the determinism property
//! test, and experiment E5 for the speedup curve).

use crate::effect::EffectBuffer;
use crate::entity::EntityId;
use crate::world::{CoreError, World};

/// A per-entity system: reads the tick-start world, emits effects.
pub type System<'a> = dyn Fn(EntityId, &World, &mut EffectBuffer) + Sync + 'a;

/// Statistics from one tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickStats {
    /// Entities processed (per system run, summed).
    pub entities_processed: usize,
    /// Effects applied after merging.
    pub effects_applied: usize,
    /// Threads used.
    pub threads: usize,
}

/// Runs systems over the world, one tick at a time.
#[derive(Debug, Clone, Copy)]
pub struct TickExecutor {
    threads: usize,
    /// Minimum entities per chunk; tiny worlds stay single-threaded.
    min_chunk: usize,
}

impl Default for TickExecutor {
    fn default() -> Self {
        TickExecutor::sequential()
    }
}

impl TickExecutor {
    /// Single-threaded executor.
    pub fn sequential() -> Self {
        TickExecutor {
            threads: 1,
            min_chunk: 1,
        }
    }

    /// Executor with an explicit thread count (clamped to ≥ 1).
    pub fn parallel(threads: usize) -> Self {
        TickExecutor {
            threads: threads.max(1),
            min_chunk: 64,
        }
    }

    /// Thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override the minimum chunk size (benchmarks sweep this).
    pub fn with_min_chunk(mut self, min_chunk: usize) -> Self {
        self.min_chunk = min_chunk.max(1);
        self
    }

    /// Run one tick: every system over every live entity against the
    /// tick-start state, then apply all effects atomically.
    pub fn run_tick(
        &self,
        world: &mut World,
        systems: &[&System<'_>],
    ) -> Result<TickStats, CoreError> {
        let ids = world.entity_vec();
        let mut stats = TickStats {
            threads: self.threads,
            ..Default::default()
        };
        let mut merged = EffectBuffer::new();

        if self.threads == 1 || ids.len() < self.min_chunk * 2 {
            stats.threads = 1;
            for system in systems {
                for &id in &ids {
                    system(id, world, &mut merged);
                }
                stats.entities_processed += ids.len();
            }
        } else {
            let chunk_size = (ids.len() / self.threads).max(self.min_chunk);
            let chunks: Vec<&[EntityId]> = ids.chunks(chunk_size).collect();
            for system in systems {
                // one buffer slot per chunk => merge order is chunk order,
                // independent of thread scheduling
                let mut buffers: Vec<EffectBuffer> =
                    chunks.iter().map(|_| EffectBuffer::new()).collect();
                let world_ref: &World = world;
                crossbeam::thread::scope(|scope| {
                    for (chunk, buf) in chunks.iter().zip(buffers.iter_mut()) {
                        scope.spawn(move |_| {
                            for &id in *chunk {
                                system(id, world_ref, buf);
                            }
                        });
                    }
                })
                .expect("tick worker panicked");
                for buf in buffers {
                    merged.merge(buf);
                }
                stats.entities_processed += ids.len();
            }
        }

        stats.effects_applied = merged.apply(world)?;
        world.bump_tick();
        Ok(stats)
    }

    /// Run `n` ticks of the same systems.
    pub fn run_ticks(
        &self,
        world: &mut World,
        systems: &[&System<'_>],
        n: usize,
    ) -> Result<TickStats, CoreError> {
        let mut total = TickStats {
            threads: self.threads,
            ..Default::default()
        };
        for _ in 0..n {
            let s = self.run_tick(world, systems)?;
            total.entities_processed += s.entities_processed;
            total.effects_applied += s.effects_applied;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;
    use gamedb_content::ValueType;
    use gamedb_spatial::Vec2;

    fn arena(n: usize) -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        for i in 0..n {
            let e = w.spawn_at(Vec2::new((i % 32) as f32 * 4.0, (i / 32) as f32 * 4.0));
            w.set_f32(e, "hp", 100.0).unwrap();
            w.set_f32(e, "dmg", 1.0 + (i % 5) as f32).unwrap();
        }
        w
    }

    /// Every entity damages every neighbor within 6 units (commutative
    /// Add effects) and regenerates 0.5 hp.
    fn combat_system(id: EntityId, world: &World, buf: &mut EffectBuffer) {
        let Some(p) = world.pos(id) else { return };
        let dmg = world.get_f32(id, "dmg").unwrap_or(0.0) as f64;
        let mut near = Vec::new();
        world.within(p, 6.0, &mut near);
        for other in near {
            if other != id {
                buf.push(other, "hp", Effect::Add(-dmg));
            }
        }
        buf.push(id, "hp", Effect::Add(0.5));
    }

    #[test]
    fn sequential_tick_applies_effects() {
        let mut w = arena(4);
        let exec = TickExecutor::sequential();
        let stats = exec
            .run_tick(&mut w, &[&combat_system])
            .unwrap();
        assert_eq!(stats.entities_processed, 4);
        assert!(stats.effects_applied > 0);
        assert_eq!(w.tick(), 1);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut w_seq = arena(500);
        let mut w_par = arena(500);
        let seq = TickExecutor::sequential();
        let par = TickExecutor::parallel(4).with_min_chunk(16);
        for _ in 0..5 {
            seq.run_tick(&mut w_seq, &[&combat_system]).unwrap();
            par.run_tick(&mut w_par, &[&combat_system]).unwrap();
        }
        let rows_seq = w_seq.rows();
        let rows_par = w_par.rows();
        assert_eq!(rows_seq, rows_par, "parallel tick must be deterministic");
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let mut worlds: Vec<World> = (0..4).map(|_| arena(300)).collect();
        let execs = [
            TickExecutor::parallel(2).with_min_chunk(8),
            TickExecutor::parallel(3).with_min_chunk(8),
            TickExecutor::parallel(8).with_min_chunk(8),
            TickExecutor::sequential(),
        ];
        for (w, exec) in worlds.iter_mut().zip(execs.iter()) {
            exec.run_ticks(w, &[&combat_system], 3).unwrap();
        }
        let reference = worlds[3].rows();
        for w in &worlds[..3] {
            assert_eq!(w.rows(), reference);
        }
    }

    #[test]
    fn reads_see_tick_start_state() {
        // System A sets hp to 0; system B reads hp. Both run in the same
        // tick: B must see the tick-start value (state-effect semantics),
        // so its Add is based on 100, not 0.
        let mut w = arena(1);
        let e = w.entities().next().unwrap();
        let kill: &System<'_> = &|id, _w, buf: &mut EffectBuffer| {
            buf.push(id, "hp", Effect::Set(gamedb_content::Value::Float(0.0)));
        };
        let observe: &System<'_> = &|id, w: &World, buf: &mut EffectBuffer| {
            let hp = w.get_f32(id, "hp").unwrap();
            assert_eq!(hp, 100.0, "reads must see tick-start state");
            buf.push(id, "dmg", Effect::Add(hp as f64));
        };
        TickExecutor::sequential()
            .run_tick(&mut w, &[kill, observe])
            .unwrap();
        // canonical effect order applies Set before Add? Both target
        // different components; hp==0 and dmg incremented by 100.
        assert_eq!(w.get_f32(e, "hp"), Some(0.0));
        assert_eq!(w.get_f32(e, "dmg"), Some(101.0));
    }

    #[test]
    fn despawn_during_tick() {
        let mut w = arena(10);
        let victim = w.entities().next().unwrap();
        let reaper: &System<'_> = &|id, _w, buf: &mut EffectBuffer| {
            if id == victim {
                buf.despawn(id);
            }
        };
        TickExecutor::sequential().run_tick(&mut w, &[reaper]).unwrap();
        assert_eq!(w.len(), 9);
        assert!(!w.is_live(victim));
    }

    #[test]
    fn spawns_during_tick() {
        use crate::effect::SpawnRequest;
        let mut w = arena(3);
        let spawner: &System<'_> = &|_id, _w, buf: &mut EffectBuffer| {
            buf.spawn(SpawnRequest {
                components: vec![("hp".into(), gamedb_content::Value::Float(1.0))],
                pos: Vec2::ZERO,
            });
        };
        TickExecutor::sequential().run_tick(&mut w, &[spawner]).unwrap();
        assert_eq!(w.len(), 6, "each of 3 entities spawned one more");
    }

    #[test]
    fn run_ticks_accumulates_stats() {
        let mut w = arena(8);
        let stats = TickExecutor::sequential()
            .run_ticks(&mut w, &[&combat_system], 4)
            .unwrap();
        assert_eq!(stats.entities_processed, 32);
        assert_eq!(w.tick(), 4);
    }

    #[test]
    fn parallel_ticks_keep_indexes_and_scans_agreeing() {
        use crate::index::IndexKind;
        use crate::query::Query;
        use gamedb_content::{CmpOp, Value};
        let mut w = arena(300);
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let exec = TickExecutor::parallel(4).with_min_chunk(16);
        for _ in 0..3 {
            exec.run_tick(&mut w, &[&combat_system]).unwrap();
            let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(95.0));
            assert_eq!(q.run(&w), q.run_scan(&w), "index drifted from columns");
        }
    }

    #[test]
    fn empty_world_ticks_fine() {
        let mut w = World::new();
        let stats = TickExecutor::parallel(4)
            .run_tick(&mut w, &[&combat_system])
            .unwrap();
        assert_eq!(stats.entities_processed, 0);
        assert_eq!(stats.effects_applied, 0);
    }
}
