//! The world: a columnar entity database with a spatial index over
//! positions and secondary indexes over attribute columns.
//!
//! "Just as with a database, games require that their data — which is
//! often the state of the entire world — be in a consistent state." The
//! [`World`] is that database: entities are rows, components are typed
//! columns, the reserved `pos` column is mirrored into a spatial index
//! so proximity queries (`within`) are O(local density), not O(n), and
//! any other column can carry a [`SecondaryIndex`] (see
//! [`World::create_index`]) so attribute predicates are O(matches), not
//! O(entities). Every write path keeps both index families exact — the
//! maintenance invariants are listed in [`crate::index`].

use std::fmt;
use std::sync::Arc;

use gamedb_content::{ComponentView, ResolvedTemplate, Value, ValueType};
use gamedb_metrics::MetricsRegistry;
use gamedb_spatial::{SpatialIndex, UniformGrid, Vec2};

use crate::change::{BatchOp, Change, ChangeOp, ChangeStream, TapId, TapStats, WriteBatch};
use crate::metrics::CoreMetrics;
use crate::column::Column;
use crate::entity::{EntityAllocator, EntityId};
use crate::index::{IndexKind, SecondaryIndex};
use crate::intern::{ComponentId, ComponentInterner};
use crate::query::Query;
use crate::view::{Changelog, ViewId, ViewRegistry, ViewStats};
use gamedb_content::CmpOp;

/// Name of the reserved position component.
pub const POS: &str = "pos";

/// Interned id of the reserved position component — always the first
/// component a world interns, so consumers matching position records in
/// the change stream can compare against a constant.
pub const POS_ID: ComponentId = ComponentId::POS;

/// Errors from world operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    UnknownComponent(String),
    DuplicateComponent(String),
    TypeMismatch {
        component: String,
        expected: ValueType,
        got: ValueType,
    },
    DeadEntity(EntityId),
    /// The reserved `pos` component must be `vec2`.
    ReservedComponent(String),
    /// An index already exists on the component.
    DuplicateIndex(String),
    /// Catalog import found a live view at the slot with a different
    /// standing query (recovery would silently rebind subscribers).
    ViewSlotConflict(u32),
    /// An operator tree failed structural validation (nesting, projected
    /// columns, aggregate support, depth bound) — see [`crate::dvm`].
    PlanInvalid(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownComponent(c) => write!(f, "unknown component {c:?}"),
            CoreError::DuplicateComponent(c) => write!(f, "component {c:?} already defined"),
            CoreError::TypeMismatch {
                component,
                expected,
                got,
            } => write!(f, "component {component:?} is {expected}, got {got}"),
            CoreError::DeadEntity(id) => write!(f, "entity {id} is not alive"),
            CoreError::ReservedComponent(c) => {
                write!(f, "component {c:?} is reserved (pos must be vec2)")
            }
            CoreError::DuplicateIndex(c) => {
                write!(f, "component {c:?} already has a secondary index")
            }
            CoreError::ViewSlotConflict(s) => {
                write!(f, "view slot {s} holds a different standing query")
            }
            CoreError::PlanInvalid(why) => write!(f, "invalid view plan: {why}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The game world database.
#[derive(Debug, Clone)]
pub struct World {
    alloc: EntityAllocator,
    /// One column per interned component id, in definition order
    /// (`columns[id.index()]` is the column `interner.name(id)` names).
    columns: Vec<Column>,
    /// Component name ↔ id table, shared by clone lineage. Ids appear in
    /// change records, WAL frames, and replication segments; names are
    /// resolved here.
    interner: ComponentInterner,
    spatial: UniformGrid,
    /// Secondary attribute indexes, one optional slot per component id.
    indexes: Vec<Option<SecondaryIndex>>,
    /// Standing views (continuous queries) maintained from the delta log.
    views: ViewRegistry,
    /// Lineage id stamped into every [`ViewId`] this world issues, so a
    /// handle presented to an unrelated world is rejected instead of
    /// silently reading whatever occupies the same slot there. Clones
    /// share the lineage (a pre-clone handle reads either copy).
    world_id: u64,
    /// The ordered change stream every mutation commits through.
    /// Recorded only while a consumer exists (a standing view or an
    /// attached tap); folded into views by [`World::refresh_views`],
    /// read by taps via [`World::tap_pending`].
    changes: ChangeStream,
    /// Expand-only bounding box of every position ever set — a cheap,
    /// conservative stand-in for exact bounds in the planner's density
    /// model (despawns don't shrink it; distributions in games rarely
    /// shrink either).
    bounds: Option<(Vec2, Vec2)>,
    tick: u64,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// Create a world with the default spatial cell size (16 world units).
    pub fn new() -> Self {
        Self::with_cell_size(16.0)
    }

    /// Create a world whose position index uses the given grid cell size.
    pub fn with_cell_size(cell: f32) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static WORLD_IDS: AtomicU64 = AtomicU64::new(1);
        let mut interner = ComponentInterner::default();
        let pos_id = interner.intern(POS);
        debug_assert_eq!(pos_id, POS_ID);
        World {
            alloc: EntityAllocator::new(),
            columns: vec![Column::new(ValueType::Vec2)],
            interner,
            spatial: UniformGrid::new(cell),
            indexes: Vec::new(),
            views: ViewRegistry::default(),
            changes: ChangeStream::default(),
            world_id: WORLD_IDS.fetch_add(1, Ordering::Relaxed),
            bounds: None,
            tick: 0,
        }
    }

    // ---- schema ----

    /// Define a component column. `pos` is predefined and reserved.
    /// The name is interned: the new column's [`ComponentId`] is the
    /// next id in definition order, and a
    /// [`ChangeOp::ComponentDefined`] catalog record is committed while
    /// a tap is attached (WAL redo re-interns at the exact id).
    pub fn define_component(&mut self, name: &str, ty: ValueType) -> Result<(), CoreError> {
        if name == POS {
            return Err(CoreError::ReservedComponent(name.to_string()));
        }
        if self.interner.get(name).is_some() {
            return Err(CoreError::DuplicateComponent(name.to_string()));
        }
        let id = self.interner.intern(name);
        self.columns.push(Column::new(ty));
        debug_assert_eq!(id.index() + 1, self.columns.len());
        self.record_catalog(ChangeOp::ComponentDefined {
            component: id,
            name: name.to_string(),
            ty,
        });
        Ok(())
    }

    /// Redo-side [`World::define_component`]: define `name` at exactly
    /// `id` (recovery replays `Define` records in stream order, so ids
    /// land where the pre-crash world put them). Idempotent for an
    /// identical existing definition; a conflicting name, id, or type
    /// is an error. Returns whether a column was created.
    pub fn ensure_component_at(
        &mut self,
        id: ComponentId,
        name: &str,
        ty: ValueType,
    ) -> Result<bool, CoreError> {
        if let Some(existing) = self.interner.get(name) {
            return if existing == id && self.columns[existing.index()].ty() == ty {
                Ok(false)
            } else {
                Err(CoreError::DuplicateComponent(name.to_string()))
            };
        }
        if id.index() != self.columns.len() {
            return Err(CoreError::UnknownComponent(format!(
                "define {name:?} at {id} out of order (next id is #{})",
                self.columns.len()
            )));
        }
        self.define_component(name, ty)?;
        Ok(true)
    }

    /// Component type by name.
    pub fn component_type(&self, name: &str) -> Option<ValueType> {
        self.interner.get(name).map(|id| self.columns[id.index()].ty())
    }

    /// Interned id of a component name, if defined.
    #[inline]
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.interner.get(name)
    }

    /// Name of an interned component id, if this lineage issued it.
    #[inline]
    pub fn component_name(&self, id: ComponentId) -> Option<&str> {
        self.interner.name(id)
    }

    /// Number of defined components (`pos` included) — ids are dense in
    /// `0..component_count()`.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.interner.len()
    }

    /// Iterate `(component name, type)` in name order.
    pub fn schema(&self) -> impl Iterator<Item = (&str, ValueType)> {
        self.interner
            .iter_by_name()
            .map(|(n, id)| (n, self.columns[id.index()].ty()))
    }

    /// Iterate `(id, name, type)` in id (definition) order — the layout
    /// the snapshot format persists so recovery restores the interner
    /// table verbatim.
    pub fn schema_by_id(&self) -> impl Iterator<Item = (ComponentId, &str, ValueType)> {
        self.interner
            .iter_by_id()
            .map(|(id, n)| (id, n, self.columns[id.index()].ty()))
    }

    /// Direct column access for scans (None for unknown components).
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.interner.get(name).map(|id| &self.columns[id.index()])
    }

    /// [`World::column`] addressed by interned id.
    #[inline]
    pub fn column_by_id(&self, id: ComponentId) -> Option<&Column> {
        self.columns.get(id.index())
    }

    // ---- secondary indexes ----

    /// Create a secondary index on a component, backfilled from current
    /// data and maintained through every subsequent write. `pos` is
    /// served by the spatial index and cannot carry one.
    ///
    /// Pick [`IndexKind::Hash`] for identity-like equality lookups and
    /// [`IndexKind::Sorted`] when range predicates matter; the planner
    /// ([`crate::planner::plan`]) weighs either against a scan using the
    /// index's exact NDV and bounds.
    pub fn create_index(&mut self, component: &str, kind: IndexKind) -> Result<(), CoreError> {
        if component == POS {
            return Err(CoreError::ReservedComponent(component.to_string()));
        }
        let cid = self
            .interner
            .get(component)
            .ok_or_else(|| CoreError::UnknownComponent(component.to_string()))?;
        if self.index_of(cid).is_some() {
            return Err(CoreError::DuplicateIndex(component.to_string()));
        }
        let col = &self.columns[cid.index()];
        let mut idx = SecondaryIndex::new(kind, col.ty());
        for id in self.alloc.iter_live() {
            if let Some(v) = col.get(id.index() as usize) {
                idx.insert(&v, id);
            }
        }
        if self.indexes.len() <= cid.index() {
            self.indexes.resize_with(cid.index() + 1, || None);
        }
        self.indexes[cid.index()] = Some(idx);
        self.record_catalog(ChangeOp::CreateIndex {
            component: cid,
            kind,
        });
        Ok(())
    }

    /// Drop the index on a component; returns whether one existed.
    pub fn drop_index(&mut self, component: &str) -> bool {
        let Some(cid) = self.interner.get(component) else {
            return false;
        };
        let existed = self
            .indexes
            .get_mut(cid.index())
            .and_then(Option::take)
            .is_some();
        if existed {
            self.record_catalog(ChangeOp::DropIndex { component: cid });
        }
        existed
    }

    /// The live index slot for an id, if any.
    #[inline]
    fn index_of(&self, id: ComponentId) -> Option<&SecondaryIndex> {
        self.indexes.get(id.index()).and_then(Option::as_ref)
    }

    /// The index on a component, if any.
    pub fn index_on(&self, component: &str) -> Option<&SecondaryIndex> {
        self.index_of(self.interner.get(component)?)
    }

    /// Iterate `(component, kind)` over existing indexes, in name order.
    pub fn indexed_components(&self) -> impl Iterator<Item = (&str, IndexKind)> {
        self.interner
            .iter_by_name()
            .filter_map(|(n, id)| self.index_of(id).map(|ix| (n, ix.kind())))
    }

    /// True when an index on `component` can answer `op` probes.
    pub fn index_supports(&self, component: &str, op: CmpOp) -> bool {
        self.index_on(component).is_some_and(|idx| idx.supports(op))
    }

    /// Probe the index on `component` for entities satisfying
    /// `stored op value`, appending id-sorted matches to `out`. Returns
    /// `false` (out untouched) when no index can serve the probe — the
    /// caller falls back to a scan.
    pub fn index_probe(
        &self,
        component: &str,
        op: CmpOp,
        value: &Value,
        out: &mut Vec<EntityId>,
    ) -> bool {
        match self.index_on(component) {
            Some(idx) => idx.probe(op, value, out),
            None => false,
        }
    }

    fn index_replace(
        &mut self,
        component: ComponentId,
        id: EntityId,
        old: Option<&Value>,
        new: &Value,
    ) {
        if let Some(idx) = self
            .indexes
            .get_mut(component.index())
            .and_then(Option::as_mut)
        {
            if let Some(old) = old {
                idx.remove(old, id);
            }
            idx.insert(new, id);
        }
    }

    // ---- the change stream ----
    //
    // Every mutation below funnels through one commit discipline: do the
    // write, then append a typed record to the stream while any consumer
    // (standing view or tap) is attached. See [`crate::change`] for the
    // record taxonomy and ordering guarantees.

    /// True while row ops must be recorded (a view or a tap is live).
    #[inline]
    fn recording(&self) -> bool {
        self.views.is_active() || self.changes.has_taps()
    }

    #[inline]
    fn record(&mut self, op: ChangeOp) {
        self.changes.record(self.tick, op);
    }

    /// Record a catalog/tick op. Views do not consume these, so they
    /// are only recorded while a tap is attached.
    #[inline]
    fn record_catalog(&mut self, op: ChangeOp) {
        if self.changes.has_taps() {
            self.changes.record(self.tick, op);
        }
    }

    /// Attach a change-stream tap: from here on, every mutation of this
    /// world is recorded, and [`World::tap_pending`] returns the records
    /// the tap has not consumed yet. This is how the persistence layer's
    /// durability and the replicator's stream shipping observe *every*
    /// write path — scripted ticks and effect batches included — without
    /// mirroring the write API.
    pub fn attach_tap(&mut self) -> TapId {
        self.changes.attach()
    }

    /// Attach a **pinned** change-stream tap: identical to
    /// [`World::attach_tap`] except the retention policy
    /// ([`World::set_tap_retention`]) never evicts it. Pinning is for
    /// consumers whose missed records are data loss — the durability
    /// tap a `WalStore` drains. A pinned laggard keeps the record
    /// window alive past the retention limit; bounding it is the
    /// consumer's job (commit cadence + backpressure), not the
    /// stream's.
    pub fn attach_tap_pinned(&mut self) -> TapId {
        self.changes.attach_pinned()
    }

    /// True when `tap` is attached and pinned (exempt from retention
    /// eviction).
    pub fn tap_pinned(&self, tap: TapId) -> bool {
        self.changes.tap_pinned(tap)
    }

    /// How many records `tap` is lagging behind the head of the change
    /// stream (0 for detached or evicted taps).
    pub fn tap_lag(&self, tap: TapId) -> u64 {
        self.changes.tap_lag(tap)
    }

    /// One coherent reading of a tap's state: lag, acked sequence,
    /// pinned flag, and whether it is evicted or attached at all —
    /// everything [`World::tap_lag`] / [`World::tap_pinned`] /
    /// [`World::tap_evicted`] report, taken at one instant.
    pub fn tap_stats(&self, tap: TapId) -> TapStats {
        self.changes.tap_stats(tap)
    }

    // ---- instrumentation ----

    /// Attach a metrics registry: from here on the engine reports
    /// counters, gauges, and histograms for the change stream, standing
    /// views, and the query planner into `registry` (catalog in
    /// ARCHITECTURE.md § Observability). Purely observational — a
    /// seeded workload is bit-identical with and without metrics.
    /// Replaces any previously attached registry. Like taps, clones of
    /// this world do **not** inherit the attachment.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.changes
            .set_metrics(Some(Arc::new(CoreMetrics::new(registry))));
    }

    /// Detach the metrics registry attached by
    /// [`World::attach_metrics`]; reporting stops immediately.
    pub fn detach_metrics(&mut self) {
        self.changes.set_metrics(None);
    }

    /// The cached metric handles, when a registry is attached. Hot
    /// paths that only hold `&World` (queries, view refreshes) report
    /// through this.
    #[inline]
    pub(crate) fn core_metrics(&self) -> Option<&Arc<CoreMetrics>> {
        self.changes.metrics()
    }

    /// Detach a tap; returns whether it was attached. Records it had not
    /// consumed are released to the other consumers' pace.
    pub fn detach_tap(&mut self, tap: TapId) -> bool {
        let detached = self.changes.detach(tap);
        if !self.recording() {
            self.changes.clear();
        }
        detached
    }

    /// The ordered records `tap` has not consumed yet. Consume with
    /// [`World::ack_tap`]; a tap never sees a record twice.
    pub fn tap_pending(&self, tap: TapId) -> &[Change] {
        self.changes.tap_pending(tap)
    }

    /// Advance `tap` past everything recorded so far, releasing records
    /// all consumers have passed.
    pub fn ack_tap(&mut self, tap: TapId) {
        if !self.views.is_active() {
            // no views to fold: their cursor must not hold the window
            self.changes.mark_views_folded();
        }
        self.changes.ack(tap);
    }

    /// The tap's cursor: seq of the next record it will observe
    /// (`None` for detached or evicted taps). Because mutation and
    /// consumption are synchronous, a row image read while the cursor
    /// sits at seq `S` is exactly the state-as-of-`S` — the anchor a
    /// cross-shard router stamps on the full-row snapshot it ships
    /// when an entity is handed to another node, and the position a
    /// warm standby measures its replay tail against.
    pub fn tap_cursor(&self, tap: TapId) -> Option<u64> {
        self.changes.tap_cursor(tap)
    }

    /// Advance `tap`'s cursor forward to `seq` (clamped to the stream
    /// head; acking backwards is a no-op). The partial form of
    /// [`World::ack_tap`], for consumers that shipped only a prefix of
    /// their pending window.
    pub fn ack_tap_to(&mut self, tap: TapId, seq: u64) {
        if !self.views.is_active() {
            self.changes.mark_views_folded();
        }
        self.changes.ack_to(tap, seq);
    }

    /// Total records ever committed to the change stream (the seq the
    /// next mutation will receive).
    pub fn change_seq(&self) -> u64 {
        self.changes.next_seq()
    }

    /// Bound the record window a lagging tap may pin: a consumer that
    /// leaks its [`TapId`] (disconnects without
    /// [`World::detach_tap`]) would otherwise retain every later
    /// mutation forever. With a limit set, any tap lagging more than
    /// `limit` records is **evicted** — it reads nothing from then on
    /// ([`World::tap_evicted`] reports it) and must resynchronize from
    /// current state after re-attaching. `None` (the default) retains
    /// forever. Pinned taps ([`World::attach_tap_pinned`]) are exempt:
    /// a durability tap is never evicted, the window simply outgrows
    /// the limit until its owner drains it.
    pub fn set_tap_retention(&mut self, limit: Option<usize>) {
        self.changes.set_retention(limit);
    }

    /// True when the retention policy evicted `tap` (see
    /// [`World::set_tap_retention`]).
    pub fn tap_evicted(&self, tap: TapId) -> bool {
        self.changes.tap_evicted(tap)
    }

    /// Records currently retained for lagging consumers — the memory
    /// the slowest tap is pinning.
    pub fn retained_changes(&self) -> usize {
        self.changes.retained()
    }

    // ---- entities ----

    /// Spawn an empty entity (no components, no position).
    pub fn spawn(&mut self) -> EntityId {
        let id = self.alloc.alloc();
        if self.recording() {
            self.record(ChangeOp::Spawned { id });
        }
        id
    }

    /// Spawn an entity at a position.
    pub fn spawn_at(&mut self, pos: Vec2) -> EntityId {
        let id = self.spawn();
        self.set_pos(id, pos).expect("freshly spawned entity is live");
        id
    }

    /// Spawn from a resolved template at a position: every declared
    /// component gets its default value. Components the world has not seen
    /// yet are defined on the fly with the template's type.
    pub fn spawn_from_template(
        &mut self,
        template: &ResolvedTemplate,
        pos: Vec2,
    ) -> Result<EntityId, CoreError> {
        // Pre-validate types against existing columns before mutating.
        for def in template.components.values() {
            if def.name == POS {
                if def.ty != ValueType::Vec2 {
                    return Err(CoreError::ReservedComponent(POS.to_string()));
                }
                continue;
            }
            if let Some(existing) = self.component_type(&def.name) {
                if existing != def.ty {
                    return Err(CoreError::TypeMismatch {
                        component: def.name.clone(),
                        expected: existing,
                        got: def.ty,
                    });
                }
            }
        }
        let id = self.spawn_at(pos);
        for def in template.components.values() {
            if def.name == POS {
                if let Value::Vec2(x, y) = def.default {
                    // explicit template default overrides the spawn pos
                    // only when nonzero — designers use 0,0 as "unset"
                    if x != 0.0 || y != 0.0 {
                        self.set_pos(id, Vec2::new(x, y))?;
                    }
                }
                continue;
            }
            if self.component_type(&def.name).is_none() {
                self.define_component(&def.name, def.ty)?;
            }
            self.set(id, &def.name, def.default.clone())?;
        }
        Ok(id)
    }

    /// Restore an entity with an exact id (used by snapshot recovery so
    /// ids survive a round-trip). Fails when the slot is already live.
    pub fn restore_entity(&mut self, id: EntityId) -> Result<(), CoreError> {
        if self.alloc.restore(id) {
            if self.recording() {
                self.record(ChangeOp::Spawned { id });
            }
            Ok(())
        } else {
            Err(CoreError::DeadEntity(id))
        }
    }

    /// Despawn an entity, removing all its components. Returns `false`
    /// for stale ids. The change record carries the dropped row image
    /// (id-ordered `(component, value)` pairs), so stream consumers can
    /// fold the loss without a world rescan.
    pub fn despawn(&mut self, id: EntityId) -> bool {
        if !self.alloc.free(id) {
            return false;
        }
        let slot = id.index() as usize;
        if self.recording() {
            // the row image exists for tap consumers (wealth fold,
            // delta shipping); views read only the entity id, so the
            // views-only configuration skips the column walk and clones
            let row: Vec<(ComponentId, Value)> = if self.changes.has_taps() {
                self.columns
                    .iter()
                    .enumerate()
                    .filter_map(|(i, col)| {
                        col.get(slot).map(|v| (ComponentId::from_u32(i as u32), v))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            self.record(ChangeOp::Despawned { id, row });
        }
        // Indexes are evicted while column values are still readable.
        for (i, col) in self.columns.iter_mut().enumerate() {
            if let Some(Some(idx)) = self.indexes.get_mut(i) {
                if let Some(v) = col.get(slot) {
                    idx.remove(&v, id);
                }
            }
            col.remove(slot);
        }
        self.spatial.remove(id.to_bits());
        true
    }

    /// True when `id` is a live entity.
    #[inline]
    pub fn is_live(&self, id: EntityId) -> bool {
        self.alloc.is_live(id)
    }

    /// Number of live entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.alloc.live_count()
    }

    /// True when the world has no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate live entities in slot order (deterministic).
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.alloc.iter_live()
    }

    /// Collect live entities into a vector (for chunked parallel ticks).
    pub fn entity_vec(&self) -> Vec<EntityId> {
        self.entities().collect()
    }

    // ---- component access ----

    fn check_live(&self, id: EntityId) -> Result<(), CoreError> {
        if self.is_live(id) {
            Ok(())
        } else {
            Err(CoreError::DeadEntity(id))
        }
    }

    /// Set a component value (type-checked). Setting `pos` also moves the
    /// entity in the spatial index.
    pub fn set(&mut self, id: EntityId, component: &str, value: Value) -> Result<(), CoreError> {
        self.check_live(id)?;
        if component == POS {
            let Value::Vec2(x, y) = value else {
                return Err(CoreError::TypeMismatch {
                    component: POS.to_string(),
                    expected: ValueType::Vec2,
                    got: value.value_type(),
                });
            };
            return self.set_pos(id, Vec2::new(x, y));
        }
        let cid = self
            .interner
            .get(component)
            .ok_or_else(|| CoreError::UnknownComponent(component.to_string()))?;
        let indexed = self.index_of(cid).is_some();
        let recording = self.recording();
        let col = &mut self.columns[cid.index()];
        let slot = id.index() as usize;
        // Fetch the outgoing value only when an index must forget it or
        // the change stream must carry it.
        let old = if indexed || recording { col.get(slot) } else { None };
        col.set(slot, &value)
            .map_err(|expected| CoreError::TypeMismatch {
                component: component.to_string(),
                expected,
                got: value.value_type(),
            })?;
        if indexed {
            self.index_replace(cid, id, old.as_ref(), &value);
        }
        if recording {
            // the record carries the interned id — no name clone on the
            // hot write path
            self.record(ChangeOp::Set {
                id,
                component: cid,
                old,
                new: value,
            });
        }
        Ok(())
    }

    /// Component value, or `None` when the entity is dead, the component
    /// is unknown, or the entity lacks it.
    pub fn get(&self, id: EntityId, component: &str) -> Option<Value> {
        if !self.is_live(id) {
            return None;
        }
        self.column(component)?.get(id.index() as usize)
    }

    /// Remove a component from an entity.
    pub fn remove_component(&mut self, id: EntityId, component: &str) -> Result<bool, CoreError> {
        self.check_live(id)?;
        let cid = self
            .interner
            .get(component)
            .ok_or_else(|| CoreError::UnknownComponent(component.to_string()))?;
        if cid == POS_ID {
            self.spatial.remove(id.to_bits());
        }
        let slot = id.index() as usize;
        if let Some(Some(idx)) = self.indexes.get_mut(cid.index()) {
            if let Some(old) = self.columns[cid.index()].get(slot) {
                idx.remove(&old, id);
            }
        }
        let recording = self.recording();
        let col = &mut self.columns[cid.index()];
        let old = if recording { col.get(slot) } else { None };
        let removed = col.remove(slot);
        if let Some(old) = old {
            // recording, and there was a value to remove
            self.record(ChangeOp::Removed {
                id,
                component: cid,
                old,
            });
        }
        Ok(removed)
    }

    // ---- typed fast paths ----

    /// `f32` component value.
    #[inline]
    pub fn get_f32(&self, id: EntityId, component: &str) -> Option<f32> {
        if !self.is_live(id) {
            return None;
        }
        self.column(component)?.get_f32(id.index() as usize)
    }

    /// Set an `f32` component (must be float-typed and defined).
    pub fn set_f32(&mut self, id: EntityId, component: &str, v: f32) -> Result<(), CoreError> {
        self.set(id, component, Value::Float(v))
    }

    /// `i64` component value.
    #[inline]
    pub fn get_i64(&self, id: EntityId, component: &str) -> Option<i64> {
        if !self.is_live(id) {
            return None;
        }
        self.column(component)?.get_i64(id.index() as usize)
    }

    /// `bool` component value.
    #[inline]
    pub fn get_bool(&self, id: EntityId, component: &str) -> Option<bool> {
        if !self.is_live(id) {
            return None;
        }
        self.column(component)?.get_bool(id.index() as usize)
    }

    /// Numeric component view (float or int).
    #[inline]
    pub fn get_number(&self, id: EntityId, component: &str) -> Option<f64> {
        if !self.is_live(id) {
            return None;
        }
        self.column(component)?.get_number(id.index() as usize)
    }

    /// `&str` view of a string component addressed by interned id — the
    /// zero-allocation, zero-hash read per-entity dispatch loops (the
    /// script engine's binding lookup) run on.
    #[inline]
    pub fn get_str_by_id(&self, id: EntityId, component: ComponentId) -> Option<&str> {
        if !self.is_live(id) {
            return None;
        }
        self.columns.get(component.index())?.get_str(id.index() as usize)
    }

    // ---- position & spatial queries ----

    /// Position of an entity.
    #[inline]
    pub fn pos(&self, id: EntityId) -> Option<Vec2> {
        if !self.is_live(id) {
            return None;
        }
        self.columns[POS_ID.index()]
            .get_v2(id.index() as usize)
            .map(|[x, y]| Vec2::new(x, y))
    }

    /// Move an entity (keeps the spatial index in sync).
    pub fn set_pos(&mut self, id: EntityId, pos: Vec2) -> Result<(), CoreError> {
        self.check_live(id)?;
        let recording = self.recording();
        let col = &mut self.columns[POS_ID.index()];
        let old = if recording { col.get(id.index() as usize) } else { None };
        col.set(id.index() as usize, &Value::Vec2(pos.x, pos.y))
            .expect("pos column is vec2");
        if recording {
            self.record(ChangeOp::Set {
                id,
                component: POS_ID,
                old,
                new: Value::Vec2(pos.x, pos.y),
            });
        }
        self.spatial.update(id.to_bits(), pos);
        self.bounds = Some(match self.bounds {
            None => (pos, pos),
            Some((lo, hi)) => (
                Vec2::new(lo.x.min(pos.x), lo.y.min(pos.y)),
                Vec2::new(hi.x.max(pos.x), hi.y.max(pos.y)),
            ),
        });
        Ok(())
    }

    /// Number of entities with a position (spatial index cardinality).
    #[inline]
    pub fn positioned_count(&self) -> usize {
        self.spatial.len()
    }

    /// Expand-only bounding box over every position ever set. Cheap, but
    /// note the error direction: despawns and clustering never shrink
    /// it, so density estimated over it *under*-counts candidates in a
    /// disk and the planner leans toward spatial probes. That costs
    /// probe overhead on a query a scan would serve cheaper — never
    /// wrong results. Exact bounds remain available via
    /// [`crate::planner::TableStats::build`].
    #[inline]
    pub fn approx_bounds(&self) -> Option<(Vec2, Vec2)> {
        self.bounds
    }

    /// Append every entity within the closed disk to `out`.
    pub fn within(&self, center: Vec2, radius: f32, out: &mut Vec<EntityId>) {
        let mut bits = Vec::new();
        self.spatial.query_range(center, radius, &mut bits);
        out.extend(bits.into_iter().map(EntityId::from_bits));
        out.sort_unstable(); // deterministic order for scripts
    }

    /// The `k` nearest positioned entities to `center`, closest first.
    pub fn knn(&self, center: Vec2, k: usize, out: &mut Vec<EntityId>) {
        let mut bits = Vec::new();
        self.spatial.query_knn(center, k, &mut bits);
        out.extend(bits.into_iter().map(EntityId::from_bits));
    }

    /// Nearest positioned entity to `center` other than `exclude`.
    pub fn nearest_other(&self, center: Vec2, exclude: EntityId) -> Option<EntityId> {
        self.spatial
            .nearest_excluding(center, exclude.to_bits())
            .map(EntityId::from_bits)
    }

    /// All pairs `(a, b)` with `a < b` whose positions are within
    /// `radius`, via the spatial index — the index join the paper
    /// contrasts with designers' accidental O(n²) loops.
    pub fn pairs_within(&self, radius: f32) -> Vec<(EntityId, EntityId)> {
        let mut pairs = Vec::new();
        let mut near = Vec::new();
        for a in self.entities() {
            let Some(p) = self.pos(a) else { continue };
            near.clear();
            self.spatial.query_range(p, radius, &mut near);
            for &bits in &near {
                let b = EntityId::from_bits(bits);
                if a < b {
                    pairs.push((a, b));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Same result as [`World::pairs_within`] computed by the naive
    /// nested loop — the Ω(n²) baseline of experiment E1.
    pub fn pairs_within_naive(&self, radius: f32) -> Vec<(EntityId, EntityId)> {
        let r2 = radius * radius;
        let ids: Vec<EntityId> = self.entities().collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            let Some(pa) = self.pos(a) else { continue };
            for &b in &ids[i + 1..] {
                let Some(pb) = self.pos(b) else { continue };
                if pa.dist2(pb) <= r2 {
                    pairs.push((a.min(b), a.max(b)));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    // ---- standing views (continuous queries) ----

    /// Register a standing query: the result set is materialized now and
    /// maintained incrementally from the world's delta stream from here
    /// on (see [`crate::view`] for the maintenance invariants). Returns a
    /// handle for [`World::view_rows`] / [`World::take_view_changelog`].
    ///
    /// While at least one view is registered, every write path records a
    /// compact delta; [`World::refresh_views`] (called automatically at
    /// every tick bump) folds the pending batch into all views.
    pub fn register_view(&mut self, query: Query) -> ViewId {
        // Fold any pending changes under the old view set first so the
        // initial materialization and the stream agree on "now".
        self.refresh_views();
        let rows = query.run(self);
        let id = self.views.register(self.world_id, query.clone(), rows);
        self.record_catalog(ChangeOp::RegisterView {
            slot: id.slot,
            query,
        });
        id
    }

    /// Register an operator-tree view ([`crate::dvm::ViewPlan`]): the
    /// plan is validated and materialized now, then maintained
    /// incrementally by per-operator delta rules from the same change
    /// stream that feeds single-table views. Errors on structurally
    /// invalid plans ([`CoreError::PlanInvalid`]); nothing is registered
    /// or recorded then.
    pub fn register_view_plan(&mut self, plan: crate::dvm::ViewPlan) -> Result<ViewId, CoreError> {
        self.refresh_views();
        let view = crate::dvm::PlanView::new(plan.clone(), self)?;
        let id = self.views.register_plan(self.world_id, view);
        self.record_catalog(ChangeOp::RegisterPlanView {
            slot: id.slot,
            plan,
        });
        Ok(id)
    }

    /// Panic unless `id` was issued by this world (lineage) — reading a
    /// foreign handle would silently return an unrelated view's rows.
    fn check_view_lineage(&self, id: ViewId) {
        assert!(
            id.world == self.world_id,
            "view {id:?} belongs to a different world"
        );
    }

    /// Drop a standing view; returns whether it existed. Dropping the
    /// last view stops delta recording.
    pub fn drop_view(&mut self, id: ViewId) -> bool {
        if id.world != self.world_id {
            return false;
        }
        let dropped = self.views.drop_view(id);
        if dropped {
            self.record_catalog(ChangeOp::DropView { slot: id.slot });
        }
        if !self.recording() {
            self.changes.clear();
        }
        dropped
    }

    /// True when `id` names a live view of this world (handles of
    /// dropped views stay stale forever — slots are never reused — and
    /// handles from other worlds are never accepted).
    pub fn has_view(&self, id: ViewId) -> bool {
        id.world == self.world_id && self.views.contains_view(id)
    }

    /// Materialized rows of a view, sorted by entity id. Reflects the
    /// state as of the last [`World::refresh_views`].
    ///
    /// # Panics
    /// On foreign, unknown, or dropped view ids (programmer error).
    pub fn view_rows(&self, id: ViewId) -> &[EntityId] {
        self.check_view_lineage(id);
        self.views.rows(id)
    }

    /// Number of rows currently in a view.
    pub fn view_count(&self, id: ViewId) -> usize {
        self.view_rows(id).len()
    }

    /// True when `e` is currently a member of the view.
    pub fn view_contains(&self, id: ViewId, e: EntityId) -> bool {
        self.check_view_lineage(id);
        self.views.contains_row(id, e)
    }

    /// The standing query a view maintains.
    pub fn view_query(&self, id: ViewId) -> &Query {
        self.check_view_lineage(id);
        self.views.query(id)
    }

    /// Peek at the changes accumulated since the changelog was last
    /// taken (does not consume).
    pub fn view_changelog(&self, id: ViewId) -> &Changelog {
        self.check_view_lineage(id);
        self.views.changelog(id)
    }

    /// Consume a view's accumulated changelog — the per-tick changelog
    /// when called once per tick.
    pub fn take_view_changelog(&mut self, id: ViewId) -> Changelog {
        self.check_view_lineage(id);
        self.views.take_changelog(id)
    }

    /// Maintenance counters of a view.
    pub fn view_stats(&self, id: ViewId) -> ViewStats {
        self.check_view_lineage(id);
        self.views.stats(id)
    }

    // ---- operator-tree views (differential view maintenance) ----

    /// The operator tree a view maintains, when `id` names a plan view
    /// (`None` for single-table query views).
    pub fn view_plan(&self, id: ViewId) -> Option<&crate::dvm::ViewPlan> {
        self.check_view_lineage(id);
        self.views.plan(id)
    }

    /// The live plan view maintaining exactly `plan`, if one exists —
    /// subscribers re-adopt their views across reconnects with this
    /// (the plan-view analogue of scanning `view_ids` for a query).
    pub fn find_plan_view(&self, plan: &crate::dvm::ViewPlan) -> Option<ViewId> {
        self.views
            .live_plan_slots()
            .find(|(_, p)| *p == plan)
            .map(|(slot, _)| ViewId {
                world: self.world_id,
                slot,
            })
    }

    /// Materialized pairs of a join view, ascending by `(left, right)`.
    ///
    /// # Panics
    /// On foreign, unknown, or dropped ids, and on views that do not
    /// materialize pairs (programmer error).
    pub fn view_pairs(&self, id: ViewId) -> &[(EntityId, EntityId)] {
        self.check_view_lineage(id);
        self.views.pairs(id)
    }

    /// Materialized group rows of a group-aggregate view, ascending by
    /// group key (the global group, when present, first).
    ///
    /// # Panics
    /// As [`World::view_pairs`], for non-group views.
    pub fn view_groups(&self, id: ViewId) -> &[crate::dvm::GroupRow] {
        self.check_view_lineage(id);
        self.views.groups(id)
    }

    /// Aggregate value of the group keyed `key` (`None` = the global
    /// group), if that group currently exists.
    pub fn view_group_value(&self, id: ViewId, key: Option<&Value>) -> Option<f64> {
        self.view_groups(id)
            .iter()
            .find(|g| g.key.as_ref() == key)
            .map(|g| g.value)
    }

    /// Min/max retract-and-recompute count of a group-aggregate view.
    pub fn view_retract_recomputes(&self, id: ViewId) -> u64 {
        self.check_view_lineage(id);
        self.views.retract_recomputes(id)
    }

    /// Snapshot of an operator-tree view's maintained output — the
    /// shape [`crate::dvm::ViewPlan::evaluate`] returns, so callers can
    /// compare the incrementally-maintained state against a fresh
    /// recompute with one equality check.
    pub fn view_output(&self, id: ViewId) -> crate::dvm::PlanOutput {
        self.check_view_lineage(id);
        self.views.plan_output(id)
    }

    /// Peek at a join view's accumulated pair changelog (does not
    /// consume).
    pub fn view_pair_changelog(&self, id: ViewId) -> &crate::dvm::PairChangelog {
        self.check_view_lineage(id);
        self.views.pair_changelog(id)
    }

    /// Consume a join view's accumulated pair changelog.
    pub fn take_view_pair_changelog(&mut self, id: ViewId) -> crate::dvm::PairChangelog {
        self.check_view_lineage(id);
        self.views.take_pair_changelog(id)
    }

    /// Peek at a group view's accumulated group changelog (does not
    /// consume).
    pub fn view_group_changelog(&self, id: ViewId) -> &crate::dvm::GroupChangelog {
        self.check_view_lineage(id);
        self.views.group_changelog(id)
    }

    /// Consume a group view's accumulated group changelog.
    pub fn take_view_group_changelog(&mut self, id: ViewId) -> crate::dvm::GroupChangelog {
        self.check_view_lineage(id);
        self.views.take_group_changelog(id)
    }

    /// Row-op changes recorded since the last refresh. Views are stale
    /// while this is nonzero (subscribers reading between refreshes
    /// should fall back to a live query, as the sync auditor does).
    pub fn pending_deltas(&self) -> usize {
        self.changes
            .pending_views()
            .iter()
            .filter(|c| c.op.is_row_op())
            .count()
    }

    /// Fold all pending changes into every standing view. Called
    /// automatically at tick end; callers mutating the world outside the
    /// tick executor (action executors, recovery, tests) call it before
    /// reading views.
    pub fn refresh_views(&mut self) {
        if self.changes.pending_views().is_empty() {
            return;
        }
        if !self.views.is_active() {
            self.changes.mark_views_folded();
            return;
        }
        // Move the stream and the registry out so the fold can read
        // `self` without aliasing; no write path runs while they are
        // out, so recording state is moot. The stream window survives
        // the round-trip — taps that have not consumed it yet keep it.
        let stream = std::mem::take(&mut self.changes);
        let mut views = std::mem::take(&mut self.views);
        views.apply(self, stream.pending_views(), stream.metrics().map(Arc::as_ref));
        self.views = views;
        self.changes = stream;
        self.changes.mark_views_folded();
    }

    /// Move a spatial view's `within` restriction (interest bubbles and
    /// aggro ranges follow their focus entity). Pending changes are
    /// folded first, then the view rescans under the new disk and the
    /// membership diff lands in its changelog as `entered` / `exited`.
    pub fn retarget_view(&mut self, id: ViewId, center: Vec2, radius: f32) {
        self.check_view_lineage(id);
        self.refresh_views();
        let mut views = std::mem::take(&mut self.views);
        views.retarget(self, id, center, radius);
        self.views = views;
        self.record_catalog(ChangeOp::RetargetView {
            slot: id.slot,
            x: center.x,
            y: center.y,
            radius,
        });
    }

    // ---- catalog: the recovery surface ----
    //
    // Since indexes and standing views became first-class derived state,
    // a world is more than its rows: recovery that restores facts but
    // not the definitions deriving from them hands back a *different*
    // database. The catalog captures those definitions — plus the
    // lineage and tick identity — so the persistence layer can rebuild
    // indexes, re-materialize views at their original slots, and let
    // subscribers keep using their pre-crash [`ViewId`] handles.

    /// Lineage id stamped into this world's [`ViewId`]s.
    #[inline]
    pub fn lineage(&self) -> u64 {
        self.world_id
    }

    /// Adopt a recorded lineage (recovery): handles issued by the
    /// pre-crash world resolve against the recovered one. Call before
    /// re-registering views, or their ids will carry the wrong lineage.
    pub fn restore_lineage(&mut self, lineage: u64) {
        self.world_id = lineage;
    }

    /// Export the catalog: index definitions, live standing views with
    /// their slots, total slots ever issued, lineage, and tick.
    pub fn export_catalog(&self) -> WorldCatalog {
        WorldCatalog {
            lineage: self.world_id,
            tick: self.tick,
            indexes: self
                .indexed_components()
                .map(|(n, k)| (n.to_string(), k))
                .collect(),
            view_slots: self.views.slot_count(),
            views: self
                .views
                .live_slots()
                .map(|(slot, q)| (slot, q.clone()))
                .collect(),
            plan_views: self
                .views
                .live_plan_slots()
                .map(|(slot, p)| (slot, p.clone()))
                .collect(),
        }
    }

    /// Rebuild derived state from a catalog: indexes are created and
    /// backfilled from current rows, dropped view slots are burned, live
    /// views are re-materialized at their original slots, and lineage +
    /// tick are restored. Idempotent: re-importing over matching state
    /// is a no-op, so duplicated redo records are harmless.
    pub fn import_catalog(&mut self, cat: &WorldCatalog) -> Result<(), CoreError> {
        self.restore_lineage(cat.lineage);
        for (component, kind) in &cat.indexes {
            self.ensure_index(component, *kind)?;
        }
        self.views.reserve_slots(cat.view_slots);
        for (slot, query) in &cat.views {
            self.import_view_at_slot(*slot, query.clone())?;
        }
        for (slot, plan) in &cat.plan_views {
            self.import_plan_view_at_slot(*slot, plan.clone())?;
        }
        self.advance_tick_to(cat.tick);
        Ok(())
    }

    /// Make the world's derived state exactly match a catalog: indexes
    /// and views absent from it are dropped, then missing ones are
    /// imported. This is the recovery primitive for *incremental*
    /// restore paths (snapshot + delta chain), where the base image may
    /// carry derived state that was dropped before the later durable
    /// point the catalog describes. [`World::import_catalog`] alone is
    /// additive and would leak those.
    pub fn reconcile_catalog(&mut self, cat: &WorldCatalog) -> Result<(), CoreError> {
        let current: Vec<(String, IndexKind)> = self
            .indexed_components()
            .map(|(n, k)| (n.to_string(), k))
            .collect();
        for entry in &current {
            if !cat.indexes.contains(entry) {
                self.drop_index(&entry.0);
            }
        }
        for id in self.view_ids() {
            let keep = cat
                .views
                .iter()
                .any(|(slot, q)| *slot == id.slot && q == self.view_query(id));
            if !keep {
                self.drop_view(id);
            }
        }
        for id in self.plan_view_ids() {
            let keep = cat.plan_views.iter().any(|(slot, p)| {
                *slot == id.slot && Some(p) == self.view_plan(id)
            });
            if !keep {
                self.drop_view(id);
            }
        }
        self.import_catalog(cat)
    }

    /// [`World::create_index`] that tolerates an identical existing
    /// index (idempotent redo). Returns whether an index was created;
    /// a kind mismatch is still an error.
    pub fn ensure_index(&mut self, component: &str, kind: IndexKind) -> Result<bool, CoreError> {
        if let Some(idx) = self.index_on(component) {
            return if idx.kind() == kind {
                Ok(false)
            } else {
                Err(CoreError::DuplicateIndex(component.to_string()))
            };
        }
        self.create_index(component, kind)?;
        Ok(true)
    }

    /// Handles of every live single-table standing view, slot-ordered.
    /// Operator-tree views are listed by [`World::plan_view_ids`].
    pub fn view_ids(&self) -> Vec<ViewId> {
        self.views
            .live_slots()
            .map(|(slot, _)| ViewId {
                world: self.world_id,
                slot,
            })
            .collect()
    }

    /// Handles of every live operator-tree view, slot-ordered.
    pub fn plan_view_ids(&self) -> Vec<ViewId> {
        self.views
            .live_plan_slots()
            .map(|(slot, _)| ViewId {
                world: self.world_id,
                slot,
            })
            .collect()
    }

    /// Handle of the live view at `slot` (either kind), if any.
    pub fn view_id_at(&self, slot: u32) -> Option<ViewId> {
        if self.views.query_at_slot(slot).is_some() || self.views.plan_at_slot(slot).is_some() {
            Some(ViewId {
                world: self.world_id,
                slot,
            })
        } else {
            None
        }
    }

    /// First live view maintaining exactly `query` — how a subscriber
    /// re-attaches to its standing view after a restart instead of
    /// registering a duplicate.
    pub fn find_view(&self, query: &Query) -> Option<ViewId> {
        self.views
            .live_slots()
            .find(|(_, q)| *q == query)
            .map(|(slot, _)| ViewId {
                world: self.world_id,
                slot,
            })
    }

    /// Re-register a standing view at an exact slot (recovery replay).
    /// The view materializes from current state with an empty changelog.
    /// A live slot holding the same query is accepted unchanged
    /// (idempotent redo); a different query is a conflict.
    pub fn import_view_at_slot(&mut self, slot: u32, query: Query) -> Result<ViewId, CoreError> {
        let id = ViewId {
            world: self.world_id,
            slot,
        };
        if let Some(existing) = self.views.query_at_slot(slot) {
            return if *existing == query {
                Ok(id)
            } else {
                Err(CoreError::ViewSlotConflict(slot))
            };
        }
        self.refresh_views();
        let rows = query.run(self);
        let installed = self.views.install_at_slot(slot, query.clone(), rows);
        debug_assert!(installed, "slot checked dead above");
        self.record_catalog(ChangeOp::RegisterView { slot, query });
        Ok(id)
    }

    /// Re-register an operator-tree view at an exact slot (recovery
    /// replay). The view materializes from current state with empty
    /// changelogs. A live slot holding the same plan is accepted
    /// unchanged (idempotent redo); any other occupant is a conflict.
    pub fn import_plan_view_at_slot(
        &mut self,
        slot: u32,
        plan: crate::dvm::ViewPlan,
    ) -> Result<ViewId, CoreError> {
        let id = ViewId {
            world: self.world_id,
            slot,
        };
        if let Some(existing) = self.views.plan_at_slot(slot) {
            return if *existing == plan {
                Ok(id)
            } else {
                Err(CoreError::ViewSlotConflict(slot))
            };
        }
        if self.views.query_at_slot(slot).is_some() {
            return Err(CoreError::ViewSlotConflict(slot));
        }
        self.refresh_views();
        let view = crate::dvm::PlanView::new(plan.clone(), self)?;
        let installed = self.views.install_plan_at_slot(slot, view);
        if !installed {
            return Err(CoreError::ViewSlotConflict(slot));
        }
        self.record_catalog(ChangeOp::RegisterPlanView { slot, plan });
        Ok(id)
    }

    /// [`World::drop_view`] addressed by slot (recovery replay).
    pub fn drop_view_slot(&mut self, slot: u32) -> bool {
        match self.view_id_at(slot) {
            Some(id) => self.drop_view(id),
            None => false,
        }
    }

    /// [`World::retarget_view`] addressed by slot (recovery replay).
    /// Returns `false` when the slot is dead.
    pub fn retarget_view_slot(&mut self, slot: u32, center: Vec2, radius: f32) -> bool {
        match self.view_id_at(slot) {
            Some(id) => {
                self.retarget_view(id, center, radius);
                true
            }
            None => false,
        }
    }

    /// Drop every view's accumulated changelog. Recovery calls this
    /// last: replaying the WAL tail re-runs pre-crash writes through the
    /// view machinery, and those churn entries must not be re-delivered
    /// to subscribers that already consumed them before the crash —
    /// post-recovery changelogs start empty, anchored at the recovery
    /// tick.
    pub fn reset_view_changelogs(&mut self) {
        self.views.clear_changelogs();
    }

    // ---- tick counter ----

    /// Current tick number.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Restore the tick counter to `tick` (recovery). Pending changes
    /// are folded first, mirroring [`World::bump_tick`]; the counter
    /// never moves backward, so duplicated redo records are harmless.
    pub fn advance_tick_to(&mut self, tick: u64) {
        self.refresh_views();
        if tick > self.tick {
            self.tick = tick;
            self.record_catalog(ChangeOp::TickTo { tick });
        }
    }

    /// Advance the tick counter (the executor calls this). Standing
    /// views refresh here, so each completed tick publishes its
    /// changelog batch before the next tick's systems run.
    pub(crate) fn bump_tick(&mut self) {
        self.refresh_views();
        self.tick += 1;
        self.record_catalog(ChangeOp::TickTo { tick: self.tick });
    }

    /// Adapter implementing [`ComponentView`] for one entity, for trigger
    /// guard evaluation.
    pub fn view(&self, id: EntityId) -> WorldEntityView<'_> {
        WorldEntityView { world: self, id }
    }

    /// Iterate one entity's `(component, value)` rows in name order —
    /// the per-entity slice of [`World::rows`], so view-driven consumers
    /// (replication) can ship members without walking the whole world.
    pub fn components_of(&self, id: EntityId) -> impl Iterator<Item = (&str, Value)> + '_ {
        let live = self.is_live(id);
        let slot = id.index() as usize;
        self.interner.iter_by_name().filter_map(move |(name, cid)| {
            if !live {
                return None;
            }
            self.columns[cid.index()].get(slot).map(|v| (name, v))
        })
    }

    /// Dump all `(entity, component, value)` rows in deterministic order —
    /// the persistence layer serializes this.
    pub fn rows(&self) -> Vec<(EntityId, String, Value)> {
        let mut rows = Vec::new();
        for id in self.entities() {
            let slot = id.index() as usize;
            for (name, cid) in self.interner.iter_by_name() {
                if let Some(v) = self.columns[cid.index()].get(slot) {
                    rows.push((id, name.to_string(), v));
                }
            }
        }
        rows
    }

    // ---- batch commit ----

    /// Commit a [`WriteBatch`] of primitive writes in one call. Each op
    /// goes through the same commit discipline as the individual write
    /// methods (type checks, index maintenance, change-stream records),
    /// but maximal runs of value writes are regrouped by component —
    /// per-slot order preserved, so the final state and the recorded
    /// old→new chains are identical to op-by-op application — and the
    /// column + index for each group are resolved once instead of once
    /// per write. With a durability tap attached, the whole batch lands
    /// as **one** pending stream segment: one group-commit WAL frame.
    ///
    /// This is how the tick executor's merged effect buffers commit
    /// (see [`crate::effect::EffectBuffer::apply`]).
    ///
    /// Returns the number of ops applied. On error the batch stops at
    /// the offending op (already-applied ops stay applied — batches are
    /// atomic only with respect to durability framing, not rollback).
    pub fn apply_batch(&mut self, batch: WriteBatch) -> Result<usize, CoreError> {
        let mut ops = batch.ops;
        let total = ops.len();
        let mut i = 0;
        while i < ops.len() {
            if matches!(ops[i], BatchOp::Set { .. } | BatchOp::SetPos { .. }) {
                let j = i + ops[i..]
                    .iter()
                    .take_while(|o| matches!(o, BatchOp::Set { .. } | BatchOp::SetPos { .. }))
                    .count();
                self.apply_write_run(&mut ops[i..j])?;
                i = j;
                continue;
            }
            match &ops[i] {
                BatchOp::Remove { id, component } => {
                    self.remove_component(*id, component)?;
                }
                BatchOp::Despawn { id } => {
                    self.despawn(*id);
                }
                BatchOp::Spawn { components, pos } => {
                    let id = self.spawn_at(*pos);
                    for (component, value) in components {
                        if self.component_type(component).is_none() {
                            // auto-define like template spawning does
                            let _ = self.define_component(component, value.value_type());
                        }
                        self.set(id, component, value.clone())?;
                    }
                }
                BatchOp::Set { .. } | BatchOp::SetPos { .. } => unreachable!("handled above"),
            }
            i += 1;
        }
        if let Some(m) = self.core_metrics() {
            m.batches.inc();
            m.batch_ops.observe(total as u64);
        }
        Ok(total)
    }

    /// Apply a run of value writes, regrouped by **interned column id**
    /// (names resolve to ids once, before the sort). The sort is
    /// stable, so multiple writes to one `(entity, component)` slot keep
    /// their order; cross-slot writes commute (no observer runs between
    /// the ops of a batch, and replay applies records in stream order).
    fn apply_write_run(&mut self, run: &mut [BatchOp]) -> Result<(), CoreError> {
        fn key_of(interner: &ComponentInterner, op: &BatchOp) -> u32 {
            match op {
                // unknown names sort last and error when their group
                // applies
                BatchOp::Set { component, .. } => {
                    interner.get(component).map_or(u32::MAX, ComponentId::as_u32)
                }
                BatchOp::SetPos { .. } => POS_ID.as_u32(),
                _ => unreachable!("write runs hold only value writes"),
            }
        }
        // one interner resolution per op: compute keys once, then
        // stably co-sort `run` and `keys` by applying the sorting
        // permutation in place (index-chasing form — `order[i]` may
        // point at a slot already emptied by an earlier step, so chase
        // forward until the source is at or past `i`). The index
        // tiebreak keeps the sort stable: per-slot write order holds.
        let mut keys: Vec<u32> = run.iter().map(|op| key_of(&self.interner, op)).collect();
        let mut order: Vec<u32> = (0..run.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (keys[i as usize], i));
        for i in 0..order.len() {
            let mut j = order[i] as usize;
            while j < i {
                j = order[j] as usize;
            }
            run.swap(i, j);
            keys.swap(i, j);
            order[i] = j as u32;
        }
        debug_assert!(keys.is_sorted());
        let mut i = 0;
        while i < run.len() {
            let j = i + keys[i..].iter().take_while(|&&k| k == keys[i]).count();
            if keys[i] == POS_ID.as_u32() {
                // position writes maintain the spatial index per op
                for op in &run[i..j] {
                    match op {
                        BatchOp::SetPos { id, pos } => self.set_pos(*id, *pos)?,
                        BatchOp::Set { id, value, .. } => self.set(*id, POS, value.clone())?,
                        _ => unreachable!(),
                    }
                }
            } else if keys[i] == u32::MAX {
                let BatchOp::Set { component, .. } = &run[i] else {
                    unreachable!("write runs hold only value writes");
                };
                return Err(CoreError::UnknownComponent(component.clone()));
            } else {
                self.apply_column_group(&run[i..j], ComponentId::from_u32(keys[i]))?;
            }
            i = j;
        }
        Ok(())
    }

    /// Apply a group of `Set` ops that all target one (non-`pos`)
    /// component: the column and its secondary index are resolved once
    /// for the whole group — the amortization the per-call path pays on
    /// every write.
    fn apply_column_group(&mut self, group: &[BatchOp], cid: ComponentId) -> Result<(), CoreError> {
        let recording = self.recording();
        let tick = self.tick;
        let World {
            alloc,
            columns,
            indexes,
            changes,
            ..
        } = self;
        let col = &mut columns[cid.index()];
        let mut idx = indexes.get_mut(cid.index()).and_then(Option::as_mut);
        let has_idx = idx.is_some();
        for op in group {
            let BatchOp::Set {
                id,
                component,
                value,
            } = op
            else {
                unreachable!("column groups hold only Set ops");
            };
            if !alloc.is_live(*id) {
                return Err(CoreError::DeadEntity(*id));
            }
            let slot = id.index() as usize;
            let old = if has_idx || recording {
                col.get(slot)
            } else {
                None
            };
            col.set(slot, value)
                .map_err(|expected| CoreError::TypeMismatch {
                    component: component.clone(),
                    expected,
                    got: value.value_type(),
                })?;
            if let Some(ix) = idx.as_mut() {
                if let Some(old) = &old {
                    ix.remove(old, *id);
                }
                ix.insert(value, *id);
            }
            if recording {
                changes.record(
                    tick,
                    ChangeOp::Set {
                        id: *id,
                        component: cid,
                        old,
                        new: value.clone(),
                    },
                );
            }
        }
        Ok(())
    }
}

/// The definitions of a world's derived state — secondary indexes and
/// standing views — plus its lineage and tick identity. Exported by
/// [`World::export_catalog`], rebuilt by [`World::import_catalog`]; the
/// persistence layer serializes this next to the rows so a recovered
/// world is the *same database*, access paths and subscriptions
/// included, not just the same facts.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldCatalog {
    /// Lineage id ([`World::lineage`]) the recovered world adopts so
    /// pre-crash [`ViewId`] handles stay valid.
    pub lineage: u64,
    /// Tick counter at export time.
    pub tick: u64,
    /// `(component, kind)` per secondary index, component-ordered.
    pub indexes: Vec<(String, IndexKind)>,
    /// Total view slots ever issued — dropped slots stay burned after
    /// recovery so stale handles cannot alias a new view.
    pub view_slots: u32,
    /// `(slot, standing query)` per live single-table view, slot-ordered.
    pub views: Vec<(u32, Query)>,
    /// `(slot, operator tree)` per live operator-tree view, slot-ordered.
    pub plan_views: Vec<(u32, crate::dvm::ViewPlan)>,
}

/// [`ComponentView`] over one world entity.
pub struct WorldEntityView<'a> {
    world: &'a World,
    id: EntityId,
}

impl ComponentView for WorldEntityView<'_> {
    fn get(&self, component: &str) -> Option<Value> {
        self.world.get(self.id, component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Vec2 {
        Vec2::new(x, y)
    }

    fn world_with_hp() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w
    }

    #[test]
    fn spawn_set_get() {
        let mut w = world_with_hp();
        let e = w.spawn_at(v(1.0, 2.0));
        w.set_f32(e, "hp", 50.0).unwrap();
        assert_eq!(w.get_f32(e, "hp"), Some(50.0));
        assert_eq!(w.pos(e), Some(v(1.0, 2.0)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn schema_errors() {
        let mut w = world_with_hp();
        assert_eq!(
            w.define_component("hp", ValueType::Int),
            Err(CoreError::DuplicateComponent("hp".into()))
        );
        assert_eq!(
            w.define_component(POS, ValueType::Vec2),
            Err(CoreError::ReservedComponent(POS.into()))
        );
        let e = w.spawn();
        assert_eq!(
            w.set(e, "mana", Value::Float(1.0)),
            Err(CoreError::UnknownComponent("mana".into()))
        );
        assert!(matches!(
            w.set(e, "hp", Value::Int(5)),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn dead_entity_access_fails() {
        let mut w = world_with_hp();
        let e = w.spawn_at(v(0.0, 0.0));
        w.set_f32(e, "hp", 10.0).unwrap();
        assert!(w.despawn(e));
        assert!(!w.despawn(e));
        assert_eq!(w.get_f32(e, "hp"), None);
        assert_eq!(w.pos(e), None);
        assert_eq!(w.set_f32(e, "hp", 1.0), Err(CoreError::DeadEntity(e)));
        // slot reuse does not leak old components
        let e2 = w.spawn();
        assert_eq!(e2.index(), e.index());
        assert_eq!(w.get_f32(e2, "hp"), None);
    }

    #[test]
    fn spatial_sync_on_move_and_despawn() {
        let mut w = World::new();
        let a = w.spawn_at(v(0.0, 0.0));
        let b = w.spawn_at(v(100.0, 0.0));
        let mut out = vec![];
        w.within(v(0.0, 0.0), 10.0, &mut out);
        assert_eq!(out, vec![a]);

        w.set_pos(b, v(5.0, 0.0)).unwrap();
        out.clear();
        w.within(v(0.0, 0.0), 10.0, &mut out);
        assert_eq!(out, vec![a, b]);

        w.despawn(a);
        out.clear();
        w.within(v(0.0, 0.0), 10.0, &mut out);
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn set_pos_via_dynamic_value() {
        let mut w = World::new();
        let e = w.spawn_at(v(0.0, 0.0));
        w.set(e, POS, Value::Vec2(9.0, 9.0)).unwrap();
        assert_eq!(w.pos(e), Some(v(9.0, 9.0)));
        let mut out = vec![];
        w.within(v(9.0, 9.0), 0.5, &mut out);
        assert_eq!(out, vec![e]);
        assert!(matches!(
            w.set(e, POS, Value::Float(1.0)),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn pairs_index_matches_naive() {
        let mut w = World::new();
        for i in 0..30 {
            w.spawn_at(v((i % 6) as f32 * 3.0, (i / 6) as f32 * 3.0));
        }
        assert_eq!(w.pairs_within(4.0), w.pairs_within_naive(4.0));
        assert_eq!(w.pairs_within(0.0).len(), 0);
    }

    #[test]
    fn knn_and_nearest_other() {
        let mut w = World::new();
        let a = w.spawn_at(v(0.0, 0.0));
        let b = w.spawn_at(v(1.0, 0.0));
        let c = w.spawn_at(v(5.0, 0.0));
        let mut out = vec![];
        w.knn(v(0.0, 0.0), 2, &mut out);
        assert_eq!(out, vec![a, b]);
        assert_eq!(w.nearest_other(v(0.0, 0.0), a), Some(b));
        assert_eq!(w.nearest_other(v(5.0, 0.0), c), Some(b));
    }

    #[test]
    fn template_spawn() {
        use gamedb_content::{gdml, TemplateLibrary};
        let lib = TemplateLibrary::from_gdml(
            &gdml::parse(
                r#"<templates>
                     <template name="imp" tags="hostile">
                       <component name="hp" type="float" default="25"/>
                       <component name="name" type="str" default="imp"/>
                     </template>
                   </templates>"#,
            )
            .unwrap(),
        )
        .unwrap();
        let imp = lib.resolve("imp").unwrap();
        let mut w = World::new();
        let e = w.spawn_from_template(&imp, v(3.0, 4.0)).unwrap();
        assert_eq!(w.get_f32(e, "hp"), Some(25.0));
        assert_eq!(w.get(e, "name"), Some(Value::Str("imp".into())));
        assert_eq!(w.pos(e), Some(v(3.0, 4.0)));
        // component columns were auto-defined
        assert_eq!(w.component_type("hp"), Some(ValueType::Float));

        // conflicting type in a later template is rejected before mutation
        let lib2 = TemplateLibrary::from_gdml(
            &gdml::parse(
                r#"<templates>
                     <template name="bad">
                       <component name="hp" type="str" default="full"/>
                     </template>
                   </templates>"#,
            )
            .unwrap(),
        )
        .unwrap();
        let bad = lib2.resolve("bad").unwrap();
        let before = w.len();
        assert!(w.spawn_from_template(&bad, v(0.0, 0.0)).is_err());
        assert_eq!(w.len(), before, "failed spawn must not leave an entity");
    }

    #[test]
    fn rows_dump_deterministic() {
        let mut w = world_with_hp();
        let a = w.spawn_at(v(1.0, 1.0));
        w.set_f32(a, "hp", 5.0).unwrap();
        let rows = w.rows();
        assert_eq!(rows.len(), 2); // hp + pos
        assert_eq!(rows[0].1, "hp");
        assert_eq!(rows[1].1, "pos");
    }

    #[test]
    fn index_maintained_through_writes() {
        use crate::index::IndexKind;
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        let a = w.spawn_at(v(0.0, 0.0));
        let b = w.spawn_at(v(1.0, 0.0));
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(b, "hp", 50.0).unwrap();
        // backfill picks up existing data
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let mut out = vec![];
        assert!(w.index_probe("hp", CmpOp::Lt, &Value::Float(30.0), &mut out));
        assert_eq!(out, vec![a]);

        // overwrite migrates the posting
        w.set_f32(a, "hp", 60.0).unwrap();
        out.clear();
        w.index_probe("hp", CmpOp::Lt, &Value::Float(30.0), &mut out);
        assert!(out.is_empty());
        out.clear();
        w.index_probe("hp", CmpOp::Ge, &Value::Float(50.0), &mut out);
        assert_eq!(out, vec![a, b]);

        // component removal and despawn both evict postings
        w.remove_component(a, "hp").unwrap();
        w.despawn(b);
        out.clear();
        w.index_probe("hp", CmpOp::Ge, &Value::Float(0.0), &mut out);
        assert!(out.is_empty());
        assert_eq!(w.index_on("hp").unwrap().len(), 0);
    }

    #[test]
    fn index_errors() {
        use crate::index::IndexKind;
        let mut w = world_with_hp();
        assert_eq!(
            w.create_index(POS, IndexKind::Hash),
            Err(CoreError::ReservedComponent(POS.into()))
        );
        assert_eq!(
            w.create_index("mana", IndexKind::Hash),
            Err(CoreError::UnknownComponent("mana".into()))
        );
        w.create_index("hp", IndexKind::Hash).unwrap();
        assert_eq!(
            w.create_index("hp", IndexKind::Sorted),
            Err(CoreError::DuplicateIndex("hp".into()))
        );
        assert!(w.drop_index("hp"));
        assert!(!w.drop_index("hp"));
        w.create_index("hp", IndexKind::Sorted).unwrap();
        assert_eq!(
            w.indexed_components().collect::<Vec<_>>(),
            vec![("hp", IndexKind::Sorted)]
        );
    }

    #[test]
    fn slot_reuse_does_not_resurrect_postings() {
        use crate::index::IndexKind;
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        w.create_index("hp", IndexKind::Hash).unwrap();
        let a = w.spawn_at(v(0.0, 0.0));
        w.set_f32(a, "hp", 7.0).unwrap();
        w.despawn(a);
        let b = w.spawn(); // reuses a's slot with a bumped generation
        assert_eq!(b.index(), a.index());
        let mut out = vec![];
        w.index_probe("hp", CmpOp::Eq, &Value::Float(7.0), &mut out);
        assert!(out.is_empty());
        w.set_f32(b, "hp", 7.0).unwrap();
        out.clear();
        w.index_probe("hp", CmpOp::Eq, &Value::Float(7.0), &mut out);
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn catalog_roundtrip_restores_indexes_views_and_identity() {
        use crate::index::IndexKind;
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        w.define_component("gold", ValueType::Int).unwrap();
        let a = w.spawn_at(v(0.0, 0.0));
        let b = w.spawn_at(v(1.0, 0.0));
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(b, "hp", 90.0).unwrap();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("gold", IndexKind::Hash).unwrap();
        let dropped = w.register_view(Query::select());
        let wounded = w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        w.drop_view(dropped);
        w.advance_tick_to(7);
        let cat = w.export_catalog();
        assert_eq!(cat.view_slots, 2);
        assert_eq!(cat.views.len(), 1);
        assert_eq!(cat.tick, 7);

        // rebuild a bare world with the same rows, then import
        let mut r = World::new();
        for (name, ty) in w.schema().map(|(n, t)| (n.to_string(), t)).collect::<Vec<_>>() {
            if name != POS {
                r.define_component(&name, ty).unwrap();
            }
        }
        for e in w.entity_vec() {
            r.restore_entity(e).unwrap();
        }
        for (e, comp, val) in w.rows() {
            r.set(e, &comp, val).unwrap();
        }
        r.import_catalog(&cat).unwrap();

        assert_eq!(r.lineage(), w.lineage());
        assert_eq!(r.tick(), 7);
        assert_eq!(
            r.indexed_components().collect::<Vec<_>>(),
            w.indexed_components().collect::<Vec<_>>()
        );
        // the pre-export handle resolves against the rebuilt world
        assert!(r.has_view(wounded));
        assert_eq!(r.view_rows(wounded), &[a]);
        assert!(!r.has_view(dropped), "dropped slot stays burned");
        // the burned slot is not reused by new registrations
        let fresh = r.register_view(Query::select());
        assert!(r.has_view(fresh));
        assert_ne!(fresh, dropped);
        assert_eq!(r.export_catalog().view_slots, 3);
        // re-import over matching state is a no-op
        r.drop_view(fresh);
        r.import_catalog(&cat).unwrap();
        assert_eq!(r.view_rows(wounded), &[a]);
    }

    #[test]
    fn catalog_import_conflicts_are_rejected() {
        use crate::index::IndexKind;
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let v0 = w.register_view(Query::select());
        let cat = w.export_catalog();
        let _ = v0;

        let mut r = world_with_hp();
        r.create_index("hp", IndexKind::Hash).unwrap();
        assert_eq!(
            r.import_catalog(&cat),
            Err(CoreError::DuplicateIndex("hp".into()))
        );

        let mut r2 = world_with_hp();
        r2.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(1.0)));
        assert_eq!(r2.import_catalog(&cat), Err(CoreError::ViewSlotConflict(0)));
    }

    #[test]
    fn find_view_and_slot_addressing() {
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(5.0));
        let id = w.register_view(q.clone());
        assert_eq!(w.find_view(&q), Some(id));
        assert_eq!(w.find_view(&Query::select()), None);
        assert_eq!(w.view_id_at(0), Some(id));
        assert_eq!(w.view_id_at(1), None);
        assert_eq!(w.view_ids(), vec![id]);
        // slot-addressed retarget and drop mirror the handle methods
        assert!(!w.retarget_view_slot(9, Vec2::ZERO, 1.0));
        assert!(w.drop_view_slot(0));
        assert!(!w.drop_view_slot(0));
        assert_eq!(w.find_view(&q), None);
    }

    #[test]
    fn reset_view_changelogs_clears_without_losing_rows() {
        use gamedb_content::CmpOp;
        let mut w = world_with_hp();
        let id = w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let a = w.spawn_at(v(0.0, 0.0));
        w.set_f32(a, "hp", 1.0).unwrap();
        w.refresh_views();
        assert!(!w.view_changelog(id).is_empty());
        w.reset_view_changelogs();
        assert!(w.view_changelog(id).is_empty());
        assert_eq!(w.view_rows(id), &[a]);
    }

    #[test]
    fn advance_tick_never_moves_backward() {
        let mut w = World::new();
        w.advance_tick_to(5);
        assert_eq!(w.tick(), 5);
        w.advance_tick_to(3);
        assert_eq!(w.tick(), 5, "duplicated redo records are harmless");
    }

    /// The batch regroup sorts by interned id via an in-place
    /// permutation; a run whose ids form a 3-cycle (not a mere
    /// transposition) must still land every write on its own column,
    /// with per-slot write order preserved.
    #[test]
    fn apply_batch_regroups_cyclic_component_orders_correctly() {
        let mut w = World::new();
        // definition order b, c, a: name order != id order
        w.define_component("b", ValueType::Float).unwrap();
        w.define_component("c", ValueType::Float).unwrap();
        w.define_component("a", ValueType::Float).unwrap();
        let e = w.spawn_at(v(0.0, 0.0));
        let f = w.spawn_at(v(1.0, 0.0));
        let mut batch = WriteBatch::new();
        // key sequence [3, 1, 2, 3, ...]: sorting permutation has a
        // 3-cycle, which an inverse-permutation bug scrambles
        batch.set(e, "a", Value::Float(1.0));
        batch.set(e, "b", Value::Float(2.0));
        batch.set(e, "c", Value::Float(3.0));
        batch.set(f, "a", Value::Float(4.0));
        batch.set(e, "a", Value::Float(5.0)); // same slot, later write wins
        batch.set(f, "c", Value::Float(6.0));
        w.apply_batch(batch).unwrap();
        assert_eq!(w.get_f32(e, "a"), Some(5.0));
        assert_eq!(w.get_f32(e, "b"), Some(2.0));
        assert_eq!(w.get_f32(e, "c"), Some(3.0));
        assert_eq!(w.get_f32(f, "a"), Some(4.0));
        assert_eq!(w.get_f32(f, "c"), Some(6.0));
    }

    #[test]
    fn records_carry_interned_ids_and_despawn_row_images() {
        let mut w = world_with_hp();
        w.define_component("gold", ValueType::Int).unwrap();
        let hp = w.component_id("hp").unwrap();
        let gold = w.component_id("gold").unwrap();
        assert_eq!(w.component_id(POS), Some(POS_ID));
        assert_eq!(w.component_name(hp), Some("hp"));

        let tap = w.attach_tap();
        let e = w.spawn_at(v(1.0, 2.0));
        w.set_f32(e, "hp", 5.0).unwrap();
        w.set(e, "gold", Value::Int(9)).unwrap();
        w.despawn(e);
        let ops: Vec<ChangeOp> = w.tap_pending(tap).iter().map(|c| c.op.clone()).collect();
        assert!(matches!(&ops[1], ChangeOp::Set { component, .. } if *component == POS_ID));
        assert!(matches!(&ops[2], ChangeOp::Set { component, .. } if *component == hp));
        // the despawn record carries the full dropped row, id-ordered
        let ChangeOp::Despawned { row, .. } = &ops[4] else {
            panic!("expected Despawned, got {:?}", ops[4]);
        };
        assert_eq!(
            row,
            &vec![
                (POS_ID, Value::Vec2(1.0, 2.0)),
                (hp, Value::Float(5.0)),
                (gold, Value::Int(9)),
            ]
        );
        w.detach_tap(tap);
    }

    #[test]
    fn component_definitions_are_catalog_records_while_tapped() {
        let mut w = World::new();
        // defined before any tap: not recorded (snapshot carries it)
        w.define_component("early", ValueType::Int).unwrap();
        let tap = w.attach_tap();
        w.define_component("late", ValueType::Float).unwrap();
        let ops: Vec<ChangeOp> = w.tap_pending(tap).iter().map(|c| c.op.clone()).collect();
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            ChangeOp::ComponentDefined { component, name, ty }
                if *component == w.component_id("late").unwrap()
                    && name == "late"
                    && *ty == ValueType::Float
        ));
        // template spawns auto-define through the same recorded path
        use gamedb_content::{gdml, TemplateLibrary};
        w.ack_tap(tap);
        let lib = TemplateLibrary::from_gdml(
            &gdml::parse(
                r#"<templates><template name="imp">
                     <component name="fresh" type="float" default="1"/>
                   </template></templates>"#,
            )
            .unwrap(),
        )
        .unwrap();
        w.spawn_from_template(&lib.resolve("imp").unwrap(), v(0.0, 0.0))
            .unwrap();
        assert!(w.tap_pending(tap).iter().any(|c| matches!(
            &c.op,
            ChangeOp::ComponentDefined { name, .. } if name == "fresh"
        )));
        w.detach_tap(tap);
    }

    #[test]
    fn ensure_component_at_is_idempotent_redo() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let hp = w.component_id("hp").unwrap();
        // exact duplicate: clean no-op
        assert_eq!(w.ensure_component_at(hp, "hp", ValueType::Float), Ok(false));
        // same name, wrong id or type: conflict
        assert!(w
            .ensure_component_at(ComponentId::from_u32(9), "hp", ValueType::Float)
            .is_err());
        assert!(w.ensure_component_at(hp, "hp", ValueType::Int).is_err());
        // out-of-order id for a new name: rejected (defines replay in order)
        assert!(w
            .ensure_component_at(ComponentId::from_u32(7), "mana", ValueType::Float)
            .is_err());
        // the next id in order: defined
        let next = ComponentId::from_u32(w.component_count() as u32);
        assert_eq!(w.ensure_component_at(next, "mana", ValueType::Float), Ok(true));
        assert_eq!(w.component_id("mana"), Some(next));
    }

    /// ISSUE-5 satellite: a leaked tap (consumer dropped its `TapId`
    /// without detaching) must not grow the retained window without
    /// bound once a retention limit is set.
    #[test]
    fn leaked_tap_retention_is_bounded_at_world_level() {
        let mut w = world_with_hp();
        let e = w.spawn_at(v(0.0, 0.0));
        w.set_tap_retention(Some(64));
        let leaked = w.attach_tap(); // never acked, never detached
        let live = w.attach_tap();
        for i in 0..1_000 {
            w.set_f32(e, "hp", i as f32).unwrap();
            if i % 10 == 0 {
                w.ack_tap(live);
            }
        }
        w.ack_tap(live);
        assert!(
            w.retained_changes() <= 65,
            "leaked tap must not pin the window: {} retained",
            w.retained_changes()
        );
        assert!(w.tap_evicted(leaked));
        assert!(!w.tap_evicted(live));
        // the live tap keeps streaming exactly
        w.set_f32(e, "hp", -1.0).unwrap();
        assert_eq!(w.tap_pending(live).len(), 1);
        assert!(w.tap_pending(leaked).is_empty());
        // detaching the evicted tap frees its slot for reuse
        assert!(w.detach_tap(leaked));
        assert!(!w.tap_evicted(leaked));
    }

    #[test]
    fn component_view_adapter() {
        use gamedb_content::ComponentView as _;
        let mut w = world_with_hp();
        let e = w.spawn_at(v(0.0, 0.0));
        w.set_f32(e, "hp", 42.0).unwrap();
        let view = w.view(e);
        assert_eq!(view.get("hp"), Some(Value::Float(42.0)));
        assert_eq!(view.get("mana"), None);
    }
}
