//! The state–effect pattern: deferred, combinable writes.
//!
//! The paper's performance section rests on White et al.'s "Scaling games
//! to epic proportions" (its reference \[13\]): within a tick, scripts read
//! the *state* (the world as of tick start) and emit *effects* — writes
//! that accumulate in buffers and are applied atomically at tick end.
//! Because effect combinators are commutative, per-entity scripts can run
//! in any order, on any number of threads, and the tick result is
//! identical — the property the parallel executor (experiment E5) and its
//! determinism property test rely on.

use gamedb_content::Value;
use gamedb_spatial::Vec2;

use crate::change::WriteBatch;
use crate::entity::EntityId;
use crate::world::{CoreError, World, POS};

/// A deferred write to one component of one entity.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Replace the value. Only an entity's own script may `Set` on it —
    /// the one non-commutative combinator is made safe by ownership.
    Set(Value),
    /// Add to a numeric component (commutative).
    Add(f64),
    /// Lower bound accumulation: final value is `min(current, x, …)`.
    Min(f64),
    /// Upper bound accumulation: final value is `max(current, x, …)`.
    Max(f64),
    /// Translate the position / a vec2 component (commutative).
    AddVec2(f32, f32),
}

impl Effect {
    /// Sort key making application order canonical (so that merging
    /// buffers from different thread counts yields bit-identical worlds).
    fn order_key(&self) -> (u8, u64, u64) {
        match self {
            Effect::Set(v) => (0, hash_value(v), 0),
            Effect::Add(x) => (1, x.to_bits(), 0),
            Effect::Min(x) => (2, x.to_bits(), 0),
            Effect::Max(x) => (3, x.to_bits(), 0),
            Effect::AddVec2(x, y) => (4, x.to_bits() as u64, y.to_bits() as u64),
        }
    }
}

fn hash_value(v: &Value) -> u64 {
    // Cheap stable discriminator for canonical ordering of Sets; exact
    // collisions are harmless (equal values apply identically).
    match v {
        Value::Float(x) => x.to_bits() as u64,
        Value::Int(x) => *x as u64,
        Value::Bool(b) => *b as u64,
        Value::Str(s) => s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        }),
        Value::Vec2(x, y) => ((x.to_bits() as u64) << 32) | y.to_bits() as u64,
    }
}

/// A pending spawn request (processed after effects apply).
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnRequest {
    /// Component values for the new entity.
    pub components: Vec<(String, Value)>,
    /// Spawn position.
    pub pos: Vec2,
}

/// Buffer of effects produced while a tick runs.
///
/// Buffers merge by concatenation; [`EffectBuffer::apply`] canonicalizes
/// ordering, so the merged result is independent of which thread produced
/// which effect.
#[derive(Debug, Clone, Default)]
pub struct EffectBuffer {
    ops: Vec<(EntityId, String, Effect)>,
    spawns: Vec<SpawnRequest>,
    despawns: Vec<EntityId>,
}

impl EffectBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an effect on `(entity, component)`.
    pub fn push(&mut self, id: EntityId, component: impl Into<String>, effect: Effect) {
        self.ops.push((id, component.into(), effect));
    }

    /// Queue a spawn.
    pub fn spawn(&mut self, request: SpawnRequest) {
        self.spawns.push(request);
    }

    /// Queue a despawn.
    pub fn despawn(&mut self, id: EntityId) {
        self.despawns.push(id);
    }

    /// Number of queued operations (effects + spawns + despawns).
    pub fn len(&self) -> usize {
        self.ops.len() + self.spawns.len() + self.despawns.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued `(entity, component, effect)` operations, in push order.
    /// Consumers that maintain read-through overlays (e.g. serial-within-
    /// bubble execution in `gamedb-sync`) fold these without applying.
    pub fn ops(&self) -> impl Iterator<Item = &(EntityId, String, Effect)> {
        self.ops.iter()
    }

    /// Queued despawns, in push order.
    pub fn despawned(&self) -> &[EntityId] {
        &self.despawns
    }

    /// Absorb another buffer (used when merging per-thread buffers; the
    /// caller merges in chunk order, and `apply` canonicalizes anyway).
    pub fn merge(&mut self, other: EffectBuffer) {
        self.ops.extend(other.ops);
        self.spawns.extend(other.spawns);
        self.despawns.extend(other.despawns);
    }

    /// Apply everything to the world as **one batch commit**: effects in
    /// canonical order, then despawns, then spawns. Effects on entities
    /// that despawned this tick (or were already dead) are dropped
    /// silently — scripts race against deaths every tick and that must
    /// not be an error.
    ///
    /// Effects are first *resolved* against a read-through overlay: all
    /// combinators targeting one `(entity, component)` slot fold into a
    /// single final value (each reading the previous effect's result,
    /// exactly as sequential application would), and only that final
    /// value is written — one index update and one change-stream record
    /// per touched slot, however many effects piled onto it. The
    /// resolved writes, despawns, and spawns then commit through
    /// [`World::apply_batch`], so a durability tap sees the whole tick
    /// as one stream segment (one group-commit WAL frame).
    ///
    /// Returns the number of effects resolved. Combinator type errors
    /// surface during resolution, before anything is written; errors
    /// only detectable at the final write (unknown component, resolved
    /// value vs column type) abort [`World::apply_batch`] at the
    /// offending op with earlier slots already applied — callers treat
    /// any error as a failed tick either way.
    pub fn apply(mut self, world: &mut World) -> Result<usize, CoreError> {
        use gamedb_content::ValueType;
        // Canonical order: entity, component, then effect kind/payload.
        self.ops.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.order_key().cmp(&b.2.order_key()))
        });
        let mut batch = WriteBatch::new();
        let mut applied = 0usize;
        let mut i = 0;
        while i < self.ops.len() {
            // one run = every effect on one (entity, component) slot
            let (id, component) = (self.ops[i].0, self.ops[i].1.as_str());
            let j = i + self.ops[i..]
                .iter()
                .take_while(|(id2, c2, _)| *id2 == id && c2 == component)
                .count();
            if !world.is_live(id) {
                i = j;
                continue;
            }
            let is_pos = component == POS;
            // the overlay: starts at the world's value, each effect in
            // the run reads the previous effect's result
            let mut cur: Option<Value> = world.get(id, component);
            for (_, _, effect) in &self.ops[i..j] {
                match effect {
                    Effect::Set(v) => {
                        let expected = if is_pos {
                            Some(ValueType::Vec2)
                        } else {
                            world.component_type(component)
                        };
                        match expected {
                            Some(ty) if v.value_type() == ty => cur = Some(v.clone()),
                            Some(ty) => {
                                return Err(CoreError::TypeMismatch {
                                    component: component.to_string(),
                                    expected: ty,
                                    got: v.value_type(),
                                })
                            }
                            None => {
                                return Err(CoreError::UnknownComponent(component.to_string()))
                            }
                        }
                    }
                    Effect::Add(x) => {
                        if is_pos {
                            return Err(CoreError::TypeMismatch {
                                component: component.to_string(),
                                expected: ValueType::Vec2,
                                got: ValueType::Float,
                            });
                        }
                        match &cur {
                            Some(Value::Float(c)) => cur = Some(Value::Float(c + *x as f32)),
                            Some(Value::Int(c)) => cur = Some(Value::Int(c + *x as i64)),
                            // Adding to an absent numeric component
                            // treats it as its zero (designers expect
                            // counters to work without initialization).
                            None => match world.component_type(component) {
                                Some(ValueType::Float) => cur = Some(Value::Float(*x as f32)),
                                Some(ValueType::Int) => cur = Some(Value::Int(*x as i64)),
                                Some(other) => {
                                    return Err(CoreError::TypeMismatch {
                                        component: component.to_string(),
                                        expected: other,
                                        got: ValueType::Float,
                                    })
                                }
                                None => {
                                    return Err(CoreError::UnknownComponent(
                                        component.to_string(),
                                    ))
                                }
                            },
                            Some(other) => {
                                return Err(CoreError::TypeMismatch {
                                    component: component.to_string(),
                                    expected: other.value_type(),
                                    got: ValueType::Float,
                                })
                            }
                        }
                    }
                    Effect::Min(x) | Effect::Max(x) => {
                        let is_min = matches!(effect, Effect::Min(_));
                        let bound = |c: f64| if is_min { c.min(*x) } else { c.max(*x) };
                        match &cur {
                            Some(Value::Float(c)) => {
                                cur = Some(Value::Float(bound(*c as f64) as f32))
                            }
                            Some(Value::Int(c)) => cur = Some(Value::Int(bound(*c as f64) as i64)),
                            None => match world.component_type(component) {
                                Some(ValueType::Float) => cur = Some(Value::Float(*x as f32)),
                                Some(ValueType::Int) => cur = Some(Value::Int(*x as i64)),
                                Some(other) => {
                                    return Err(CoreError::TypeMismatch {
                                        component: component.to_string(),
                                        expected: other,
                                        got: ValueType::Float,
                                    })
                                }
                                None => {
                                    return Err(CoreError::UnknownComponent(
                                        component.to_string(),
                                    ))
                                }
                            },
                            Some(other) => {
                                return Err(CoreError::TypeMismatch {
                                    component: component.to_string(),
                                    expected: other.value_type(),
                                    got: ValueType::Float,
                                })
                            }
                        }
                    }
                    Effect::AddVec2(dx, dy) => {
                        if is_pos {
                            let p = match &cur {
                                Some(Value::Vec2(x, y)) => Vec2::new(*x, *y),
                                _ => Vec2::ZERO,
                            };
                            cur = Some(Value::Vec2(p.x + dx, p.y + dy));
                        } else {
                            let (cx, cy) = match &cur {
                                Some(Value::Vec2(x, y)) => (*x, *y),
                                None => (0.0, 0.0),
                                Some(other) => {
                                    return Err(CoreError::TypeMismatch {
                                        component: component.to_string(),
                                        expected: other.value_type(),
                                        got: ValueType::Vec2,
                                    })
                                }
                            };
                            cur = Some(Value::Vec2(cx + dx, cy + dy));
                        }
                    }
                }
                applied += 1;
            }
            match cur {
                Some(Value::Vec2(x, y)) if is_pos => batch.set_pos(id, Vec2::new(x, y)),
                Some(v) => batch.set(id, component, v),
                None => {}
            }
            i = j;
        }
        // Despawns: dedupe, deterministic order.
        self.despawns.sort_unstable();
        self.despawns.dedup();
        for id in self.despawns {
            batch.despawn(id);
        }
        // Spawns in buffer order (merge order is chunk-deterministic).
        for req in self.spawns {
            batch.spawn(req.components, req.pos);
        }
        world.apply_batch(batch)?;
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    fn world() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w
    }

    #[test]
    fn set_and_add() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 10.0).unwrap();

        let mut buf = EffectBuffer::new();
        buf.push(e, "hp", Effect::Add(5.0));
        buf.push(e, "hp", Effect::Add(-3.0));
        buf.push(e, "gold", Effect::Set(Value::Int(100)));
        let applied = buf.apply(&mut w).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(w.get_f32(e, "hp"), Some(12.0));
        assert_eq!(w.get_i64(e, "gold"), Some(100));
    }

    #[test]
    fn add_to_absent_component_starts_at_zero() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        let mut buf = EffectBuffer::new();
        buf.push(e, "gold", Effect::Add(7.0));
        buf.apply(&mut w).unwrap();
        assert_eq!(w.get_i64(e, "gold"), Some(7));
    }

    #[test]
    fn min_max_accumulate() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 50.0).unwrap();
        let mut buf = EffectBuffer::new();
        buf.push(e, "hp", Effect::Min(30.0));
        buf.push(e, "hp", Effect::Min(40.0));
        buf.apply(&mut w).unwrap();
        assert_eq!(w.get_f32(e, "hp"), Some(30.0));

        let mut buf = EffectBuffer::new();
        buf.push(e, "hp", Effect::Max(45.0));
        buf.apply(&mut w).unwrap();
        assert_eq!(w.get_f32(e, "hp"), Some(45.0));
    }

    #[test]
    fn addvec2_moves_entity_and_spatial_index() {
        let mut w = world();
        let e = w.spawn_at(Vec2::new(1.0, 1.0));
        let mut buf = EffectBuffer::new();
        buf.push(e, POS, Effect::AddVec2(2.0, 3.0));
        buf.push(e, POS, Effect::AddVec2(-1.0, 0.0));
        buf.apply(&mut w).unwrap();
        assert_eq!(w.pos(e), Some(Vec2::new(2.0, 4.0)));
        let mut out = vec![];
        w.within(Vec2::new(2.0, 4.0), 0.1, &mut out);
        assert_eq!(out, vec![e]);
    }

    #[test]
    fn effects_on_dead_entities_dropped() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        let mut buf = EffectBuffer::new();
        buf.push(e, "hp", Effect::Add(5.0));
        buf.despawn(e);
        // also effect after despawn in same tick on the dead id
        let applied = buf.apply(&mut w).unwrap();
        // hp effect applied first (entity alive during effect phase)
        assert_eq!(applied, 1);
        assert!(!w.is_live(e));
    }

    #[test]
    fn double_despawn_in_one_tick_is_fine() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        let mut buf = EffectBuffer::new();
        buf.despawn(e);
        buf.despawn(e);
        buf.apply(&mut w).unwrap();
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn spawn_requests_create_entities() {
        let mut w = world();
        let mut buf = EffectBuffer::new();
        buf.spawn(SpawnRequest {
            components: vec![("hp".into(), Value::Float(25.0))],
            pos: Vec2::new(5.0, 5.0),
        });
        buf.apply(&mut w).unwrap();
        assert_eq!(w.len(), 1);
        let e = w.entities().next().unwrap();
        assert_eq!(w.get_f32(e, "hp"), Some(25.0));
        assert_eq!(w.pos(e), Some(Vec2::new(5.0, 5.0)));
    }

    #[test]
    fn spawn_auto_defines_components() {
        let mut w = World::new();
        let mut buf = EffectBuffer::new();
        buf.spawn(SpawnRequest {
            components: vec![("mana".into(), Value::Float(10.0))],
            pos: Vec2::ZERO,
        });
        buf.apply(&mut w).unwrap();
        assert_eq!(w.component_type("mana"), Some(ValueType::Float));
    }

    #[test]
    fn merge_order_does_not_change_result() {
        // Build two buffers with commutative ops and apply in both merge
        // orders; worlds must agree exactly.
        let build_world = || {
            let mut w = world();
            let e = w.spawn_at(Vec2::ZERO);
            w.set_f32(e, "hp", 100.0).unwrap();
            (w, e)
        };
        let effects_a = |e: EntityId| {
            let mut b = EffectBuffer::new();
            b.push(e, "hp", Effect::Add(1.0));
            b.push(e, "hp", Effect::Min(90.0));
            b
        };
        let effects_b = |e: EntityId| {
            let mut b = EffectBuffer::new();
            b.push(e, "hp", Effect::Add(2.0));
            b.push(e, "hp", Effect::Max(10.0));
            b
        };

        let (mut w1, e1) = build_world();
        let mut m1 = effects_a(e1);
        m1.merge(effects_b(e1));
        m1.apply(&mut w1).unwrap();

        let (mut w2, e2) = build_world();
        let mut m2 = effects_b(e2);
        m2.merge(effects_a(e2));
        m2.apply(&mut w2).unwrap();

        assert_eq!(w1.get_f32(e1, "hp"), w2.get_f32(e2, "hp"));
    }

    #[test]
    fn effects_maintain_secondary_indexes() {
        use crate::index::IndexKind;
        use gamedb_content::CmpOp;
        let mut w = world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("gold", IndexKind::Hash).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 100.0).unwrap();
        w.set_f32(b, "hp", 100.0).unwrap();

        let mut buf = EffectBuffer::new();
        buf.push(a, "hp", Effect::Add(-80.0));
        buf.push(b, "gold", Effect::Set(Value::Int(7)));
        buf.despawn(b);
        buf.spawn(SpawnRequest {
            components: vec![("hp".into(), Value::Float(5.0))],
            pos: Vec2::ZERO,
        });
        buf.apply(&mut w).unwrap();

        // the index reflects every post-apply value and nothing else
        let mut out = vec![];
        w.index_probe("hp", CmpOp::Lt, &Value::Float(50.0), &mut out);
        let spawned = w.entities().find(|&e| e != a).unwrap();
        assert_eq!(out, vec![a, spawned]);
        out.clear();
        w.index_probe("gold", CmpOp::Eq, &Value::Int(7), &mut out);
        assert!(out.is_empty(), "despawned entity must leave the index");
    }

    #[test]
    fn add_to_pos_is_type_error() {
        let mut w = world();
        let e = w.spawn_at(Vec2::ZERO);
        let mut buf = EffectBuffer::new();
        buf.push(e, POS, Effect::Add(1.0));
        assert!(buf.apply(&mut w).is_err());
    }

    #[test]
    fn type_mismatch_reported() {
        let mut w = World::new();
        w.define_component("name", ValueType::Str).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set(e, "name", Value::Str("bob".into())).unwrap();
        let mut buf = EffectBuffer::new();
        buf.push(e, "name", Effect::Add(1.0));
        assert!(matches!(
            buf.apply(&mut w),
            Err(CoreError::TypeMismatch { .. })
        ));
    }
}
