//! # gamedb-core
//!
//! The game-state database at the center of this workspace: a columnar
//! entity store, a declarative query engine with aggregates, and the
//! state–effect tick execution model that makes script processing
//! parallelizable — the architecture the SIGMOD'09 tutorial's performance
//! section describes via its references \[11\] and \[13\].
//!
//! ## Contents
//!
//! * [`entity`] — generational entity ids ([`EntityId`]).
//! * [`column`](mod@column) — typed columnar component storage ([`Column`]).
//! * [`world`] — the [`World`]: rows = entities, columns = components,
//!   with a spatial index over the reserved `pos` column.
//! * [`query`] — declarative selection + aggregates ([`Query`],
//!   [`AggFn`]).
//! * [`index`](mod@index) — secondary attribute indexes
//!   ([`SecondaryIndex`], [`IndexKind`]), registered via
//!   [`World::create_index`].
//! * [`intern`](mod@intern) — interned component ids ([`ComponentId`]):
//!   the small-int column ids change records, WAL frames, and
//!   replication segments carry instead of cloned name strings.
//! * [`planner`] — table statistics and cost-based plan selection
//!   ([`TableStats`], [`plan`]) over scan / spatial / attribute-index
//!   access paths.
//! * [`change`](mod@change) — the unified change-capture pipeline: one
//!   ordered, tick-stamped mutation stream ([`Change`]) behind every
//!   write, with pluggable taps ([`World::attach_tap`]) feeding views,
//!   durability, and replication, and the batch commit surface
//!   ([`WriteBatch`], [`World::apply_batch`]).
//! * [`view`](mod@view) — continuous queries: standing views maintained
//!   incrementally by folding the change stream
//!   ([`World::register_view`], [`Changelog`]).
//! * [`dvm`](mod@dvm) — differential view maintenance: operator-tree
//!   views (filter / project / join / group-by) maintained by
//!   per-operator delta rules ([`ViewPlan`],
//!   [`World::register_view_plan`]).
//! * [`effect`] — deferred commutative writes ([`EffectBuffer`]).
//! * [`exec`] — sequential/parallel tick execution ([`TickExecutor`]).
//!
//! ```
//! use gamedb_core::{Query, TickExecutor, World, Effect, EffectBuffer};
//! use gamedb_content::{CmpOp, Value, ValueType};
//! use gamedb_spatial::Vec2;
//!
//! let mut world = World::new();
//! world.define_component("hp", ValueType::Float).unwrap();
//! let hero = world.spawn_at(Vec2::new(0.0, 0.0));
//! world.set_f32(hero, "hp", 100.0).unwrap();
//!
//! // a regeneration system, run for one tick
//! let regen = |id, _w: &World, buf: &mut EffectBuffer| {
//!     buf.push(id, "hp", Effect::Add(5.0));
//! };
//! TickExecutor::sequential().run_tick(&mut world, &[&regen]).unwrap();
//! assert_eq!(world.get_f32(hero, "hp"), Some(105.0));
//!
//! // a declarative query over the world database
//! let wounded = Query::select()
//!     .filter("hp", CmpOp::Lt, Value::Float(200.0))
//!     .run(&world);
//! assert_eq!(wounded, vec![hero]);
//! ```

pub mod change;
pub mod column;
pub mod dvm;
pub mod effect;
pub mod entity;
pub mod exec;
pub mod index;
pub mod intern;
pub(crate) mod metrics;
pub mod planner;
pub mod query;
pub mod view;
pub mod world;

pub use change::{
    BatchOp, Change, ChangeOp, DurabilityWatermark, TapId, TapStats, WatermarkSnapshot, WriteBatch,
};
pub use column::{Column, ColumnData};
pub use dvm::{GroupChangelog, GroupRow, JoinOn, PairChangelog, PlanNode, PlanOutput, ViewPlan};
pub use effect::{Effect, EffectBuffer, SpawnRequest};
pub use entity::{EntityAllocator, EntityId};
pub use exec::{System, TickExecutor, TickStats};
pub use index::{IndexKey, IndexKind, SecondaryIndex};
pub use intern::ComponentId;
pub use planner::{plan, Access, ColumnStats, Plan, TableStats};
pub use query::{aggregate, compare, AggFn, AggResult, Pred, Query};
pub use view::{Changelog, ViewId, ViewRegistry, ViewStats};
pub use world::{CoreError, World, WorldCatalog, WorldEntityView, POS, POS_ID};
