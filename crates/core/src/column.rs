//! Typed columnar component storage.
//!
//! The world is a column store: one [`Column`] per component, indexed by
//! entity slot. Columns are dense `Vec`s of the native representation
//! (`f32`, `i64`, …) plus a presence bitmap — the layout that makes
//! set-at-a-time script evaluation (experiment E1) and aggregate scans
//! cache-friendly, mirroring how analytical databases lay out attributes.

use gamedb_content::{Value, ValueType};

/// Native storage for one component type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    F32(Vec<f32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
    V2(Vec<[f32; 2]>),
}

impl ColumnData {
    fn new(ty: ValueType) -> ColumnData {
        match ty {
            ValueType::Float => ColumnData::F32(Vec::new()),
            ValueType::Int => ColumnData::I64(Vec::new()),
            ValueType::Bool => ColumnData::Bool(Vec::new()),
            ValueType::Str => ColumnData::Str(Vec::new()),
            ValueType::Vec2 => ColumnData::V2(Vec::new()),
        }
    }

    fn grow_to(&mut self, len: usize) {
        match self {
            ColumnData::F32(v) => v.resize(len, 0.0),
            ColumnData::I64(v) => v.resize(len, 0),
            ColumnData::Bool(v) => v.resize(len, false),
            ColumnData::Str(v) => v.resize(len, String::new()),
            ColumnData::V2(v) => v.resize(len, [0.0, 0.0]),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::F32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::V2(v) => v.len(),
        }
    }
}

/// One component column: typed data plus a presence bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    ty: ValueType,
    present: Vec<bool>,
    data: ColumnData,
    present_count: usize,
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(ty: ValueType) -> Self {
        Column {
            ty,
            present: Vec::new(),
            data: ColumnData::new(ty),
            present_count: 0,
        }
    }

    /// The component type.
    #[inline]
    pub fn ty(&self) -> ValueType {
        self.ty
    }

    /// Number of entities that currently have this component.
    #[inline]
    pub fn present_count(&self) -> usize {
        self.present_count
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.present.len() {
            self.present.resize(slot + 1, false);
            self.data.grow_to(slot + 1);
        }
        debug_assert_eq!(self.present.len(), self.data.len());
    }

    /// True when `slot` has a value.
    #[inline]
    pub fn has(&self, slot: usize) -> bool {
        self.present.get(slot).copied().unwrap_or(false)
    }

    /// Remove the value at `slot`; returns whether one was present.
    pub fn remove(&mut self, slot: usize) -> bool {
        if self.has(slot) {
            self.present[slot] = false;
            self.present_count -= 1;
            // reset storage so stale strings don't linger
            match &mut self.data {
                ColumnData::Str(v) => v[slot].clear(),
                ColumnData::F32(v) => v[slot] = 0.0,
                ColumnData::I64(v) => v[slot] = 0,
                ColumnData::Bool(v) => v[slot] = false,
                ColumnData::V2(v) => v[slot] = [0.0, 0.0],
            }
            true
        } else {
            false
        }
    }

    /// Set `slot` from a dynamic value; the value type must match.
    pub fn set(&mut self, slot: usize, value: &Value) -> Result<(), ValueType> {
        if value.value_type() != self.ty {
            return Err(self.ty);
        }
        self.ensure(slot);
        if !self.present[slot] {
            self.present[slot] = true;
            self.present_count += 1;
        }
        match (&mut self.data, value) {
            (ColumnData::F32(v), Value::Float(x)) => v[slot] = *x,
            (ColumnData::I64(v), Value::Int(x)) => v[slot] = *x,
            (ColumnData::Bool(v), Value::Bool(x)) => v[slot] = *x,
            (ColumnData::Str(v), Value::Str(x)) => v[slot] = x.clone(),
            (ColumnData::V2(v), Value::Vec2(x, y)) => v[slot] = [*x, *y],
            _ => unreachable!("type checked above"),
        }
        Ok(())
    }

    /// Dynamic value at `slot`, if present.
    pub fn get(&self, slot: usize) -> Option<Value> {
        if !self.has(slot) {
            return None;
        }
        Some(match &self.data {
            ColumnData::F32(v) => Value::Float(v[slot]),
            ColumnData::I64(v) => Value::Int(v[slot]),
            ColumnData::Bool(v) => Value::Bool(v[slot]),
            ColumnData::Str(v) => Value::Str(v[slot].clone()),
            ColumnData::V2(v) => Value::Vec2(v[slot][0], v[slot][1]),
        })
    }

    // ---- typed fast paths (hot loops avoid Value boxing) ----

    /// `f32` value at `slot` (None when absent or wrong type).
    #[inline]
    pub fn get_f32(&self, slot: usize) -> Option<f32> {
        match &self.data {
            ColumnData::F32(v) if self.has(slot) => Some(v[slot]),
            _ => None,
        }
    }

    /// Store an `f32`; returns false when the column is not float-typed.
    #[inline]
    pub fn set_f32(&mut self, slot: usize, value: f32) -> bool {
        if self.ty != ValueType::Float {
            return false;
        }
        self.ensure(slot);
        if !self.present[slot] {
            self.present[slot] = true;
            self.present_count += 1;
        }
        match &mut self.data {
            ColumnData::F32(v) => v[slot] = value,
            _ => unreachable!(),
        }
        true
    }

    /// `i64` value at `slot`.
    #[inline]
    pub fn get_i64(&self, slot: usize) -> Option<i64> {
        match &self.data {
            ColumnData::I64(v) if self.has(slot) => Some(v[slot]),
            _ => None,
        }
    }

    /// `bool` value at `slot`.
    #[inline]
    pub fn get_bool(&self, slot: usize) -> Option<bool> {
        match &self.data {
            ColumnData::Bool(v) if self.has(slot) => Some(v[slot]),
            _ => None,
        }
    }

    /// `&str` view at `slot` — the zero-allocation read hot dispatch
    /// loops (script-binding lookup, VM string compares) rely on.
    #[inline]
    pub fn get_str(&self, slot: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Str(v) if self.has(slot) => Some(v[slot].as_str()),
            _ => None,
        }
    }

    /// `[f32; 2]` value at `slot`.
    #[inline]
    pub fn get_v2(&self, slot: usize) -> Option<[f32; 2]> {
        match &self.data {
            ColumnData::V2(v) if self.has(slot) => Some(v[slot]),
            _ => None,
        }
    }

    /// Numeric view (floats and ints coerce to f64) at `slot`.
    #[inline]
    pub fn get_number(&self, slot: usize) -> Option<f64> {
        match &self.data {
            ColumnData::F32(v) if self.has(slot) => Some(v[slot] as f64),
            ColumnData::I64(v) if self.has(slot) => Some(v[slot] as f64),
            _ => None,
        }
    }

    /// Raw float slice for vectorized scans; `None` for non-float columns.
    /// Callers must consult [`Column::has`] for presence.
    pub fn f32_slice(&self) -> Option<&[f32]> {
        match &self.data {
            ColumnData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Presence bitmap (slot-indexed).
    pub fn presence(&self) -> &[bool] {
        &self.present
    }

    /// Iterate `(slot, value)` pairs of present entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Value)> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(move |(slot, _)| (slot, self.get(slot).expect("present implies value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_all_types() {
        for (ty, val) in [
            (ValueType::Float, Value::Float(2.5)),
            (ValueType::Int, Value::Int(-3)),
            (ValueType::Bool, Value::Bool(true)),
            (ValueType::Str, Value::Str("axe".into())),
            (ValueType::Vec2, Value::Vec2(1.0, 2.0)),
        ] {
            let mut c = Column::new(ty);
            assert_eq!(c.get(0), None);
            c.set(5, &val).unwrap();
            assert_eq!(c.get(5), Some(val));
            assert!(c.has(5));
            assert!(!c.has(4));
            assert_eq!(c.present_count(), 1);
        }
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(ValueType::Float);
        assert_eq!(c.set(0, &Value::Int(1)), Err(ValueType::Float));
        assert_eq!(c.present_count(), 0);
    }

    #[test]
    fn remove_clears_presence_and_value() {
        let mut c = Column::new(ValueType::Str);
        c.set(2, &Value::Str("sword".into())).unwrap();
        assert!(c.remove(2));
        assert!(!c.remove(2));
        assert_eq!(c.get(2), None);
        assert_eq!(c.present_count(), 0);
        // slot reuse sees fresh storage
        c.set(2, &Value::Str("bow".into())).unwrap();
        assert_eq!(c.get(2), Some(Value::Str("bow".into())));
    }

    #[test]
    fn fast_paths() {
        let mut c = Column::new(ValueType::Float);
        assert!(c.set_f32(3, 7.5));
        assert_eq!(c.get_f32(3), Some(7.5));
        assert_eq!(c.get_f32(2), None);
        assert_eq!(c.get_number(3), Some(7.5));
        assert!(!Column::new(ValueType::Int).clone().set_f32(0, 1.0));

        let mut i = Column::new(ValueType::Int);
        i.set(0, &Value::Int(9)).unwrap();
        assert_eq!(i.get_i64(0), Some(9));
        assert_eq!(i.get_number(0), Some(9.0));

        let mut b = Column::new(ValueType::Bool);
        b.set(1, &Value::Bool(true)).unwrap();
        assert_eq!(b.get_bool(1), Some(true));

        let mut v = Column::new(ValueType::Vec2);
        v.set(0, &Value::Vec2(3.0, 4.0)).unwrap();
        assert_eq!(v.get_v2(0), Some([3.0, 4.0]));
    }

    #[test]
    fn slice_access() {
        let mut c = Column::new(ValueType::Float);
        c.set_f32(0, 1.0);
        c.set_f32(2, 3.0);
        let s = c.f32_slice().unwrap();
        assert_eq!(s, &[1.0, 0.0, 3.0]);
        assert_eq!(c.presence(), &[true, false, true]);
        assert!(Column::new(ValueType::Int).f32_slice().is_none());
    }

    #[test]
    fn iter_present_only() {
        let mut c = Column::new(ValueType::Int);
        c.set(1, &Value::Int(10)).unwrap();
        c.set(4, &Value::Int(40)).unwrap();
        let pairs: Vec<(usize, Value)> = c.iter().collect();
        assert_eq!(pairs, vec![(1, Value::Int(10)), (4, Value::Int(40))]);
    }
}
