//! Differential view maintenance: operator-tree standing views.
//!
//! PR 2's standing views answer one shape of question — a single-table
//! filter query — incrementally. The paper's thesis covers far more:
//! "guild wealth leaderboard" is a group-by aggregate, "players near any
//! flagged mob" is a spatial join, "per-zone population" is a group-by
//! count. This module generalizes the view engine to a relational
//! **operator tree** ([`ViewPlan`]) maintained by per-operator delta
//! rules in the DBSP / Z-set style: every operator consumes its input's
//! delta batch — rows carried with ±1 multiplicity — and emits its own,
//! folded from the very same change-stream segments that feed the
//! single-table views.
//!
//! ## Operator taxonomy
//!
//! * [`PlanNode::Scan`] — the leaf: a standing [`Query`] over the world,
//!   optionally pinned to one entity (`only`, the "self" side of an
//!   aggro join).
//! * [`PlanNode::Filter`] / [`PlanNode::Project`] — entity-keyed row
//!   transforms. They are **fused into their scan at compile time**: a
//!   `Scan → Filter* → Project*` chain compiles to one [`Source`] whose
//!   membership test is the conjunction of every predicate and whose
//!   stored tuple carries exactly the columns downstream operators read.
//!   Fusion keeps the hot path one hash probe + one membership check per
//!   candidate instead of one allocation per operator per delta.
//! * [`PlanNode::Join`] — binary, over two source chains. Equi-joins
//!   ([`JoinOn::Eq`]) key both sides in the same coercion domain the
//!   secondary indexes use ([`crate::index::IndexKey`]), so `Int 3`
//!   joins `Float 3.0`. Spatial-radius joins ([`JoinOn::Within`]) pair
//!   rows within `radius` of each other via per-side uniform cell maps
//!   (cell edge = radius, 9-cell probe). Self-pairs (`l == r`) are
//!   excluded.
//! * [`PlanNode::GroupAggregate`] — group rows by an optional column and
//!   fold [`AggFn`] over each group. `count`/`sum`/`avg` maintain O(1)
//!   running state; `min`/`max` keep a per-group ordered multiset so a
//!   retraction of the current extreme **retracts-and-recomputes** from
//!   the next element instead of rescanning the base table (counted in
//!   `view.op_group.retract_recomputes`).
//!
//! ## Delta rules
//!
//! A source turns a change-stream segment into a net per-entity delta:
//! insert (`+row`), delete (`−row`, with the *remembered* old tuple — a
//! despawn never needs a row image), or update (`−old +new`). Joins
//! apply the bilinear rule `ΔJ = ΔL ⋈ R_old  +  L_new ⋈ ΔR`
//! sequentially — left deltas probe the pre-batch right state, right
//! deltas probe the post-batch left state — accumulating pair weights
//! that cancel to the net entered/exited sets. Group aggregates fold
//! each ±row into its group's running state and diff the rebuilt group
//! table. Membership itself is always re-evaluated against the
//! *post-batch* world (never trusted from the log), so duplicate or
//! stale deltas cannot corrupt a view — the same invariant the
//! single-table views rely on.
//!
//! ## Equivalence and determinism
//!
//! [`ViewPlan::evaluate`] builds the same state from a cold start — the
//! forced-recompute oracle every operator is held equal to (unit tests
//! here, `operator_views_track_scan_oracle_under_churn` in
//! `tests/prop_core.rs`, and the persist crash-point sweep). Outputs are
//! deterministically ordered: row views by entity id, pair views by
//! `(left, right)`, group views by group key. Incremental `sum`/`avg`
//! maintain a running `f64` — exact for integer-valued columns (the
//! leaderboard case), subject to the usual float re-association drift
//! otherwise; `min`/`max`/`count` are exact for every column type. NaN
//! aggregate inputs are skipped entirely (SQL NULL semantics, shared
//! with [`crate::query::aggregate`]), and a NaN join key joins nothing.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use gamedb_content::Value;
use gamedb_spatial::Vec2;

use crate::entity::EntityId;
use crate::index::{IndexKey, OrdF64};
use crate::intern::ComponentId;
use crate::metrics::CoreMetrics;
use crate::query::{AggFn, Pred, Query};
use crate::view::{Changelog, FoldCtx, ViewStats};
use crate::world::{CoreError, World};

/// Decode safety bound on operator-chain depth (catalog records are
/// parsed from disk; a corrupt length must not recurse unboundedly).
pub const MAX_PLAN_DEPTH: usize = 16;

/// Join condition of a [`PlanNode::Join`].
#[derive(Debug, Clone, PartialEq)]
pub enum JoinOn {
    /// Equi-join: `left.column == right.column` in the numeric-coercion
    /// domain of [`crate::query::compare`].
    Eq { left: String, right: String },
    /// Spatial-radius join: pair rows whose positions are within
    /// `radius` of each other.
    Within { radius: f32 },
}

/// One node of an operator tree. Trees are built leaf-up with the
/// combinators on [`PlanNode`] / [`ViewPlan`] and are plain data —
/// serializable into the durable catalog by the persist crate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Leaf: a standing query over the world, optionally pinned to a
    /// single entity (`only`) — the "self" side of an aggro join.
    Scan { query: Query, only: Option<EntityId> },
    /// Selection: keep rows passing `pred`.
    Filter { input: Box<PlanNode>, pred: Pred },
    /// Projection: narrow the visible columns to `columns`.
    Project { input: Box<PlanNode>, columns: Vec<String> },
    /// Binary join of two scan chains.
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        on: JoinOn,
    },
    /// Grouped aggregate over one scan chain. `group_by: None` is the
    /// single global group.
    GroupAggregate {
        input: Box<PlanNode>,
        group_by: Option<String>,
        agg: AggFn,
    },
}

impl PlanNode {
    /// Leaf over a standing query.
    pub fn scan(query: Query) -> PlanNode {
        PlanNode::Scan { query, only: None }
    }

    /// Leaf pinned to one entity: the row set is `{only}` intersected
    /// with the query's matches.
    pub fn scan_only(query: Query, only: EntityId) -> PlanNode {
        PlanNode::Scan {
            query,
            only: Some(only),
        }
    }

    /// Wrap in a filter.
    pub fn filtered(self, pred: Pred) -> PlanNode {
        PlanNode::Filter {
            input: Box::new(self),
            pred,
        }
    }

    /// Wrap in a projection.
    pub fn project(self, columns: Vec<String>) -> PlanNode {
        PlanNode::Project {
            input: Box::new(self),
            columns,
        }
    }
}

/// A complete operator tree, the unit the world registers, the catalog
/// persists, and recovery re-installs at its exact slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewPlan {
    /// Root operator. Public so the persist crate can encode the tree.
    pub root: PlanNode,
}

impl ViewPlan {
    /// Wrap a finished node tree.
    pub fn new(root: PlanNode) -> ViewPlan {
        ViewPlan { root }
    }

    /// Single-table plan equivalent to a standing [`Query`] view.
    pub fn scan(query: Query) -> ViewPlan {
        ViewPlan::new(PlanNode::scan(query))
    }

    /// Join of two scan chains.
    pub fn join(left: PlanNode, right: PlanNode, on: JoinOn) -> ViewPlan {
        ViewPlan::new(PlanNode::Join {
            left: Box::new(left),
            right: Box::new(right),
            on,
        })
    }

    /// Grouped aggregate: one output row per distinct value of `column`.
    pub fn group_by(input: PlanNode, column: impl Into<String>, agg: AggFn) -> ViewPlan {
        ViewPlan::new(PlanNode::GroupAggregate {
            input: Box::new(input),
            group_by: Some(column.into()),
            agg,
        })
    }

    /// Global aggregate: a single output row over every input row.
    pub fn aggregate(input: PlanNode, agg: AggFn) -> ViewPlan {
        ViewPlan::new(PlanNode::GroupAggregate {
            input: Box::new(input),
            group_by: None,
            agg,
        })
    }

    /// Structural validation without touching a world: operator nesting,
    /// projection/column visibility, aggregate support, depth bound.
    pub fn validate(&self) -> Result<(), CoreError> {
        compile(self).map(|_| ())
    }

    /// Forced recompute from a cold start — the equivalence oracle every
    /// incrementally maintained instance of this plan is held equal to.
    pub fn evaluate(&self, world: &World) -> Result<PlanOutput, CoreError> {
        let view = PlanView::new(self.clone(), world)?;
        Ok(match view.state {
            OpState::Rows(s) => PlanOutput::Rows(s.out),
            OpState::Join(s) => PlanOutput::Pairs(s.pairs),
            OpState::Group(s) => PlanOutput::Groups(s.out),
        })
    }
}

/// One output row of a group-aggregate view: the (normalized) group key
/// — `None` for the global group — and the aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    pub key: Option<Value>,
    pub value: f64,
}

/// Materialized output of [`ViewPlan::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutput {
    /// Entity rows, ascending by id.
    Rows(Vec<EntityId>),
    /// Join pairs, ascending by `(left, right)`.
    Pairs(Vec<(EntityId, EntityId)>),
    /// Group rows, ascending by group key.
    Groups(Vec<GroupRow>),
}

impl PlanOutput {
    /// Row output, if this plan materializes entity rows.
    pub fn as_rows(&self) -> Option<&[EntityId]> {
        match self {
            PlanOutput::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Pair output, if this plan is a join.
    pub fn as_pairs(&self) -> Option<&[(EntityId, EntityId)]> {
        match self {
            PlanOutput::Pairs(p) => Some(p),
            _ => None,
        }
    }

    /// Group output, if this plan is a grouped aggregate.
    pub fn as_groups(&self) -> Option<&[GroupRow]> {
        match self {
            PlanOutput::Groups(g) => Some(g),
            _ => None,
        }
    }
}

/// Membership changes a join view accumulated since its changelog was
/// last taken. Both vectors are sorted by `(left, right)` within each
/// refresh batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairChangelog {
    pub entered: Vec<(EntityId, EntityId)>,
    pub exited: Vec<(EntityId, EntityId)>,
}

impl PairChangelog {
    /// True when no pairs entered or exited.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.exited.is_empty()
    }
}

/// Group-level changes a group-aggregate view accumulated since its
/// changelog was last taken: groups that appeared, disappeared (with
/// their last value), or changed value (with the new value). Sorted by
/// group key within each refresh batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupChangelog {
    pub entered: Vec<GroupRow>,
    pub exited: Vec<GroupRow>,
    pub changed: Vec<GroupRow>,
}

impl GroupChangelog {
    /// True when no group appeared, disappeared, or changed value.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.exited.is_empty() && self.changed.is_empty()
    }
}

// ---------------------------------------------------------------------
// Compilation: plan → fused sources + operator kind
// ---------------------------------------------------------------------

/// A `Scan → Filter* → Project*` chain fused into one physical source:
/// membership is the conjunction of every predicate (scan + filters),
/// the stored tuple carries exactly the columns downstream consumers
/// read (`schema`), plus the position when a spatial join needs it.
#[derive(Debug, Clone)]
struct Source {
    query: Query,
    only: Option<EntityId>,
    schema: Vec<String>,
    needs_pos: bool,
}

/// Fuse the chain rooted at `node` down to its scan. `need` lists the
/// columns the consumer reads from each row; they must survive every
/// projection on the path, as must the column of any filter sitting
/// above that projection.
fn compile_source(node: &PlanNode, need: &[String], needs_pos: bool) -> Result<Source, CoreError> {
    let mut chain: Vec<&PlanNode> = Vec::new();
    let mut cur = node;
    loop {
        if chain.len() >= MAX_PLAN_DEPTH {
            return Err(CoreError::PlanInvalid("operator chain exceeds depth bound"));
        }
        match cur {
            PlanNode::Scan { .. } => break,
            PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => {
                chain.push(cur);
                cur = input;
            }
            PlanNode::Join { .. } | PlanNode::GroupAggregate { .. } => {
                return Err(CoreError::PlanInvalid(
                    "join and group-aggregate operators must be the plan root",
                ));
            }
        }
    }
    let (mut query, only) = match cur {
        PlanNode::Scan { query, only } => (query.clone(), *only),
        _ => unreachable!("loop breaks only on Scan"),
    };
    // Apply the chain in dataflow order (scan upward), tracking which
    // columns remain visible. `None` = every column.
    let mut visible: Option<BTreeSet<&str>> = None;
    for op in chain.iter().rev() {
        match op {
            PlanNode::Filter { pred, .. } => {
                if let Some(v) = &visible {
                    if !v.contains(pred.component.as_str()) {
                        return Err(CoreError::PlanInvalid(
                            "filter references a projected-away column",
                        ));
                    }
                }
                query = query.filter(pred.component.clone(), pred.op, pred.value.clone());
            }
            PlanNode::Project { columns, .. } => {
                let keep: BTreeSet<&str> = columns
                    .iter()
                    .map(|c| c.as_str())
                    .filter(|c| visible.as_ref().is_none_or(|v| v.contains(c)))
                    .collect();
                visible = Some(keep);
            }
            _ => unreachable!("chain holds only filters and projections"),
        }
    }
    if let Some(v) = &visible {
        for col in need {
            if !v.contains(col.as_str()) {
                return Err(CoreError::PlanInvalid(
                    "consumer column does not survive the projection",
                ));
            }
        }
    }
    let mut schema: Vec<String> = need.to_vec();
    schema.sort();
    schema.dedup();
    Ok(Source {
        query,
        only,
        schema,
        needs_pos,
    })
}

/// Compile a plan into its (empty) runtime state.
fn compile(plan: &ViewPlan) -> Result<OpState, CoreError> {
    match &plan.root {
        PlanNode::Join { left, right, on } => {
            let (l_src, r_src, on_c) = match on {
                JoinOn::Eq { left: lc, right: rc } => {
                    let l_src = compile_source(left, std::slice::from_ref(lc), false)?;
                    let r_src = compile_source(right, std::slice::from_ref(rc), false)?;
                    let l = l_src
                        .schema
                        .iter()
                        .position(|c| c == lc)
                        .expect("key column is in the schema it seeded");
                    let r = r_src
                        .schema
                        .iter()
                        .position(|c| c == rc)
                        .expect("key column is in the schema it seeded");
                    (l_src, r_src, JoinOnC::Eq { l, r })
                }
                JoinOn::Within { radius } => {
                    if !(radius.is_finite() && *radius > 0.0) {
                        return Err(CoreError::PlanInvalid(
                            "spatial join radius must be finite and positive",
                        ));
                    }
                    let l_src = compile_source(left, &[], true)?;
                    let r_src = compile_source(right, &[], true)?;
                    (l_src, r_src, JoinOnC::Within { radius: *radius })
                }
            };
            let mk_idx = || match on_c {
                JoinOnC::Eq { .. } => SideIndex::Keyed(HashMap::new()),
                JoinOnC::Within { radius } => SideIndex::Cells {
                    cell: radius,
                    map: HashMap::new(),
                },
            };
            Ok(OpState::Join(JoinState {
                l_idx: mk_idx(),
                r_idx: mk_idx(),
                left: SourceState::new(l_src),
                right: SourceState::new(r_src),
                on: on_c,
                pairs: Vec::new(),
                log: PairChangelog::default(),
            }))
        }
        PlanNode::GroupAggregate {
            input,
            group_by,
            agg,
        } => {
            let (kind, agg_col_name) = match agg {
                AggFn::Count => (AggKind::Count, None),
                AggFn::Sum(c) => (AggKind::Sum, Some(c.clone())),
                AggFn::Min(c) => (AggKind::Min, Some(c.clone())),
                AggFn::Max(c) => (AggKind::Max, Some(c.clone())),
                AggFn::Avg(c) => (AggKind::Avg, Some(c.clone())),
                AggFn::ArgMin(_) | AggFn::ArgMax(_) => {
                    return Err(CoreError::PlanInvalid(
                        "argmin/argmax aggregates are not supported in group-aggregate views",
                    ));
                }
            };
            let mut need: Vec<String> = Vec::new();
            if let Some(g) = group_by {
                need.push(g.clone());
            }
            if let Some(c) = &agg_col_name {
                need.push(c.clone());
            }
            let src = compile_source(input, &need, false)?;
            let key_col = group_by.as_ref().map(|g| {
                src.schema
                    .iter()
                    .position(|c| c == g)
                    .expect("group column is in the schema it seeded")
            });
            let agg_col = agg_col_name.map(|c| {
                src.schema
                    .iter()
                    .position(|s| *s == c)
                    .expect("aggregate column is in the schema it seeded")
            });
            Ok(OpState::Group(GroupState {
                source: SourceState::new(src),
                key_col,
                agg: kind,
                agg_col,
                groups: BTreeMap::new(),
                out: Vec::new(),
                out_keys: Vec::new(),
                log: GroupChangelog::default(),
                retracts: 0,
            }))
        }
        chain => {
            let src = compile_source(chain, &[], false)?;
            Ok(OpState::Rows(RowsState {
                source: SourceState::new(src),
                out: Vec::new(),
                log: Changelog::default(),
            }))
        }
    }
}

// ---------------------------------------------------------------------
// Runtime: sources and their Z-set deltas
// ---------------------------------------------------------------------

/// One stored row: the schema columns (by position) plus the position
/// when a spatial join reads it. The remembered tuple is what lets a
/// retraction proceed without a row image — a despawned entity's old
/// join key / group value is read from here, never from the log.
#[derive(Debug, Clone, PartialEq)]
struct Tuple {
    cols: Vec<Option<Value>>,
    pos: Option<Vec2>,
}

/// Net ±1 delta for one entity in one batch: `(old, new)` with at least
/// one side present; both present means an in-place update (`−old +new`).
#[derive(Debug)]
struct RowDelta {
    id: EntityId,
    old: Option<Tuple>,
    new: Option<Tuple>,
}

/// Per-batch fold result of one source.
struct FoldOut {
    /// Candidate rows inspected (the scan stage's input size).
    cands: usize,
    /// Candidates passing the fused membership test.
    passed: usize,
    /// Net row deltas, ascending by entity id.
    deltas: Vec<RowDelta>,
}

/// A fused source with its materialized row tuples.
#[derive(Debug, Clone)]
struct SourceState {
    src: Source,
    rows: HashMap<EntityId, Tuple>,
}

impl SourceState {
    fn new(src: Source) -> SourceState {
        SourceState {
            src,
            rows: HashMap::new(),
        }
    }

    fn member(&self, world: &World, id: EntityId) -> bool {
        (self.src.only.is_none() || self.src.only == Some(id))
            && self.src.query.matches(world, id)
    }

    fn read_tuple(&self, world: &World, id: EntityId) -> Tuple {
        Tuple {
            cols: self.src.schema.iter().map(|c| world.get(id, c)).collect(),
            pos: if self.src.needs_pos {
                world.pos(id)
            } else {
                None
            },
        }
    }

    /// Interned ids of the components whose deltas can change this
    /// source's membership *or* stored tuples (sorted, deduped).
    fn tracked_ids(&self, world: &World) -> Vec<ComponentId> {
        let mut ids: Vec<ComponentId> = self
            .src
            .query
            .predicates()
            .iter()
            .filter_map(|p| world.component_id(&p.component))
            .collect();
        ids.extend(self.src.schema.iter().filter_map(|c| world.component_id(c)));
        if self.src.query.spatial().is_some() || self.src.needs_pos {
            ids.push(crate::world::POS_ID);
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Fold one change-stream segment into the source: candidates are
    /// the structural deltas plus component deltas on tracked columns;
    /// each candidate's membership and tuple are re-read from the
    /// post-batch world and diffed against the stored row.
    fn fold(&mut self, world: &World, ctx: &FoldCtx<'_>) -> FoldOut {
        let tracked = self.tracked_ids(world);
        let mut cands: Vec<EntityId> = ctx.structural.to_vec();
        let mut i = 0;
        while i < ctx.comp_deltas.len() {
            let comp = ctx.comp_deltas[i].0;
            let start = i;
            while i < ctx.comp_deltas.len() && ctx.comp_deltas[i].0 == comp {
                i += 1;
            }
            if tracked.binary_search(&comp).is_ok() {
                cands.extend(ctx.comp_deltas[start..i].iter().map(|&(_, e)| e));
            }
        }
        if let Some(o) = self.src.only {
            cands.retain(|&c| c == o);
        }
        cands.sort_unstable();
        cands.dedup();

        let mut passed = 0usize;
        let mut deltas = Vec::new();
        for &c in &cands {
            let now = self.member(world, c);
            if now {
                passed += 1;
            }
            match (self.rows.get(&c).cloned(), now) {
                (None, false) => {}
                (None, true) => {
                    let t = self.read_tuple(world, c);
                    self.rows.insert(c, t.clone());
                    deltas.push(RowDelta {
                        id: c,
                        old: None,
                        new: Some(t),
                    });
                }
                (Some(old), false) => {
                    self.rows.remove(&c);
                    deltas.push(RowDelta {
                        id: c,
                        old: Some(old),
                        new: None,
                    });
                }
                (Some(old), true) => {
                    let t = self.read_tuple(world, c);
                    if old != t {
                        self.rows.insert(c, t.clone());
                        deltas.push(RowDelta {
                            id: c,
                            old: Some(old),
                            new: Some(t),
                        });
                    }
                }
            }
        }
        FoldOut {
            cands: cands.len(),
            passed,
            deltas,
        }
    }

    /// Seed the row set from the live world (registration / recovery) —
    /// initial rows are state, not events.
    fn init(&mut self, world: &World) {
        if let Some(o) = self.src.only {
            if self.member(world, o) {
                let t = self.read_tuple(world, o);
                self.rows.insert(o, t);
            }
            return;
        }
        for id in world.entities() {
            if self.member(world, id) {
                let t = self.read_tuple(world, id);
                self.rows.insert(id, t);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rows operator (fused scan/filter/project chain at the root)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RowsState {
    source: SourceState,
    /// Materialized output, ascending by id.
    out: Vec<EntityId>,
    log: Changelog,
}

impl RowsState {
    /// Returns `(rows_in, rows_out)` for the operator counters.
    fn refresh(&mut self, world: &World, ctx: &FoldCtx<'_>) -> (usize, usize, usize, usize) {
        let fold = self.source.fold(world, ctx);
        let mut entered = Vec::new();
        let mut exited = Vec::new();
        for d in &fold.deltas {
            match (&d.old, &d.new) {
                (None, Some(_)) => entered.push(d.id),
                (Some(_), None) => exited.push(d.id),
                _ => {}
            }
        }
        if !entered.is_empty() || !exited.is_empty() {
            self.out = crate::view::apply_diff(&self.out, &entered, &exited);
        }
        // `changed` matches the single-table view contract: touched rows
        // that are (still) members and did not just enter.
        let changed: Vec<EntityId> = ctx
            .touched
            .iter()
            .copied()
            .filter(|t| self.out.binary_search(t).is_ok() && entered.binary_search(t).is_err())
            .collect();
        let emitted = fold.deltas.len();
        self.log.absorb_batch(entered, exited, changed, false);
        (fold.cands, fold.passed, emitted, emitted)
    }
}

// ---------------------------------------------------------------------
// Join operator
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum JoinOnC {
    /// Key column's position within each side's schema.
    Eq { l: usize, r: usize },
    Within { radius: f32 },
}

/// Per-side probe structure: key postings for equi-joins, a uniform
/// cell map (cell edge = radius) for spatial joins. Posting lists stay
/// sorted by id so probes return deterministic candidates.
#[derive(Debug, Clone)]
enum SideIndex {
    Keyed(HashMap<IndexKey, Vec<EntityId>>),
    Cells {
        cell: f32,
        map: HashMap<(i64, i64), Vec<EntityId>>,
    },
}

/// Join key of a value, in the same coercion domain as
/// [`crate::index::IndexKey::encode`]: ints and floats share numeric
/// keys, NaN (which `compare` rejects under every operator) has none.
fn value_key(v: &Value) -> Option<IndexKey> {
    match v {
        Value::Float(_) | Value::Int(_) => {
            v.as_number().and_then(OrdF64::new).map(IndexKey::Num)
        }
        Value::Bool(b) => Some(IndexKey::Bool(*b)),
        Value::Str(s) => Some(IndexKey::Str(s.clone())),
        Value::Vec2(x, y) if !x.is_nan() && !y.is_nan() => {
            let norm = |v: f32| if v == 0.0 { 0.0f32 } else { v };
            Some(IndexKey::Vec2([norm(*x).to_bits(), norm(*y).to_bits()]))
        }
        Value::Vec2(..) => None,
    }
}

fn eq_key(t: &Tuple, col: usize) -> Option<IndexKey> {
    t.cols[col].as_ref().and_then(value_key)
}

fn cell_of(p: Vec2, cell: f32) -> (i64, i64) {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

fn posting_insert(list: &mut Vec<EntityId>, id: EntityId) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

fn posting_remove(list: &mut Vec<EntityId>, id: EntityId) -> bool {
    match list.binary_search(&id) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl SideIndex {
    /// Fold one row delta into the index (`key_col` is this side's key
    /// position; unused for cell maps).
    fn apply(&mut self, key_col: usize, d: &RowDelta) {
        match self {
            SideIndex::Keyed(map) => {
                if let Some(k) = d.old.as_ref().and_then(|t| eq_key(t, key_col)) {
                    if let Some(list) = map.get_mut(&k) {
                        posting_remove(list, d.id);
                        if list.is_empty() {
                            map.remove(&k);
                        }
                    }
                }
                if let Some(k) = d.new.as_ref().and_then(|t| eq_key(t, key_col)) {
                    posting_insert(map.entry(k).or_default(), d.id);
                }
            }
            SideIndex::Cells { cell, map } => {
                if let Some(p) = d.old.as_ref().and_then(|t| t.pos) {
                    let c = cell_of(p, *cell);
                    if let Some(list) = map.get_mut(&c) {
                        posting_remove(list, d.id);
                        if list.is_empty() {
                            map.remove(&c);
                        }
                    }
                }
                if let Some(p) = d.new.as_ref().and_then(|t| t.pos) {
                    posting_insert(map.entry(cell_of(p, *cell)).or_default(), d.id);
                }
            }
        }
    }

    fn seed(&mut self, key_col: usize, rows: &HashMap<EntityId, Tuple>) {
        match self {
            SideIndex::Keyed(map) => {
                for (&id, t) in rows {
                    if let Some(k) = eq_key(t, key_col) {
                        posting_insert(map.entry(k).or_default(), id);
                    }
                }
            }
            SideIndex::Cells { cell, map } => {
                for (&id, t) in rows {
                    if let Some(p) = t.pos {
                        posting_insert(map.entry(cell_of(p, *cell)).or_default(), id);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct JoinState {
    left: SourceState,
    right: SourceState,
    on: JoinOnC,
    l_idx: SideIndex,
    r_idx: SideIndex,
    /// Materialized pairs, ascending by `(left, right)`. Self-pairs are
    /// excluded.
    pairs: Vec<(EntityId, EntityId)>,
    log: PairChangelog,
}

impl JoinState {
    /// Rows of the *other* side matching tuple `t` of the probing side.
    /// `probing_left` says which side `t` belongs to; the probe runs
    /// against `idx` / `other_rows` of the opposite side. Output ids
    /// ascend (posting lists are sorted; cell probes re-sort).
    fn probe(
        on: JoinOnC,
        probing_left: bool,
        idx: &SideIndex,
        other_rows: &HashMap<EntityId, Tuple>,
        t: &Tuple,
    ) -> Vec<EntityId> {
        match (on, idx) {
            (JoinOnC::Eq { l, r }, SideIndex::Keyed(map)) => {
                let col = if probing_left { l } else { r };
                match eq_key(t, col) {
                    Some(k) => map.get(&k).cloned().unwrap_or_default(),
                    None => Vec::new(),
                }
            }
            (JoinOnC::Within { radius }, SideIndex::Cells { cell, map }) => {
                let Some(p) = t.pos else { return Vec::new() };
                let (cx, cy) = cell_of(p, *cell);
                let mut out = Vec::new();
                for dx in -1..=1i64 {
                    for dy in -1..=1i64 {
                        if let Some(ids) = map.get(&(cx + dx, cy + dy)) {
                            for &id in ids {
                                let close = other_rows
                                    .get(&id)
                                    .and_then(|o| o.pos)
                                    .is_some_and(|q| q.dist2(p) <= radius * radius);
                                if close {
                                    out.push(id);
                                }
                            }
                        }
                    }
                }
                out.sort_unstable();
                out
            }
            _ => unreachable!("index kind always matches join kind"),
        }
    }

    fn key_cols(&self) -> (usize, usize) {
        match self.on {
            JoinOnC::Eq { l, r } => (l, r),
            JoinOnC::Within { .. } => (0, 0),
        }
    }

    /// Bilinear delta rule, applied sequentially: left deltas probe the
    /// pre-batch right state, right deltas probe the post-batch left
    /// state; pair weights accumulate in ±1 steps and cancel to the net
    /// entered/exited sets. Returns `(rows_in, rows_out)`.
    fn refresh(&mut self, world: &World, ctx: &FoldCtx<'_>) -> (usize, usize) {
        let (l_col, r_col) = self.key_cols();
        // Deterministic iteration order for the weight map: pairs ascend.
        let mut weights: BTreeMap<(EntityId, EntityId), i64> = BTreeMap::new();

        // ΔL ⋈ R_old — the right source has not folded yet.
        let l_fold = self.left.fold(world, ctx);
        for d in &l_fold.deltas {
            if let Some(o) = &d.old {
                for r in Self::probe(self.on, true, &self.r_idx, &self.right.rows, o) {
                    *weights.entry((d.id, r)).or_default() -= 1;
                }
            }
            if let Some(n) = &d.new {
                for r in Self::probe(self.on, true, &self.r_idx, &self.right.rows, n) {
                    *weights.entry((d.id, r)).or_default() += 1;
                }
            }
            self.l_idx.apply(l_col, d);
        }

        // L_new ⋈ ΔR — the left side now reflects this batch.
        let r_fold = self.right.fold(world, ctx);
        for d in &r_fold.deltas {
            if let Some(o) = &d.old {
                for l in Self::probe(self.on, false, &self.l_idx, &self.left.rows, o) {
                    *weights.entry((l, d.id)).or_default() -= 1;
                }
            }
            if let Some(n) = &d.new {
                for l in Self::probe(self.on, false, &self.l_idx, &self.left.rows, n) {
                    *weights.entry((l, d.id)).or_default() += 1;
                }
            }
            self.r_idx.apply(r_col, d);
        }

        let mut entered = Vec::new();
        let mut exited = Vec::new();
        for ((l, r), w) in weights {
            if l == r {
                continue;
            }
            match w.cmp(&0) {
                std::cmp::Ordering::Greater => {
                    if let Err(pos) = self.pairs.binary_search(&(l, r)) {
                        self.pairs.insert(pos, (l, r));
                        entered.push((l, r));
                    }
                }
                std::cmp::Ordering::Less => {
                    if let Ok(pos) = self.pairs.binary_search(&(l, r)) {
                        self.pairs.remove(pos);
                        exited.push((l, r));
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        let rows_out = entered.len() + exited.len();
        self.log.entered.extend(entered);
        self.log.exited.extend(exited);
        (l_fold.deltas.len() + r_fold.deltas.len(), rows_out)
    }

    /// Cold-start materialization (registration / recovery).
    fn init(&mut self, world: &World) {
        let (l_col, r_col) = self.key_cols();
        self.left.init(world);
        self.right.init(world);
        self.l_idx.seed(l_col, &self.left.rows);
        self.r_idx.seed(r_col, &self.right.rows);
        let mut pairs = Vec::new();
        for (&l, t) in &self.left.rows {
            for r in Self::probe(self.on, true, &self.r_idx, &self.right.rows, t) {
                if l != r {
                    pairs.push((l, r));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        self.pairs = pairs;
    }
}

// ---------------------------------------------------------------------
// Group-aggregate operator
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Running state of one group. `rows` counts member rows (Count's
/// answer); `vals` holds the non-NaN aggregate values as an ordered
/// multiset keyed `(value, entity)` — min/max read its ends, avg divides
/// `sum` by its length (NaN inputs are skipped, SQL NULL style).
#[derive(Debug, Clone, Default)]
struct GroupAgg {
    rows: usize,
    sum: f64,
    vals: BTreeSet<(OrdF64, EntityId)>,
}

impl GroupAgg {
    fn value(&self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Count => self.rows as f64,
            AggKind::Sum => self.sum,
            AggKind::Min => self
                .vals
                .iter()
                .next()
                .map(|(v, _)| v.get())
                .unwrap_or(0.0),
            AggKind::Max => self
                .vals
                .iter()
                .next_back()
                .map(|(v, _)| v.get())
                .unwrap_or(0.0),
            AggKind::Avg => {
                if self.vals.is_empty() {
                    0.0
                } else {
                    self.sum / self.vals.len() as f64
                }
            }
        }
    }
}

/// Normalized group-key value for output rows: derived from the
/// coercion-domain key so `Int 3` and `Float 3.0` — one group — render
/// one deterministic representative.
fn key_repr(k: &IndexKey) -> Value {
    match k {
        IndexKey::Num(n) => {
            let f = n.get();
            if f.fract() == 0.0 && f.abs() < 9.0e15 {
                Value::Int(f as i64)
            } else {
                Value::Float(f as f32)
            }
        }
        IndexKey::Bool(b) => Value::Bool(*b),
        IndexKey::Str(s) => Value::Str(s.clone()),
        IndexKey::Vec2([a, b]) => Value::Vec2(f32::from_bits(*a), f32::from_bits(*b)),
    }
}

#[derive(Debug, Clone)]
struct GroupState {
    source: SourceState,
    /// Schema position of the group column (`None` = global group).
    key_col: Option<usize>,
    agg: AggKind,
    /// Schema position of the aggregated column (`None` for Count).
    agg_col: Option<usize>,
    groups: BTreeMap<Option<IndexKey>, GroupAgg>,
    /// Materialized output, ascending by group key; `out_keys` is the
    /// parallel key list the changelog diff merges on.
    out: Vec<GroupRow>,
    out_keys: Vec<Option<IndexKey>>,
    log: GroupChangelog,
    /// Min/max retractions of the current extreme — the "recompute from
    /// the ordered multiset" events the metrics surface.
    retracts: u64,
}

impl GroupState {
    /// Group key of a tuple. `None` on the outside means "no group":
    /// rows missing the group column (or carrying a NaN key, which
    /// `compare` can never select) belong to no group, matching the
    /// scan-side rule that a missing component fails every predicate.
    fn group_key(&self, t: &Tuple) -> Option<Option<IndexKey>> {
        match self.key_col {
            None => Some(None),
            Some(c) => t.cols[c].as_ref().and_then(value_key).map(Some),
        }
    }

    fn agg_val(&self, t: &Tuple) -> Option<(OrdF64, f64)> {
        let c = self.agg_col?;
        let v = t.cols[c].as_ref().and_then(|v| v.as_number())?;
        OrdF64::new(v).map(|o| (o, v))
    }

    fn insert(&mut self, id: EntityId, t: &Tuple) {
        let Some(key) = self.group_key(t) else { return };
        let val = self.agg_val(t);
        let g = self.groups.entry(key).or_default();
        g.rows += 1;
        if let Some((o, v)) = val {
            g.sum += v;
            g.vals.insert((o, id));
        }
    }

    fn retract(&mut self, id: EntityId, t: &Tuple) {
        let Some(key) = self.group_key(t) else { return };
        let val = self.agg_val(t);
        let Some(g) = self.groups.get_mut(&key) else {
            return;
        };
        g.rows = g.rows.saturating_sub(1);
        if let Some((o, v)) = val {
            let entry = (o, id);
            let was_extreme = match self.agg {
                AggKind::Min => g.vals.iter().next() == Some(&entry),
                AggKind::Max => g.vals.iter().next_back() == Some(&entry),
                _ => false,
            };
            if g.vals.remove(&entry) {
                g.sum -= v;
                if was_extreme {
                    // The new extreme is the multiset's next element —
                    // an O(log n) recompute, never a base-table rescan.
                    self.retracts += 1;
                }
            }
        }
        if g.rows == 0 {
            self.groups.remove(&key);
        }
    }

    /// Rebuild the materialized output and, when `log_diff`, absorb the
    /// old-vs-new diff into the changelog.
    fn rebuild(&mut self, log_diff: bool) -> usize {
        let mut new_out = Vec::with_capacity(self.groups.len());
        let mut new_keys = Vec::with_capacity(self.groups.len());
        for (k, g) in &self.groups {
            new_keys.push(k.clone());
            new_out.push(GroupRow {
                key: k.as_ref().map(key_repr),
                value: g.value(self.agg),
            });
        }
        let mut changes = 0usize;
        if log_diff {
            let (mut i, mut j) = (0usize, 0usize);
            while i < self.out_keys.len() || j < new_keys.len() {
                match (self.out_keys.get(i), new_keys.get(j)) {
                    (Some(a), Some(b)) if a == b => {
                        if self.out[i].value != new_out[j].value {
                            self.log.changed.push(new_out[j].clone());
                            changes += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(a), Some(b)) if a < b => {
                        self.log.exited.push(self.out[i].clone());
                        changes += 1;
                        i += 1;
                    }
                    (Some(_), Some(_)) => {
                        self.log.entered.push(new_out[j].clone());
                        changes += 1;
                        j += 1;
                    }
                    (Some(_), None) => {
                        self.log.exited.push(self.out[i].clone());
                        changes += 1;
                        i += 1;
                    }
                    (None, Some(_)) => {
                        self.log.entered.push(new_out[j].clone());
                        changes += 1;
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
        }
        self.out = new_out;
        self.out_keys = new_keys;
        changes
    }

    /// Returns `(rows_in, rows_out)`.
    fn refresh(&mut self, world: &World, ctx: &FoldCtx<'_>) -> (usize, usize) {
        let fold = self.source.fold(world, ctx);
        if fold.deltas.is_empty() {
            return (0, 0);
        }
        for d in &fold.deltas {
            if let Some(o) = &d.old {
                self.retract(d.id, o);
            }
            if let Some(n) = &d.new {
                self.insert(d.id, n);
            }
        }
        let changes = self.rebuild(true);
        (fold.deltas.len(), changes)
    }

    fn init(&mut self, world: &World) {
        self.source.init(world);
        let seed: Vec<(EntityId, Tuple)> = self
            .source
            .rows
            .iter()
            .map(|(&id, t)| (id, t.clone()))
            .collect();
        for (id, t) in seed {
            self.insert(id, &t);
        }
        self.retracts = 0;
        self.rebuild(false);
    }
}

// ---------------------------------------------------------------------
// The registered view
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum OpState {
    Rows(RowsState),
    Join(JoinState),
    Group(GroupState),
}

/// One registered operator-tree view: the plan (what the catalog
/// persists), the operator state, and the shared maintenance counters.
#[derive(Debug, Clone)]
pub(crate) struct PlanView {
    plan: ViewPlan,
    state: OpState,
    stats: ViewStats,
}

impl PlanView {
    /// Compile, validate, and materialize a plan against the current
    /// world. Initial rows are state, not changelog events.
    pub(crate) fn new(plan: ViewPlan, world: &World) -> Result<PlanView, CoreError> {
        let mut state = compile(&plan)?;
        match &mut state {
            OpState::Rows(s) => {
                s.source.init(world);
                let mut out: Vec<EntityId> = s.source.rows.keys().copied().collect();
                out.sort_unstable();
                s.out = out;
            }
            OpState::Join(s) => s.init(world),
            OpState::Group(s) => s.init(world),
        }
        Ok(PlanView {
            plan,
            state,
            stats: ViewStats::default(),
        })
    }

    pub(crate) fn plan(&self) -> &ViewPlan {
        &self.plan
    }

    pub(crate) fn stats(&self) -> ViewStats {
        self.stats
    }

    /// Fold one change-stream segment into the operator tree.
    pub(crate) fn refresh(
        &mut self,
        world: &World,
        ctx: &FoldCtx<'_>,
        slot: usize,
        metrics: Option<&CoreMetrics>,
    ) {
        self.stats.refreshes += 1;
        self.stats.deltas_seen += ctx.batch_len as u64;
        let rows_out;
        match &mut self.state {
            OpState::Rows(s) => {
                let (cands, passed, emitted, out) = s.refresh(world, ctx);
                rows_out = out;
                if let Some(m) = metrics {
                    m.op_scan.note(cands, emitted);
                    if !s.source.src.query.predicates().is_empty() {
                        m.op_filter.note(cands, passed);
                    }
                }
            }
            OpState::Join(s) => {
                let (rows_in, out) = s.refresh(world, ctx);
                rows_out = out;
                if let Some(m) = metrics {
                    m.op_scan.note(rows_in, rows_in);
                    m.op_join.note(rows_in, out);
                }
            }
            OpState::Group(s) => {
                let retracts_before = s.retracts;
                let (rows_in, out) = s.refresh(world, ctx);
                rows_out = out;
                if let Some(m) = metrics {
                    m.op_scan.note(rows_in, rows_in);
                    m.op_group.note(rows_in, out);
                    m.op_group_retracts.add(s.retracts - retracts_before);
                }
            }
        }
        self.stats.delta_rows += rows_out as u64;
        if let Some(m) = metrics {
            m.view_refreshes.inc();
            m.view_incremental.inc();
            m.view_deltas.add(ctx.batch_len as u64);
            let per_slot = m.view_slot(slot);
            per_slot.refreshes.inc();
            per_slot.delta_rows.add(rows_out as u64);
        }
    }

    /// Entity rows, for plans whose root is a scan chain.
    pub(crate) fn rows(&self) -> Option<&[EntityId]> {
        match &self.state {
            OpState::Rows(s) => Some(&s.out),
            _ => None,
        }
    }

    pub(crate) fn contains_row(&self, e: EntityId) -> bool {
        matches!(&self.state, OpState::Rows(s) if s.out.binary_search(&e).is_ok())
    }

    /// Join pairs, for join plans.
    pub(crate) fn pairs(&self) -> Option<&[(EntityId, EntityId)]> {
        match &self.state {
            OpState::Join(s) => Some(&s.pairs),
            _ => None,
        }
    }

    /// Group rows, for group-aggregate plans.
    pub(crate) fn groups(&self) -> Option<&[GroupRow]> {
        match &self.state {
            OpState::Group(s) => Some(&s.out),
            _ => None,
        }
    }

    /// Retract-and-recompute count (min/max extreme retractions).
    pub(crate) fn retract_recomputes(&self) -> u64 {
        match &self.state {
            OpState::Group(s) => s.retracts,
            _ => 0,
        }
    }

    pub(crate) fn rows_log(&self) -> Option<&Changelog> {
        match &self.state {
            OpState::Rows(s) => Some(&s.log),
            _ => None,
        }
    }

    pub(crate) fn take_rows_log(&mut self) -> Option<Changelog> {
        match &mut self.state {
            OpState::Rows(s) => Some(std::mem::take(&mut s.log)),
            _ => None,
        }
    }

    pub(crate) fn pair_log(&self) -> Option<&PairChangelog> {
        match &self.state {
            OpState::Join(s) => Some(&s.log),
            _ => None,
        }
    }

    pub(crate) fn take_pair_log(&mut self) -> Option<PairChangelog> {
        match &mut self.state {
            OpState::Join(s) => Some(std::mem::take(&mut s.log)),
            _ => None,
        }
    }

    pub(crate) fn group_log(&self) -> Option<&GroupChangelog> {
        match &self.state {
            OpState::Group(s) => Some(&s.log),
            _ => None,
        }
    }

    pub(crate) fn take_group_log(&mut self) -> Option<GroupChangelog> {
        match &mut self.state {
            OpState::Group(s) => Some(std::mem::take(&mut s.log)),
            _ => None,
        }
    }

    /// Drop accumulated changelogs (recovery re-anchors subscribers).
    pub(crate) fn clear_logs(&mut self) {
        match &mut self.state {
            OpState::Rows(s) => s.log = Changelog::default(),
            OpState::Join(s) => s.log = PairChangelog::default(),
            OpState::Group(s) => s.log = GroupChangelog::default(),
        }
    }

    /// The incremental output as a [`PlanOutput`] — what the oracle
    /// comparison against [`ViewPlan::evaluate`] consumes.
    pub(crate) fn output(&self) -> PlanOutput {
        match &self.state {
            OpState::Rows(s) => PlanOutput::Rows(s.out.clone()),
            OpState::Join(s) => PlanOutput::Pairs(s.pairs.clone()),
            OpState::Group(s) => PlanOutput::Groups(s.out.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewId;
    use gamedb_content::{CmpOp, ValueType};

    fn world() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w
    }

    /// The incremental state must equal a forced recompute of the same
    /// plan from a cold start — the module's central invariant.
    fn assert_oracle(w: &World, v: ViewId) {
        let plan = w.view_plan(v).unwrap().clone();
        assert_eq!(w.view_output(v), plan.evaluate(w).unwrap(), "maintained ≠ recomputed");
    }

    fn team(w: &mut World, e: EntityId, t: &str) {
        w.set(e, "team", Value::Str(t.into())).unwrap();
    }

    #[test]
    fn scan_plan_view_tracks_rows_and_changelog() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0));
        let v = w.register_view_plan(ViewPlan::scan(q.clone())).unwrap();
        assert_eq!(w.view_rows(v), &[a]);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(b, "hp", 20.0).unwrap();
        w.set_f32(a, "hp", 90.0).unwrap();
        w.refresh_views();
        assert_eq!(w.view_rows(v), &[b]);
        assert_eq!(w.view_rows(v), q.run(&w));
        let log = w.take_view_changelog(v);
        assert_eq!(log.entered, vec![b]);
        assert_eq!(log.exited, vec![a]);
        assert_oracle(&w, v);
    }

    #[test]
    fn filter_and_project_fuse_into_the_scan() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set(a, "gold", Value::Int(5)).unwrap();
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(b, "hp", 10.0).unwrap();
        let node = PlanNode::scan(Query::select())
            .filtered(Pred::new("hp", CmpOp::Lt, Value::Float(50.0)))
            .project(vec!["gold".into()])
            .filtered(Pred::new("gold", CmpOp::Gt, Value::Int(0)));
        let v = w.register_view_plan(ViewPlan::new(node)).unwrap();
        assert_eq!(w.view_rows(v), &[a]);
        w.set(b, "gold", Value::Int(3)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_rows(v), &[a, b]);
        assert_oracle(&w, v);
    }

    #[test]
    fn plan_validation_rejects_bad_shapes() {
        let scan = || PlanNode::scan(Query::select());
        // filter above a projection that dropped its column
        let p = ViewPlan::new(
            scan()
                .project(vec!["gold".into()])
                .filtered(Pred::new("hp", CmpOp::Lt, Value::Float(1.0))),
        );
        assert!(matches!(p.validate(), Err(CoreError::PlanInvalid(_))));
        // join below a filter: joins must be the root
        let nested = PlanNode::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            on: JoinOn::Within { radius: 1.0 },
        }
        .filtered(Pred::new("hp", CmpOp::Lt, Value::Float(1.0)));
        assert!(ViewPlan::new(nested).validate().is_err());
        // argmin/argmax have no incremental form here
        let p = ViewPlan::aggregate(scan(), AggFn::ArgMin("hp".into()));
        assert!(p.validate().is_err());
        // spatial join radius must be positive and finite
        let p = ViewPlan::join(scan(), scan(), JoinOn::Within { radius: 0.0 });
        assert!(p.validate().is_err());
        let p = ViewPlan::join(scan(), scan(), JoinOn::Within { radius: f32::NAN });
        assert!(p.validate().is_err());
        // depth bound (decode safety)
        let mut deep = scan();
        for _ in 0..=MAX_PLAN_DEPTH {
            deep = deep.project(vec!["gold".into()]);
        }
        assert!(ViewPlan::new(deep).validate().is_err());
        // consumer column must survive the projection
        let p = ViewPlan::group_by(
            scan().project(vec!["team".into()]),
            "team",
            AggFn::Sum("gold".into()),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn equi_join_maintains_pairs_incrementally() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        let c = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(b, "hp", 90.0).unwrap();
        w.set_f32(c, "hp", 10.0).unwrap();
        team(&mut w, a, "red");
        team(&mut w, b, "red");
        team(&mut w, c, "blue");
        // wounded × everyone, matched on team
        let v = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0))),
                PlanNode::scan(Query::select()),
                JoinOn::Eq {
                    left: "team".into(),
                    right: "team".into(),
                },
            ))
            .unwrap();
        assert_eq!(w.view_pairs(v), &[(a, b)]);
        // b gets wounded: joins its red teammate a
        w.set_f32(b, "hp", 20.0).unwrap();
        w.refresh_views();
        assert_eq!(w.view_pairs(v), &[(a, b), (b, a)]);
        let log = w.take_view_pair_changelog(v);
        assert_eq!(log.entered, vec![(b, a)]);
        assert!(log.exited.is_empty());
        assert_oracle(&w, v);
        // c switches to red: joins both sides of the red component
        team(&mut w, c, "red");
        w.refresh_views();
        assert_eq!(
            w.view_pairs(v),
            &[(a, b), (a, c), (b, a), (b, c), (c, a), (c, b)]
        );
        assert_oracle(&w, v);
        // a despawns: every pair touching a exits
        w.despawn(a);
        w.refresh_views();
        assert_eq!(w.view_pairs(v), &[(b, c), (c, b)]);
        let log = w.take_view_pair_changelog(v);
        assert_eq!(log.exited, vec![(a, b), (a, c), (b, a), (c, a)]);
        assert_oracle(&w, v);
    }

    #[test]
    fn equi_join_coerces_int_and_float_keys() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set(a, "gold", Value::Int(3)).unwrap();
        w.set_f32(b, "hp", 3.0).unwrap();
        let v = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select().filter("gold", CmpOp::Gt, Value::Int(0))),
                PlanNode::scan(Query::select().filter("hp", CmpOp::Gt, Value::Float(0.0))),
                JoinOn::Eq {
                    left: "gold".into(),
                    right: "hp".into(),
                },
            ))
            .unwrap();
        // Int 3 and Float 3.0 share a key in the coercion domain
        assert_eq!(w.view_pairs(v), &[(a, b)]);
        // a NaN key joins nothing
        w.set_f32(b, "hp", f32::NAN).unwrap();
        w.refresh_views();
        assert!(w.view_pairs(v).is_empty());
        assert_oracle(&w, v);
    }

    #[test]
    fn spatial_join_pairs_follow_moves() {
        let mut w = World::new();
        let a = w.spawn_at(Vec2::new(0.0, 0.0));
        let b = w.spawn_at(Vec2::new(3.0, 0.0));
        let c = w.spawn_at(Vec2::new(100.0, 0.0));
        let v = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select()),
                PlanNode::scan(Query::select()),
                JoinOn::Within { radius: 5.0 },
            ))
            .unwrap();
        // symmetric, self-pairs excluded
        assert_eq!(w.view_pairs(v), &[(a, b), (b, a)]);
        w.set_pos(c, Vec2::new(1.0, 1.0)).unwrap();
        w.refresh_views();
        assert_eq!(
            w.view_pairs(v),
            &[(a, b), (a, c), (b, a), (b, c), (c, a), (c, b)]
        );
        assert_oracle(&w, v);
        w.set_pos(b, Vec2::new(50.0, 0.0)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_pairs(v), &[(a, c), (c, a)]);
        let log = w.take_view_pair_changelog(v);
        assert_eq!(log.exited, vec![(a, b), (b, a), (b, c), (c, b)]);
        assert_oracle(&w, v);
    }

    #[test]
    fn anchored_spatial_join_follows_the_anchor() {
        // The aggro shape: one pinned mob joined to everyone nearby.
        let mut w = World::new();
        let mob = w.spawn_at(Vec2::ZERO);
        let p1 = w.spawn_at(Vec2::new(1.0, 0.0));
        let p2 = w.spawn_at(Vec2::new(30.0, 0.0));
        let v = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan_only(Query::select(), mob),
                PlanNode::scan(Query::select().excluding(mob)),
                JoinOn::Within { radius: 5.0 },
            ))
            .unwrap();
        assert_eq!(w.view_pairs(v), &[(mob, p1)]);
        // moving the anchor re-pairs without any retarget call
        w.set_pos(mob, Vec2::new(30.0, 0.0)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_pairs(v), &[(mob, p2)]);
        assert_oracle(&w, v);
        // moving a candidate into range pairs it
        w.set_pos(p1, Vec2::new(29.0, 0.0)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_pairs(v), &[(mob, p1), (mob, p2)]);
        assert_oracle(&w, v);
    }

    #[test]
    fn group_count_tracks_membership() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        let c = w.spawn_at(Vec2::ZERO);
        team(&mut w, a, "red");
        team(&mut w, b, "red");
        team(&mut w, c, "blue");
        let v = w
            .register_view_plan(ViewPlan::group_by(
                PlanNode::scan(Query::select()),
                "team",
                AggFn::Count,
            ))
            .unwrap();
        assert_eq!(w.view_group_value(v, Some(&Value::Str("red".into()))), Some(2.0));
        assert_eq!(w.view_group_value(v, Some(&Value::Str("blue".into()))), Some(1.0));
        // last blue row leaves: the group disappears
        w.despawn(c);
        w.refresh_views();
        assert_eq!(w.view_group_value(v, Some(&Value::Str("blue".into()))), None);
        let log = w.take_view_group_changelog(v);
        assert_eq!(
            log.exited,
            vec![GroupRow {
                key: Some(Value::Str("blue".into())),
                value: 1.0
            }]
        );
        assert_oracle(&w, v);
        // b switches teams: red shrinks, blue reappears
        team(&mut w, b, "blue");
        w.refresh_views();
        let log = w.take_view_group_changelog(v);
        assert_eq!(
            log.entered,
            vec![GroupRow {
                key: Some(Value::Str("blue".into())),
                value: 1.0
            }]
        );
        assert_eq!(
            log.changed,
            vec![GroupRow {
                key: Some(Value::Str("red".into())),
                value: 1.0
            }]
        );
        assert_oracle(&w, v);
    }

    #[test]
    fn group_sum_maintains_running_totals() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        team(&mut w, a, "red");
        team(&mut w, b, "red");
        w.set(a, "gold", Value::Int(5)).unwrap();
        w.set(b, "gold", Value::Int(7)).unwrap();
        let v = w
            .register_view_plan(ViewPlan::group_by(
                PlanNode::scan(Query::select()),
                "team",
                AggFn::Sum("gold".into()),
            ))
            .unwrap();
        let red = Value::Str("red".into());
        assert_eq!(w.view_group_value(v, Some(&red)), Some(12.0));
        w.set(a, "gold", Value::Int(20)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(v, Some(&red)), Some(27.0));
        // removing the component retracts its contribution
        w.remove_component(b, "gold").unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(v, Some(&red)), Some(20.0));
        assert_oracle(&w, v);
    }

    #[test]
    fn group_min_retracts_and_recomputes() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        team(&mut w, a, "red");
        team(&mut w, b, "red");
        w.set(a, "gold", Value::Int(5)).unwrap();
        w.set(b, "gold", Value::Int(10)).unwrap();
        let v = w
            .register_view_plan(ViewPlan::group_by(
                PlanNode::scan(Query::select()),
                "team",
                AggFn::Min("gold".into()),
            ))
            .unwrap();
        let red = Value::Str("red".into());
        assert_eq!(w.view_group_value(v, Some(&red)), Some(5.0));
        assert_eq!(w.view_retract_recomputes(v), 0);
        // raising the current minimum retracts the extreme: the new min
        // comes from the ordered multiset, and the event is counted
        w.set(a, "gold", Value::Int(20)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(v, Some(&red)), Some(10.0));
        assert_eq!(w.view_retract_recomputes(v), 1);
        // touching a non-extreme row does not
        w.set(a, "gold", Value::Int(15)).unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(v, Some(&red)), Some(10.0));
        assert_eq!(w.view_retract_recomputes(v), 1);
        assert_oracle(&w, v);
    }

    #[test]
    fn nan_aggregate_inputs_are_skipped() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(b, "hp", f32::NAN).unwrap();
        let sum = w
            .register_view_plan(ViewPlan::aggregate(
                PlanNode::scan(Query::select()),
                AggFn::Sum("hp".into()),
            ))
            .unwrap();
        let avg = w
            .register_view_plan(ViewPlan::aggregate(
                PlanNode::scan(Query::select()),
                AggFn::Avg("hp".into()),
            ))
            .unwrap();
        let count = w
            .register_view_plan(ViewPlan::aggregate(
                PlanNode::scan(Query::select()),
                AggFn::Count,
            ))
            .unwrap();
        assert_eq!(w.view_group_value(sum, None), Some(10.0));
        // NaN is excluded from the denominator too (SQL NULL style)
        assert_eq!(w.view_group_value(avg, None), Some(10.0));
        // Count counts rows, not non-NaN values
        assert_eq!(w.view_group_value(count, None), Some(2.0));
        w.set_f32(b, "hp", 30.0).unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(sum, None), Some(40.0));
        assert_eq!(w.view_group_value(avg, None), Some(20.0));
        assert_oracle(&w, sum);
        assert_oracle(&w, avg);
    }

    #[test]
    fn global_group_disappears_when_empty() {
        let mut w = world();
        let v = w
            .register_view_plan(ViewPlan::aggregate(
                PlanNode::scan(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0))),
                AggFn::Count,
            ))
            .unwrap();
        assert!(w.view_groups(v).is_empty());
        assert_eq!(w.view_group_value(v, None), None);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        w.refresh_views();
        assert_eq!(w.view_group_value(v, None), Some(1.0));
        w.set_f32(a, "hp", 90.0).unwrap();
        w.refresh_views();
        assert!(w.view_groups(v).is_empty());
        let log = w.take_view_group_changelog(v);
        assert_eq!(log.exited, vec![GroupRow { key: None, value: 1.0 }]);
        assert_oracle(&w, v);
    }

    #[test]
    fn plan_views_round_trip_through_the_catalog() {
        let mut w = world();
        let a = w.spawn_at(Vec2::ZERO);
        team(&mut w, a, "red");
        w.set(a, "gold", Value::Int(5)).unwrap();
        let v = w
            .register_view_plan(ViewPlan::group_by(
                PlanNode::scan(Query::select()),
                "team",
                AggFn::Sum("gold".into()),
            ))
            .unwrap();
        let cat = w.export_catalog();
        assert_eq!(cat.plan_views.len(), 1);
        assert_eq!(cat.plan_views[0].0, v.slot());
        // reconcile restores a dropped plan view at its exact slot,
        // rematerialized from current state
        assert!(w.drop_view(v));
        assert!(w.view_id_at(v.slot()).is_none());
        w.reconcile_catalog(&cat).unwrap();
        assert_eq!(w.view_id_at(v.slot()), Some(v));
        assert_eq!(
            w.view_group_value(v, Some(&Value::Str("red".into()))),
            Some(5.0)
        );
        // and drops a plan view absent from the catalog
        let mut cat2 = cat.clone();
        cat2.plan_views.clear();
        w.reconcile_catalog(&cat2).unwrap();
        assert!(w.view_id_at(v.slot()).is_none());
    }

    #[test]
    fn find_plan_view_reattaches_by_plan() {
        let mut w = world();
        let plan = ViewPlan::group_by(PlanNode::scan(Query::select()), "team", AggFn::Count);
        assert_eq!(w.find_plan_view(&plan), None);
        let v = w.register_view_plan(plan.clone()).unwrap();
        assert_eq!(w.find_plan_view(&plan), Some(v));
    }

    #[test]
    fn maintained_state_matches_oracle_under_mixed_churn() {
        // A deterministic mini-churn across every operator kind; the
        // randomized version lives in tests/prop_core.rs.
        let mut w = world();
        let join = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0))),
                PlanNode::scan(Query::select()),
                JoinOn::Eq {
                    left: "team".into(),
                    right: "team".into(),
                },
            ))
            .unwrap();
        let near = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select()),
                PlanNode::scan(Query::select()),
                JoinOn::Within { radius: 8.0 },
            ))
            .unwrap();
        let wealth = w
            .register_view_plan(ViewPlan::group_by(
                PlanNode::scan(Query::select()),
                "team",
                AggFn::Sum("gold".into()),
            ))
            .unwrap();
        let mut ids = Vec::new();
        for i in 0..40i64 {
            let e = w.spawn_at(Vec2::new((i % 7) as f32 * 3.0, (i % 5) as f32 * 3.0));
            w.set_f32(e, "hp", (i % 11) as f32 * 10.0).unwrap();
            w.set(e, "gold", Value::Int(i % 13)).unwrap();
            team(&mut w, e, if i % 3 == 0 { "red" } else { "blue" });
            ids.push(e);
            if i % 4 == 0 {
                w.refresh_views();
            }
        }
        w.refresh_views();
        for (i, &e) in ids.iter().enumerate() {
            match i % 5 {
                0 => w.set_f32(e, "hp", ((i * 17) % 90) as f32).unwrap(),
                1 => {
                    w.despawn(e);
                }
                2 => w.set_pos(e, Vec2::new((i % 9) as f32 * 4.0, 1.0)).unwrap(),
                3 => w.set(e, "gold", Value::Int((i as i64 * 7) % 40)).unwrap(),
                _ => {
                    let _ = w.remove_component(e, "team");
                }
            }
            if i % 3 == 0 {
                w.refresh_views();
            }
        }
        w.refresh_views();
        assert_oracle(&w, join);
        assert_oracle(&w, near);
        assert_oracle(&w, wealth);
    }
}
