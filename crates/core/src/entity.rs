//! Entity identifiers.
//!
//! Entities are rows of the world database. Ids are generational: a slot
//! index plus a generation counter, so a stale id held by a script after
//! the entity despawns can never alias a newly spawned entity reusing the
//! slot — the classic dangling-row bug in game object systems.

use std::fmt;

/// A generational entity id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId {
    index: u32,
    gen: u32,
}

impl EntityId {
    pub(crate) fn new(index: u32, gen: u32) -> Self {
        EntityId { index, gen }
    }

    /// Slot index within the world's column storage.
    #[inline]
    pub fn index(self) -> u32 {
        self.index
    }

    /// Generation counter for this slot.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Pack into a `u64` for use as a spatial-index item id.
    #[inline]
    pub fn to_bits(self) -> u64 {
        ((self.gen as u64) << 32) | self.index as u64
    }

    /// Inverse of [`EntityId::to_bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        EntityId {
            index: bits as u32,
            gen: (bits >> 32) as u32,
        }
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}v{}", self.index, self.gen)
    }
}

/// Allocates entity slots with generation tracking and a free list.
#[derive(Debug, Clone, Default)]
pub struct EntityAllocator {
    gens: Vec<u32>,
    alive: Vec<bool>,
    free: Vec<u32>,
    live_count: usize,
}

impl EntityAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new entity, reusing a freed slot when available.
    pub fn alloc(&mut self) -> EntityId {
        self.live_count += 1;
        if let Some(index) = self.free.pop() {
            let i = index as usize;
            self.alive[i] = true;
            EntityId::new(index, self.gens[i])
        } else {
            let index = self.gens.len() as u32;
            self.gens.push(0);
            self.alive.push(true);
            EntityId::new(index, 0)
        }
    }

    /// Free an entity; returns `false` when the id is stale or already
    /// freed.
    pub fn free(&mut self, id: EntityId) -> bool {
        let i = id.index() as usize;
        if i >= self.gens.len() || !self.alive[i] || self.gens[i] != id.generation() {
            return false;
        }
        self.alive[i] = false;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(id.index());
        self.live_count -= 1;
        true
    }

    /// True when `id` refers to a live entity.
    #[inline]
    pub fn is_live(&self, id: EntityId) -> bool {
        let i = id.index() as usize;
        i < self.gens.len() && self.alive[i] && self.gens[i] == id.generation()
    }

    /// Number of live entities.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Total slots ever allocated (live + free).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.gens.len()
    }

    /// Iterate live entity ids in slot order (deterministic).
    pub fn iter_live(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.gens
            .iter()
            .zip(self.alive.iter())
            .enumerate()
            .filter(|&(_, (_, &alive))| alive)
            .map(|(i, (&gen, _))| EntityId::new(i as u32, gen))
    }

    /// Current id at `slot` if live (used when rebuilding from snapshots).
    pub fn live_at_slot(&self, slot: u32) -> Option<EntityId> {
        let i = slot as usize;
        (i < self.gens.len() && self.alive[i]).then(|| EntityId::new(slot, self.gens[i]))
    }

    /// Restore an entity with an exact id (slot + generation), extending
    /// the slot table as needed — recovery rebuilds worlds from snapshots
    /// and must preserve ids so cross-entity references stay valid.
    /// Returns `false` when the slot is already live.
    pub fn restore(&mut self, id: EntityId) -> bool {
        let i = id.index() as usize;
        while self.gens.len() <= i {
            self.free.push(self.gens.len() as u32);
            self.gens.push(0);
            self.alive.push(false);
        }
        if self.alive[i] {
            return false;
        }
        self.gens[i] = id.generation();
        self.alive[i] = true;
        self.free.retain(|&f| f != id.index());
        self.live_count += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_realloc_generations() {
        let mut a = EntityAllocator::new();
        let e0 = a.alloc();
        let e1 = a.alloc();
        assert_eq!(e0.index(), 0);
        assert_eq!(e1.index(), 1);
        assert_eq!(a.live_count(), 2);

        assert!(a.free(e0));
        assert!(!a.is_live(e0));
        assert!(a.is_live(e1));

        let e2 = a.alloc();
        // slot reused, generation bumped
        assert_eq!(e2.index(), 0);
        assert_eq!(e2.generation(), 1);
        assert_ne!(e0, e2);
        assert!(!a.is_live(e0), "stale id must stay dead");
        assert!(a.is_live(e2));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = EntityAllocator::new();
        let e = a.alloc();
        assert!(a.free(e));
        assert!(!a.free(e));
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn stale_free_rejected() {
        let mut a = EntityAllocator::new();
        let e0 = a.alloc();
        a.free(e0);
        let e1 = a.alloc(); // same slot, new generation
        assert!(!a.free(e0), "freeing with a stale id must fail");
        assert!(a.is_live(e1));
    }

    #[test]
    fn iter_live_in_slot_order() {
        let mut a = EntityAllocator::new();
        let ids: Vec<EntityId> = (0..5).map(|_| a.alloc()).collect();
        a.free(ids[1]);
        a.free(ids[3]);
        let live: Vec<u32> = a.iter_live().map(|e| e.index()).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn bits_roundtrip() {
        let id = EntityId::new(12345, 678);
        assert_eq!(EntityId::from_bits(id.to_bits()), id);
    }

    #[test]
    fn live_at_slot() {
        let mut a = EntityAllocator::new();
        let e = a.alloc();
        assert_eq!(a.live_at_slot(0), Some(e));
        assert_eq!(a.live_at_slot(9), None);
        a.free(e);
        assert_eq!(a.live_at_slot(0), None);
    }
}
