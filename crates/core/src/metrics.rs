//! Core-engine instrumentation: the cached metric handles one
//! [`crate::world::World`] reports through when a
//! [`gamedb_metrics::MetricsRegistry`] is attached
//! ([`crate::world::World::attach_metrics`]).
//!
//! Handles are resolved **once** at attach time; every hot-path update
//! (a change record, a view refresh, a plan choice) is a relaxed atomic
//! op with no lock and no name lookup. Instrumentation is purely
//! observational — nothing in the engine branches on whether a handle
//! is present beyond the `Option` check itself, so a seeded workload is
//! bit-identical with and without metrics (enforced by
//! `tests/metrics_transparency.rs` at the workspace root).

use std::sync::Mutex;

use gamedb_metrics::{Counter, Gauge, Histogram, MetricsRegistry, SIZE_BUCKETS};

use crate::planner::Access;

/// Cached handles for one world. Held as `Option<Arc<CoreMetrics>>`
/// inside the change stream (every write path already flows through
/// it); world clones do **not** inherit the handle — like taps, a
/// metrics consumer observes the world it attached to, and a cloned
/// oracle double-reporting into the same registry would corrupt every
/// counter.
#[derive(Debug)]
pub(crate) struct CoreMetrics {
    registry: MetricsRegistry,
    // -- change stream --
    /// `change.records`: records committed to the stream.
    pub records: Counter,
    /// `change.batches`: multi-op segments committed via `apply_batch`.
    pub batches: Counter,
    /// `change.batch_ops`: ops per `apply_batch` segment.
    pub batch_ops: Histogram,
    /// `change.tap_evictions`: unpinned taps evicted by retention.
    pub tap_evictions: Counter,
    /// `change.retained`: records currently pinned by lagging consumers.
    pub retained: Gauge,
    /// `change.tap_drain`: records drained per tap ack (how far behind
    /// each consumer ran before consuming).
    pub tap_drain: Histogram,
    /// `change.tap{N}.lag`: per-tap lag at its most recent ack.
    tap_lag: Mutex<Vec<Option<Gauge>>>,
    // -- standing views --
    /// `view.refreshes`: delta batches folded into views.
    pub view_refreshes: Counter,
    /// `view.rescans`: refreshes that fell back to a planner rescan.
    pub view_rescans: Counter,
    /// `view.incremental`: refreshes maintained incrementally.
    pub view_incremental: Counter,
    /// `view.deltas_seen`: deltas inspected across all refreshes.
    pub view_deltas: Counter,
    /// `view.refresh_candidates`: candidate rows evaluated per refresh
    /// (the refresh cost, in the planner's row-visit units).
    pub view_candidates: Histogram,
    /// `view.entered` / `view.exited` / `view.changed`: changelog sizes.
    pub view_entered: Counter,
    pub view_exited: Counter,
    pub view_changed: Counter,
    // -- operator-tree views (differential view maintenance) --
    /// `view.op_scan.rows_in/rows_out`: candidate rows inspected by
    /// fused scan chains / source delta rows emitted.
    pub op_scan: OpMetrics,
    /// `view.op_filter.rows_in/rows_out`: candidates evaluated against
    /// fused filter predicates / candidates passing them.
    pub op_filter: OpMetrics,
    /// `view.op_join.rows_in/rows_out`: source delta rows entering join
    /// operators / pair changes applied.
    pub op_join: OpMetrics,
    /// `view.op_group.rows_in/rows_out`: source delta rows entering
    /// group aggregates / group rows entered+exited+changed.
    pub op_group: OpMetrics,
    /// `view.op_group.retract_recomputes`: min/max retractions of a
    /// group's current extreme (recomputed from the ordered multiset).
    pub op_group_retracts: Counter,
    /// `view.s{slot}.*`: per-view refresh/rescan/candidate counters.
    view_slots: Mutex<Vec<Option<ViewSlotMetrics>>>,
    // -- planner --
    /// `planner.plans`: cost-based plan selections executed.
    pub plans: Counter,
    /// `planner.full_scan` / `planner.spatial_index` /
    /// `planner.attribute_index`: chosen access paths.
    pub plan_full_scan: Counter,
    pub plan_spatial: Counter,
    pub plan_attr: Counter,
}

/// Rows-in/rows-out pair for one operator class of the differential
/// view engine.
#[derive(Debug)]
pub(crate) struct OpMetrics {
    pub rows_in: Counter,
    pub rows_out: Counter,
}

impl OpMetrics {
    fn new(registry: &MetricsRegistry, op: &str) -> OpMetrics {
        OpMetrics {
            rows_in: registry.counter(&format!("view.op_{op}.rows_in")),
            rows_out: registry.counter(&format!("view.op_{op}.rows_out")),
        }
    }

    /// Count one operator invocation's input and output row counts.
    #[inline]
    pub fn note(&self, rows_in: usize, rows_out: usize) {
        self.rows_in.add(rows_in as u64);
        self.rows_out.add(rows_out as u64);
    }
}

/// Per-view-slot handles, created lazily the first time a slot
/// refreshes under an attached registry.
#[derive(Debug, Clone)]
pub(crate) struct ViewSlotMetrics {
    pub refreshes: Counter,
    pub rescans: Counter,
    pub candidates: Counter,
    /// `view.s{slot}.delta_rows`: output delta rows this view emitted
    /// (its per-refresh delta-batch size, accumulated).
    pub delta_rows: Counter,
}

impl CoreMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            records: registry.counter("change.records"),
            batches: registry.counter("change.batches"),
            batch_ops: registry.histogram("change.batch_ops", SIZE_BUCKETS),
            tap_evictions: registry.counter("change.tap_evictions"),
            retained: registry.gauge("change.retained"),
            tap_drain: registry.histogram("change.tap_drain", SIZE_BUCKETS),
            tap_lag: Mutex::new(Vec::new()),
            view_refreshes: registry.counter("view.refreshes"),
            view_rescans: registry.counter("view.rescans"),
            view_incremental: registry.counter("view.incremental"),
            view_deltas: registry.counter("view.deltas_seen"),
            view_candidates: registry.histogram("view.refresh_candidates", SIZE_BUCKETS),
            view_entered: registry.counter("view.entered"),
            view_exited: registry.counter("view.exited"),
            view_changed: registry.counter("view.changed"),
            op_scan: OpMetrics::new(registry, "scan"),
            op_filter: OpMetrics::new(registry, "filter"),
            op_join: OpMetrics::new(registry, "join"),
            op_group: OpMetrics::new(registry, "group"),
            op_group_retracts: registry.counter("view.op_group.retract_recomputes"),
            view_slots: Mutex::new(Vec::new()),
            plans: registry.counter("planner.plans"),
            plan_full_scan: registry.counter("planner.full_scan"),
            plan_spatial: registry.counter("planner.spatial_index"),
            plan_attr: registry.counter("planner.attribute_index"),
            registry: registry.clone(),
        }
    }

    /// Count one executed plan choice.
    #[inline]
    pub fn note_access(&self, access: &Access) {
        self.plans.inc();
        match access {
            Access::FullScan => self.plan_full_scan.inc(),
            Access::SpatialIndex { .. } => self.plan_spatial.inc(),
            Access::AttributeIndex { .. } => self.plan_attr.inc(),
        }
    }

    /// Record a tap's lag at ack time on its `change.tap{N}.lag` gauge
    /// (created on first use) and in the shared drain histogram.
    pub fn note_tap_drain(&self, tap_index: usize, lag: u64) {
        self.tap_drain.observe(lag);
        let mut gauges = self.tap_lag.lock().expect("tap lag gauges poisoned");
        if gauges.len() <= tap_index {
            gauges.resize(tap_index + 1, None);
        }
        let gauge = gauges[tap_index]
            .get_or_insert_with(|| self.registry.gauge(&format!("change.tap{tap_index}.lag")));
        gauge.set(lag as i64);
    }

    /// Handles for one view slot (created on first refresh).
    pub fn view_slot(&self, slot: usize) -> ViewSlotMetrics {
        let mut slots = self.view_slots.lock().expect("view slot metrics poisoned");
        if slots.len() <= slot {
            slots.resize(slot + 1, None);
        }
        slots[slot]
            .get_or_insert_with(|| ViewSlotMetrics {
                refreshes: self.registry.counter(&format!("view.s{slot}.refreshes")),
                rescans: self.registry.counter(&format!("view.s{slot}.rescans")),
                candidates: self.registry.counter(&format!("view.s{slot}.candidates")),
                delta_rows: self.registry.counter(&format!("view.s{slot}.delta_rows")),
            })
            .clone()
    }
}
