//! Declarative queries and aggregates over the world.
//!
//! The paper argues game computations are queries in disguise: "many of
//! the techniques that game programmers have been using … look very
//! similar to the techniques that database engines use for join
//! processing". This module gives the engine a small relational algebra:
//! selections over component predicates, an optional spatial restriction
//! (pushed into the index), and the aggregate functions that the
//! set-at-a-time script compiler targets.

use gamedb_content::{CmpOp, Value};
use gamedb_spatial::Vec2;

use crate::entity::EntityId;
use crate::world::{CoreError, World};

/// A selection predicate on one component.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub component: String,
    pub op: CmpOp,
    pub value: Value,
}

impl Pred {
    /// Shorthand constructor.
    pub fn new(component: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Pred {
            component: component.into(),
            op,
            value,
        }
    }

    /// Evaluate against one entity. Missing components fail the predicate.
    pub fn eval(&self, world: &World, id: EntityId) -> bool {
        let Some(actual) = world.get(id, &self.component) else {
            return false;
        };
        compare(&actual, self.op, &self.value)
    }
}

/// Compare two values under an operator. Numeric types coerce; mixed
/// non-numeric comparisons are false (never panic on designer data).
pub fn compare(a: &Value, op: CmpOp, b: &Value) -> bool {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => x.partial_cmp(&y),
        _ => match (a, b) {
            (Value::Str(x), Value::Str(y)) => Some(x.as_str().cmp(y.as_str())),
            (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
            (Value::Vec2(ax, ay), Value::Vec2(bx, by)) => {
                // vectors compare only for equality
                return match op {
                    CmpOp::Eq => ax == bx && ay == by,
                    CmpOp::Ne => ax != bx || ay != by,
                    _ => false,
                };
            }
            _ => None,
        },
    };
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// A declarative entity query: conjunction of predicates plus an optional
/// spatial restriction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    preds: Vec<Pred>,
    within: Option<(Vec2, f32)>,
    exclude: Option<EntityId>,
}

impl Query {
    /// Start an unrestricted query (matches every live entity).
    pub fn select() -> Self {
        Query::default()
    }

    /// Add a `component op literal` predicate (conjunction).
    pub fn filter(mut self, component: impl Into<String>, op: CmpOp, value: Value) -> Self {
        self.preds.push(Pred::new(component, op, value));
        self
    }

    /// Restrict to entities within `radius` of `center` (uses the spatial
    /// index instead of scanning).
    pub fn within(mut self, center: Vec2, radius: f32) -> Self {
        self.within = Some((center, radius));
        self
    }

    /// Exclude one entity (scripts exclude "self" constantly).
    pub fn excluding(mut self, id: EntityId) -> Self {
        self.exclude = Some(id);
        self
    }

    /// The predicates of this query.
    pub fn predicates(&self) -> &[Pred] {
        &self.preds
    }

    /// The spatial restriction, if any.
    pub fn spatial(&self) -> Option<(Vec2, f32)> {
        self.within
    }

    /// The excluded entity, if any.
    pub fn excluded(&self) -> Option<EntityId> {
        self.exclude
    }

    /// Replace the spatial restriction in place — standing views over a
    /// moving focus (interest bubbles, aggro ranges) re-anchor through
    /// [`crate::world::World::retarget_view`], which calls this.
    pub fn retarget_within(&mut self, center: Vec2, radius: f32) {
        self.within = Some((center, radius));
    }

    /// Membership test for one entity: live, not excluded, inside the
    /// spatial restriction, passing every predicate. The per-row unit of
    /// [`Query::run_scan`].
    pub fn matches(&self, world: &World, id: EntityId) -> bool {
        if !world.is_live(id) || Some(id) == self.exclude {
            return false;
        }
        if let Some((center, radius)) = self.within {
            match world.pos(id) {
                Some(p) if p.dist2(center) <= radius * radius => {}
                _ => return false,
            }
        }
        self.preds.iter().all(|p| p.eval(world, id))
    }

    /// [`Query::matches`] with every referenced column resolved once up
    /// front, for callers that test many entities against one world
    /// state (incremental view maintenance evaluates this per delta
    /// candidate — the by-name column lookup would otherwise dominate).
    /// Same decisions as `matches` on every entity.
    pub fn matcher<'a>(&'a self, world: &'a World) -> impl Fn(EntityId) -> bool + 'a {
        let cols: Vec<Option<&crate::column::Column>> = self
            .preds
            .iter()
            .map(|p| world.column(&p.component))
            .collect();
        let pos_col = self
            .within
            .map(|_| world.column(crate::world::POS).expect("pos column always exists"));
        move |id: EntityId| {
            if !world.is_live(id) || Some(id) == self.exclude {
                return false;
            }
            if let (Some((center, radius)), Some(pos_col)) = (self.within, pos_col) {
                match pos_col.get_v2(id.index() as usize) {
                    Some([x, y]) if Vec2::new(x, y).dist2(center) <= radius * radius => {}
                    _ => return false,
                }
            }
            self.preds.iter().zip(&cols).all(|(p, col)| {
                col.is_some_and(|c| {
                    c.get(id.index() as usize)
                        .is_some_and(|v| compare(&v, p.op, &p.value))
                })
            })
        }
    }

    /// True when some predicate could be answered by a secondary index
    /// on this world — the cue for [`Query::run`] to involve the planner.
    fn index_eligible(&self, world: &World) -> bool {
        self.preds
            .iter()
            .any(|p| world.index_supports(&p.component, p.op))
    }

    /// Run, returning matching entities in deterministic (id) order.
    ///
    /// When any predicate's component carries a supporting secondary
    /// index, the query is planned against catalog statistics
    /// ([`crate::planner::TableStats::for_query`], O(predicates)) and the
    /// chosen access path executes — pushing the most selective indexed
    /// predicate into its index and applying the rest as residual
    /// filters. Otherwise the seed behavior stands: spatial probe when a
    /// `within` exists, full scan when not. Either way the result set is
    /// identical to [`Query::run_scan`] (the property tests hold us to
    /// that).
    pub fn run(&self, world: &World) -> Vec<EntityId> {
        if self.index_eligible(world) {
            let stats = crate::planner::TableStats::for_query(world, self);
            let chosen = crate::planner::plan(self, &stats);
            if let Some(m) = world.core_metrics() {
                m.note_access(&chosen.access);
            }
            return chosen.run(world);
        }
        let mut out = Vec::new();
        match self.within {
            Some((center, radius)) => {
                // index-first: candidates from the spatial index
                let mut cands = Vec::new();
                world.within(center, radius, &mut cands);
                for id in cands {
                    if Some(id) != self.exclude && self.preds.iter().all(|p| p.eval(world, id)) {
                        out.push(id);
                    }
                }
            }
            None => {
                for id in world.entities() {
                    if Some(id) != self.exclude && self.preds.iter().all(|p| p.eval(world, id)) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Reference evaluation: a full scan that never consults the spatial
    /// or secondary indexes. Same result set as [`Query::run`] by
    /// definition of correctness — benches use it as the baseline and
    /// property tests as the oracle.
    pub fn run_scan(&self, world: &World) -> Vec<EntityId> {
        let mut out = Vec::new();
        for id in world.entities() {
            if self.matches(world, id) {
                out.push(id);
            }
        }
        out
    }

    /// Run and count without materializing ids (indexes apply as in
    /// [`Query::run`]).
    pub fn count(&self, world: &World) -> usize {
        if self.index_eligible(world) {
            let stats = crate::planner::TableStats::for_query(world, self);
            let chosen = crate::planner::plan(self, &stats);
            if let Some(m) = world.core_metrics() {
                m.note_access(&chosen.access);
            }
            return chosen.count(world);
        }
        // Same traversal as `run`, avoiding the output vector.
        match self.within {
            Some((center, radius)) => {
                let mut cands = Vec::new();
                world.within(center, radius, &mut cands);
                cands
                    .into_iter()
                    .filter(|&id| {
                        Some(id) != self.exclude && self.preds.iter().all(|p| p.eval(world, id))
                    })
                    .count()
            }
            None => world
                .entities()
                .filter(|&id| {
                    Some(id) != self.exclude && self.preds.iter().all(|p| p.eval(world, id))
                })
                .count(),
        }
    }

    // ---- lowering into the differential view engine ----

    /// Lower into a single-source operator-tree plan: the query becomes
    /// the [`crate::dvm::PlanNode::Scan`] leaf of a [`crate::dvm::ViewPlan`].
    /// Registering the result via [`crate::world::World::register_view_plan`]
    /// maintains the same row set as [`crate::world::World::register_view`],
    /// through the operator engine.
    pub fn into_plan(self) -> crate::dvm::ViewPlan {
        crate::dvm::ViewPlan::scan(self)
    }

    /// Lower into a continuously maintained **global aggregate** plan —
    /// the standing-view form of [`aggregate`] over this query's rows.
    /// Errors for aggregates the incremental engine does not support
    /// (argmin/argmax).
    pub fn into_aggregate_plan(self, agg: AggFn) -> Result<crate::dvm::ViewPlan, CoreError> {
        let plan = crate::dvm::ViewPlan::aggregate(crate::dvm::PlanNode::scan(self), agg);
        plan.validate()?;
        Ok(plan)
    }

    /// Lower into a continuously maintained **grouped aggregate** plan:
    /// one output row per distinct value of `group_by` among this
    /// query's rows (the "guild wealth leaderboard" shape).
    pub fn into_grouped_plan(
        self,
        group_by: impl Into<String>,
        agg: AggFn,
    ) -> Result<crate::dvm::ViewPlan, CoreError> {
        let plan =
            crate::dvm::ViewPlan::group_by(crate::dvm::PlanNode::scan(self), group_by, agg);
        plan.validate()?;
        Ok(plan)
    }
}

/// Aggregate functions over a component of the matching set.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFn {
    /// Number of matching entities.
    Count,
    /// Sum of a numeric component.
    Sum(String),
    /// Minimum of a numeric component.
    Min(String),
    /// Maximum of a numeric component.
    Max(String),
    /// Mean of a numeric component.
    Avg(String),
    /// Entity with the minimal component value (argmin).
    ArgMin(String),
    /// Entity with the maximal component value (argmax).
    ArgMax(String),
}

/// Result of an aggregate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum AggResult {
    Number(f64),
    Entity(Option<EntityId>),
}

impl AggResult {
    /// Numeric result, if this aggregate produced one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AggResult::Number(n) => Some(*n),
            AggResult::Entity(_) => None,
        }
    }

    /// Entity result for argmin/argmax.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            AggResult::Entity(e) => *e,
            AggResult::Number(_) => None,
        }
    }
}

/// Evaluate an aggregate over the entities matched by `query`.
///
/// Entities missing the aggregated component are skipped, and so are NaN
/// values (SQL-style NULL semantics — a NaN in one row must not poison
/// the whole fold or win an argmin by comparing false against
/// everything). `Sum`/`Count` of an empty set are 0; `Min`/`Max`/`Avg`
/// over no (non-NaN) values return `AggResult::Number(0.0)`, and
/// argmin/argmax return `AggResult::Entity(None)`. Callers that must
/// distinguish empty sets should check `Count` first (as the compiled
/// scripts do). The differential view engine ([`crate::dvm`]) maintains
/// these same semantics incrementally.
pub fn aggregate(world: &World, query: &Query, f: &AggFn) -> AggResult {
    // NaN is a NULL, never an aggregate input.
    let value = |id: EntityId, c: &str| world.get_number(id, c).filter(|v| !v.is_nan());
    match f {
        AggFn::Count => AggResult::Number(query.count(world) as f64),
        AggFn::Sum(c) => {
            let mut sum = 0.0;
            for id in query.run(world) {
                if let Some(v) = value(id, c) {
                    sum += v;
                }
            }
            AggResult::Number(sum)
        }
        AggFn::Min(c) | AggFn::Max(c) => {
            let is_min = matches!(f, AggFn::Min(_));
            let mut best: Option<f64> = None;
            for id in query.run(world) {
                if let Some(v) = value(id, c) {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if is_min {
                                b.min(v)
                            } else {
                                b.max(v)
                            }
                        }
                    });
                }
            }
            AggResult::Number(best.unwrap_or(0.0))
        }
        AggFn::Avg(c) => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for id in query.run(world) {
                if let Some(v) = value(id, c) {
                    sum += v;
                    n += 1;
                }
            }
            AggResult::Number(if n == 0 { 0.0 } else { sum / n as f64 })
        }
        AggFn::ArgMin(c) | AggFn::ArgMax(c) => {
            let is_min = matches!(f, AggFn::ArgMin(_));
            let mut best: Option<(f64, EntityId)> = None;
            for id in query.run(world) {
                if let Some(v) = value(id, c) {
                    let better = match best {
                        None => true,
                        // ties break toward the smaller id (run() is id-ordered,
                        // so strict comparison keeps the first)
                        Some((bv, _)) => {
                            if is_min {
                                v < bv
                            } else {
                                v > bv
                            }
                        }
                    };
                    if better {
                        best = Some((v, id));
                    }
                }
            }
            AggResult::Entity(best.map(|(_, id)| id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    fn arena() -> (World, Vec<EntityId>) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.define_component("level", ValueType::Int).unwrap();
        let mut ids = Vec::new();
        // 6 entities on a line, alternating teams, hp = 10*i, level = i
        for i in 0..6 {
            let e = w.spawn_at(Vec2::new(i as f32 * 10.0, 0.0));
            w.set_f32(e, "hp", 10.0 * i as f32).unwrap();
            w.set(
                e,
                "team",
                Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
            w.set(e, "level", Value::Int(i as i64)).unwrap();
            ids.push(e);
        }
        (w, ids)
    }

    #[test]
    fn unfiltered_select_returns_all() {
        let (w, ids) = arena();
        assert_eq!(Query::select().run(&w), ids);
        assert_eq!(Query::select().count(&w), 6);
    }

    #[test]
    fn predicate_filtering() {
        let (w, ids) = arena();
        let reds = Query::select()
            .filter("team", CmpOp::Eq, Value::Str("red".into()))
            .run(&w);
        assert_eq!(reds, vec![ids[0], ids[2], ids[4]]);

        let strong = Query::select()
            .filter("hp", CmpOp::Ge, Value::Float(30.0))
            .filter("team", CmpOp::Eq, Value::Str("blue".into()))
            .run(&w);
        assert_eq!(strong, vec![ids[3], ids[5]]);
    }

    #[test]
    fn numeric_coercion_int_vs_float() {
        let (w, ids) = arena();
        // level is int; compare against float literal
        let high = Query::select()
            .filter("level", CmpOp::Gt, Value::Float(3.5))
            .run(&w);
        assert_eq!(high, vec![ids[4], ids[5]]);
    }

    #[test]
    fn spatial_restriction_uses_index() {
        let (w, ids) = arena();
        let near = Query::select()
            .within(Vec2::new(0.0, 0.0), 21.0)
            .run(&w);
        assert_eq!(near, vec![ids[0], ids[1], ids[2]]);

        let near_blue = Query::select()
            .within(Vec2::new(0.0, 0.0), 21.0)
            .filter("team", CmpOp::Eq, Value::Str("blue".into()))
            .run(&w);
        assert_eq!(near_blue, vec![ids[1]]);
    }

    #[test]
    fn excluding_self() {
        let (w, ids) = arena();
        let others = Query::select()
            .within(Vec2::new(0.0, 0.0), 11.0)
            .excluding(ids[0])
            .run(&w);
        assert_eq!(others, vec![ids[1]]);
    }

    #[test]
    fn missing_component_fails_predicate() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let with_hp = w.spawn_at(Vec2::ZERO);
        w.set_f32(with_hp, "hp", 5.0).unwrap();
        let without = w.spawn_at(Vec2::ZERO);
        let _ = without;
        let q = Query::select().filter("hp", CmpOp::Ge, Value::Float(0.0));
        assert_eq!(q.run(&w), vec![with_hp]);
    }

    #[test]
    fn aggregates() {
        let (w, ids) = arena();
        let all = Query::select();
        assert_eq!(aggregate(&w, &all, &AggFn::Count).as_number(), Some(6.0));
        assert_eq!(
            aggregate(&w, &all, &AggFn::Sum("hp".into())).as_number(),
            Some(150.0)
        );
        assert_eq!(
            aggregate(&w, &all, &AggFn::Min("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &all, &AggFn::Max("hp".into())).as_number(),
            Some(50.0)
        );
        assert_eq!(
            aggregate(&w, &all, &AggFn::Avg("hp".into())).as_number(),
            Some(25.0)
        );
        assert_eq!(
            aggregate(&w, &all, &AggFn::ArgMax("hp".into())).as_entity(),
            Some(ids[5])
        );
        assert_eq!(
            aggregate(&w, &all, &AggFn::ArgMin("hp".into())).as_entity(),
            Some(ids[0])
        );
    }

    #[test]
    fn aggregate_empty_set() {
        let w = World::new();
        let q = Query::select();
        assert_eq!(aggregate(&w, &q, &AggFn::Count).as_number(), Some(0.0));
        assert_eq!(
            aggregate(&w, &q, &AggFn::Sum("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Avg("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::ArgMin("hp".into())).as_entity(),
            None
        );
    }

    #[test]
    fn aggregate_skips_nan_inputs() {
        // NaN is a NULL: it must neither poison a running fold (sum,
        // avg) nor win an argmin/argmax by comparing false against
        // every candidate, nor count into an avg denominator.
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        let c = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", f32::NAN).unwrap();
        w.set_f32(b, "hp", 10.0).unwrap();
        w.set_f32(c, "hp", 30.0).unwrap();
        let q = Query::select();
        assert_eq!(aggregate(&w, &q, &AggFn::Count).as_number(), Some(3.0));
        assert_eq!(
            aggregate(&w, &q, &AggFn::Sum("hp".into())).as_number(),
            Some(40.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Min("hp".into())).as_number(),
            Some(10.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Max("hp".into())).as_number(),
            Some(30.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Avg("hp".into())).as_number(),
            Some(20.0)
        );
        // NaN holds the lowest entity id here; a real value must still win
        assert_eq!(
            aggregate(&w, &q, &AggFn::ArgMin("hp".into())).as_entity(),
            Some(b)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::ArgMax("hp".into())).as_entity(),
            Some(c)
        );
    }

    #[test]
    fn aggregate_all_nan_behaves_as_empty() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", f32::NAN).unwrap();
        let q = Query::select();
        assert_eq!(
            aggregate(&w, &q, &AggFn::Min("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Max("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Avg("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::Sum("hp".into())).as_number(),
            Some(0.0)
        );
        assert_eq!(
            aggregate(&w, &q, &AggFn::ArgMin("hp".into())).as_entity(),
            None
        );
    }

    #[test]
    fn query_lowers_into_operator_plans() {
        let (mut w, ids) = arena();
        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(30.0));
        let rows = w.register_view_plan(q.clone().into_plan()).unwrap();
        assert_eq!(w.view_rows(rows), q.clone().run(&w));
        let sum = w
            .register_view_plan(q.clone().into_aggregate_plan(AggFn::Sum("hp".into())).unwrap())
            .unwrap();
        assert_eq!(w.view_group_value(sum, None), Some(30.0));
        let per_team = w
            .register_view_plan(
                q.clone().into_grouped_plan("team", AggFn::Count).unwrap(),
            )
            .unwrap();
        assert_eq!(
            w.view_group_value(per_team, Some(&Value::Str("red".into()))),
            Some(2.0)
        );
        // argmin has no incremental form: the lowering refuses it
        assert!(q.into_aggregate_plan(AggFn::ArgMin("hp".into())).is_err());
        let _ = ids;
    }

    #[test]
    fn argmin_tie_breaks_to_lower_id() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 7.0).unwrap();
        w.set_f32(b, "hp", 7.0).unwrap();
        assert_eq!(
            aggregate(&w, &Query::select(), &AggFn::ArgMin("hp".into())).as_entity(),
            Some(a)
        );
    }

    #[test]
    fn indexed_run_matches_scan() {
        use crate::index::IndexKind;
        let (mut w, ids) = arena();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("team", IndexKind::Hash).unwrap();

        let queries = vec![
            Query::select().filter("hp", CmpOp::Ge, Value::Float(30.0)),
            Query::select()
                .filter("hp", CmpOp::Lt, Value::Float(45.0))
                .filter("team", CmpOp::Eq, Value::Str("red".into())),
            Query::select()
                .within(Vec2::new(0.0, 0.0), 21.0)
                .filter("team", CmpOp::Eq, Value::Str("blue".into())),
            Query::select()
                .filter("level", CmpOp::Gt, Value::Float(3.5))
                .filter("team", CmpOp::Eq, Value::Str("red".into()))
                .excluding(ids[4]),
        ];
        for q in queries {
            assert_eq!(q.run(&w), q.run_scan(&w));
            assert_eq!(q.count(&w), q.run_scan(&w).len());
        }
    }

    #[test]
    fn run_scan_is_the_reference() {
        let (w, ids) = arena();
        let q = Query::select()
            .within(Vec2::new(0.0, 0.0), 21.0)
            .filter("team", CmpOp::Eq, Value::Str("blue".into()));
        assert_eq!(q.run(&w), q.run_scan(&w));
        assert_eq!(q.run_scan(&w), vec![ids[1]]);
    }

    #[test]
    fn compare_value_semantics() {
        assert!(compare(&Value::Int(3), CmpOp::Lt, &Value::Float(3.5)));
        assert!(compare(
            &Value::Str("abc".into()),
            CmpOp::Lt,
            &Value::Str("abd".into())
        ));
        assert!(compare(&Value::Bool(false), CmpOp::Lt, &Value::Bool(true)));
        assert!(compare(
            &Value::Vec2(1.0, 2.0),
            CmpOp::Eq,
            &Value::Vec2(1.0, 2.0)
        ));
        assert!(!compare(
            &Value::Vec2(1.0, 2.0),
            CmpOp::Lt,
            &Value::Vec2(3.0, 4.0)
        ));
        // cross-type: false, never panic
        assert!(!compare(&Value::Str("5".into()), CmpOp::Eq, &Value::Int(5)));
    }
}
