//! Continuous queries: standing views maintained incrementally from the
//! world's change stream.
//!
//! The paper's central pitch is that game computation is *declarative
//! set-at-a-time processing over a database* — yet every recurring
//! question an engine asks (invariant audits, aggro candidate sets,
//! trigger thresholds, replication interest) is classically answered by
//! re-running a full query each tick. This module gives those questions
//! the database answer: a **materialized view**. Callers register a
//! standing [`Query`] with [`crate::world::World::register_view`]; every
//! write path then commits a typed [`crate::change::Change`] record
//! (`entity, component, old → new`) to the world's change stream, and
//! [`crate::world::World::refresh_views`] (called automatically at tick
//! end) folds the pending segment into each view's materialized result
//! set, producing a per-tick [`Changelog`] of `entered` / `exited` /
//! `changed` rows. Views are one consumer of that stream among several —
//! durability and replication tap the very same records (see
//! [`crate::change`]).
//!
//! ## Maintenance invariants
//!
//! * **Stream completeness** — every mutation of live-entity state flows
//!   through one of the world's primitive write paths (`set`, `set_pos`,
//!   `remove_component`, `despawn`, `spawn*`, `restore_entity`,
//!   `apply_batch`), and each of those commits exactly one row-op record
//!   while any view is registered. Effect application at tick end and
//!   snapshot/WAL recovery mutate the world through those same
//!   primitives, so they need no extra hooks.
//! * **Membership from current state** — a refresh re-evaluates the
//!   standing query against the *post-batch* world for every candidate
//!   entity, so stale or duplicate deltas can never corrupt a view; the
//!   log's old values exist for relevance filtering and observability,
//!   not as the source of truth.
//! * **Changelog ordering determinism** — within one refresh batch,
//!   `entered`, `exited`, and `changed` are each sorted by entity id and
//!   duplicate-free; successive batches append in refresh order. Two
//!   worlds with identical write histories produce identical changelogs.
//! * **Cost-based fallback** — when a delta batch touches more rows than
//!   the planner expects a fresh evaluation to cost (churn large relative
//!   to view selectivity), the refresh falls back to a planner-driven
//!   rescan ([`crate::planner::plan`]) and diffs the result — same
//!   changelog semantics, better complexity.
//!
//! The equivalence contract — materialized rows ≡ `Query::run_scan` after
//! every refresh, under arbitrary interleavings of writes, removals,
//! despawns, template spawns, and ticks — is enforced by the property
//! tests in `tests/prop_core.rs`.

use crate::change::{Change, ChangeOp};
use crate::dvm::{GroupChangelog, GroupRow, PairChangelog, PlanView, ViewPlan};
use crate::entity::EntityId;
use crate::metrics::CoreMetrics;
use crate::planner::{plan, TableStats};
use crate::query::Query;
use crate::world::World;

/// Handle to a registered standing view. Ids are scoped to the world
/// (lineage) that issued them and slots are never reused, so a handle
/// presented to the wrong world or outliving
/// [`crate::world::World::drop_view`] is detectably stale rather than
/// silently rebound to an unrelated view. Clones of a world share its
/// lineage: a handle taken before the clone reads either copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId {
    pub(crate) world: u64,
    pub(crate) slot: u32,
}

impl ViewId {
    /// Slot index within the issuing world's registry — the stable
    /// address catalog records and recovery use
    /// ([`crate::world::World::view_id_at`] resolves it back).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

/// Membership changes a view accumulated since its changelog was last
/// taken — the per-tick changelog when consumed once per tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Changelog {
    /// Rows that joined the view (predicate became true / entity spawned
    /// into it). Sorted by id within each refresh batch.
    pub entered: Vec<EntityId>,
    /// Rows that left the view (predicate became false, component
    /// removed, entity despawned or excluded by a retarget).
    pub exited: Vec<EntityId>,
    /// Rows that stayed in the view but had at least one component delta
    /// this batch (any component — subscribers shipping state want every
    /// touched member, not only predicate columns).
    pub changed: Vec<EntityId>,
    /// How many of the contributing refresh batches used the rescan
    /// fallback instead of incremental maintenance.
    pub rescans: usize,
}

impl Changelog {
    /// True when nothing entered, exited, or changed.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.exited.is_empty() && self.changed.is_empty()
    }

    pub(crate) fn absorb_batch(
        &mut self,
        entered: Vec<EntityId>,
        exited: Vec<EntityId>,
        changed: Vec<EntityId>,
        rescanned: bool,
    ) {
        self.entered.extend(entered);
        self.exited.extend(exited);
        self.changed.extend(changed);
        if rescanned {
            self.rescans += 1;
        }
    }
}

/// Maintenance counters for one view.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViewStats {
    /// Refresh batches folded into this view.
    pub refreshes: u64,
    /// Batches that fell back to a planner-driven rescan (always 0 for
    /// operator-tree views — they have no rescan path).
    pub rescans: u64,
    /// Deltas inspected across all batches (relevant or not).
    pub deltas_seen: u64,
    /// Output delta rows this view emitted across all batches (row
    /// membership events; pair or group changes for operator views) —
    /// the per-view delta-batch size the metrics catalog surfaces as
    /// `view.s{slot}.delta_rows`.
    pub delta_rows: u64,
}

/// Apply a sorted membership diff to a sorted row set: `entered` holds
/// ids absent from `old`, `exited` ids present in it; all three inputs
/// are ascending. O(|old| + |entered|).
/// Per-batch fold context shared by every view refresh: the entities a
/// change-stream segment touched, its structural (spawn/despawn) subset,
/// its per-component deltas (sorted by component then id, deduped), and
/// the row-op count.
#[derive(Clone, Copy)]
pub(crate) struct FoldCtx<'a> {
    pub(crate) touched: &'a [EntityId],
    pub(crate) structural: &'a [EntityId],
    pub(crate) comp_deltas: &'a [(crate::intern::ComponentId, EntityId)],
    pub(crate) batch_len: usize,
}

pub(crate) fn apply_diff(
    old: &[EntityId],
    entered: &[EntityId],
    exited: &[EntityId],
) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(old.len() + entered.len() - exited.len());
    let (mut e, mut x) = (0usize, 0usize);
    for &id in old {
        while e < entered.len() && entered[e] < id {
            out.push(entered[e]);
            e += 1;
        }
        if x < exited.len() && exited[x] == id {
            x += 1;
            continue;
        }
        out.push(id);
    }
    out.extend_from_slice(&entered[e..]);
    out
}

/// Diff two sorted row sets into `(entered, exited)`.
fn diff_sorted(old: &[EntityId], new: &[EntityId]) -> (Vec<EntityId>, Vec<EntityId>) {
    let mut entered = Vec::new();
    let mut exited = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&o), Some(&n)) if o == n => {
                i += 1;
                j += 1;
            }
            (Some(&o), Some(&n)) if o < n => {
                exited.push(o);
                i += 1;
            }
            (Some(_), Some(&n)) => {
                entered.push(n);
                j += 1;
            }
            (Some(&o), None) => {
                exited.push(o);
                i += 1;
            }
            (None, Some(&n)) => {
                entered.push(n);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (entered, exited)
}

/// One registered standing query with its materialized rows, stored as a
/// sorted vector: membership tests are binary searches, diffs are merges,
/// and subscribers borrow the slice without allocating.
#[derive(Debug, Clone)]
struct StandingView {
    query: Query,
    rows: Vec<EntityId>,
    log: Changelog,
    stats: ViewStats,
}

impl StandingView {
    fn new(query: Query, initial: Vec<EntityId>) -> Self {
        StandingView {
            query,
            rows: initial,
            log: Changelog::default(),
            stats: ViewStats::default(),
        }
    }

    /// Interned ids of the components whose deltas can change
    /// membership of this view, resolved against `world` (unknown
    /// predicate components resolve to nothing — they can never match).
    fn tracked_ids(&self, world: &World) -> Vec<crate::intern::ComponentId> {
        let mut ids: Vec<crate::intern::ComponentId> = self
            .query
            .predicates()
            .iter()
            .filter_map(|p| world.component_id(&p.component))
            .collect();
        if self.query.spatial().is_some() {
            ids.push(crate::world::POS_ID);
        }
        ids
    }

    /// Planner-driven re-evaluation, diffed against the current rows.
    fn rescan_diff(&mut self, world: &World) -> (Vec<EntityId>, Vec<EntityId>) {
        let chosen = plan(&self.query, &TableStats::for_query(world, &self.query));
        if let Some(m) = world.core_metrics() {
            m.note_access(&chosen.access);
            m.view_rescans.inc();
        }
        let new_rows = chosen.run(world);
        let (entered, exited) = diff_sorted(&self.rows, &new_rows);
        self.rows = new_rows;
        self.stats.rescans += 1;
        (entered, exited)
    }

    /// Fold one delta batch into the view. The [`FoldCtx`] (sorted,
    /// deduped) is computed once per batch and shared across all views.
    fn refresh(&mut self, world: &World, ctx: &FoldCtx<'_>, slot: usize, metrics: Option<&CoreMetrics>) {
        let FoldCtx { touched, structural, comp_deltas, batch_len } = *ctx;
        self.stats.refreshes += 1;
        self.stats.deltas_seen += batch_len as u64;

        // Candidate rows whose membership could have flipped: structural
        // deltas affect every view; component deltas only views tracking
        // that component. Predicate names resolve to interned ids once
        // per batch, so the per-delta test is an integer compare.
        let tracked = self.tracked_ids(world);
        let mut candidates: Vec<EntityId> = structural.to_vec();
        let mut i = 0;
        while i < comp_deltas.len() {
            let comp = comp_deltas[i].0;
            let start = i;
            while i < comp_deltas.len() && comp_deltas[i].0 == comp {
                i += 1;
            }
            if tracked.contains(&comp) {
                candidates.extend(comp_deltas[start..i].iter().map(|&(_, e)| e));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        let (entered, exited, rescanned) = if candidates.is_empty() {
            (Vec::new(), Vec::new(), false)
        } else {
            // Cost model, in the planner's row-visit units: incremental
            // maintenance pays one membership evaluation per candidate;
            // a rescan pays the planner's estimate for a fresh run plus
            // the diff against the current rows. When churn is large
            // relative to view selectivity the rescan wins (e.g. an
            // indexed 0.1% view under a 90% write storm).
            let per_row =
                1.0 + self.query.predicates().len() as f64
                    + if self.query.spatial().is_some() { 1.0 } else { 0.0 };
            let incremental_cost = candidates.len() as f64 * per_row;
            let chosen = plan(&self.query, &TableStats::for_query(world, &self.query));
            let rescan_cost = chosen.est_cost + self.rows.len() as f64;
            if incremental_cost > rescan_cost {
                if let Some(m) = metrics {
                    m.note_access(&chosen.access);
                }
                let new_rows = chosen.run(world);
                let (entered, exited) = diff_sorted(&self.rows, &new_rows);
                self.rows = new_rows;
                self.stats.rescans += 1;
                (entered, exited, true)
            } else {
                let matcher = self.query.matcher(world);
                let mut entered = Vec::new();
                let mut exited = Vec::new();
                // candidates are sorted, so entered/exited come out
                // sorted; `rows` stays untouched until the diff applies.
                for &c in &candidates {
                    let was = self.rows.binary_search(&c).is_ok();
                    let now = matcher(c);
                    if now && !was {
                        entered.push(c);
                    } else if !now && was {
                        exited.push(c);
                    }
                }
                if !entered.is_empty() || !exited.is_empty() {
                    self.rows = apply_diff(&self.rows, &entered, &exited);
                }
                (entered, exited, false)
            }
        };

        // `changed`: touched rows that are (still) members and did not
        // just enter — `touched` is sorted, so the output is too.
        let changed: Vec<EntityId> = touched
            .iter()
            .copied()
            .filter(|t| self.rows.binary_search(t).is_ok() && entered.binary_search(t).is_err())
            .collect();

        let delta_rows = (entered.len() + exited.len() + changed.len()) as u64;
        self.stats.delta_rows += delta_rows;
        if let Some(m) = metrics {
            m.view_refreshes.inc();
            m.view_deltas.add(batch_len as u64);
            m.view_candidates.observe(candidates.len() as u64);
            if rescanned {
                m.view_rescans.inc();
            } else {
                m.view_incremental.inc();
            }
            m.view_entered.add(entered.len() as u64);
            m.view_exited.add(exited.len() as u64);
            m.view_changed.add(changed.len() as u64);
            let per_slot = m.view_slot(slot);
            per_slot.refreshes.inc();
            per_slot.candidates.add(candidates.len() as u64);
            per_slot.delta_rows.add(delta_rows);
            if rescanned {
                per_slot.rescans.inc();
            }
        }

        self.log.absorb_batch(entered, exited, changed, rescanned);
    }

    /// Replace the spatial restriction and rescan-diff the view.
    fn retarget(&mut self, world: &World, center: gamedb_spatial::Vec2, radius: f32) {
        self.query.retarget_within(center, radius);
        let (entered, exited) = self.rescan_diff(world);
        self.stats.refreshes += 1;
        if let Some(m) = world.core_metrics() {
            m.view_refreshes.inc();
        }
        self.log.absorb_batch(entered, exited, Vec::new(), true);
    }
}

/// One occupied registry slot: a legacy single-table standing view or
/// an operator-tree view ([`crate::dvm`]). Both kinds share the slot
/// space, the catalog's slot-stability contract, and the change-stream
/// fold; they differ in what they materialize.
#[derive(Debug, Clone)]
enum Slot {
    Table(StandingView),
    Plan(Box<PlanView>),
}

/// The set of standing views a world maintains. Owned by
/// [`crate::world::World`]; callers go through the world's `*_view`
/// methods, which keep delta recording and consumption in lockstep.
#[derive(Debug, Clone, Default)]
pub struct ViewRegistry {
    /// Slot per ever-registered view; dropped views leave `None` so ids
    /// stay stable.
    slots: Vec<Option<Slot>>,
    active: usize,
}

impl ViewRegistry {
    /// True when at least one view is registered (the world records
    /// deltas only then).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active > 0
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.active
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    pub(crate) fn register(&mut self, world_id: u64, query: Query, initial: Vec<EntityId>) -> ViewId {
        let id = ViewId {
            world: world_id,
            slot: self.slots.len() as u32,
        };
        self.slots.push(Some(Slot::Table(StandingView::new(query, initial))));
        self.active += 1;
        id
    }

    pub(crate) fn register_plan(&mut self, world_id: u64, view: PlanView) -> ViewId {
        let id = ViewId {
            world: world_id,
            slot: self.slots.len() as u32,
        };
        self.slots.push(Some(Slot::Plan(Box::new(view))));
        self.active += 1;
        id
    }

    /// Total slots ever issued, including dropped ones (the catalog
    /// records this so recovery burns the same slots and stale handles
    /// stay stale).
    pub(crate) fn slot_count(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Iterate `(slot, query)` over live single-table views in slot
    /// order (the catalog's `views` section).
    pub(crate) fn live_slots(&self) -> impl Iterator<Item = (u32, &Query)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Some(Slot::Table(v)) => Some((i as u32, &v.query)),
            _ => None,
        })
    }

    /// Iterate `(slot, plan)` over live operator-tree views in slot
    /// order (the catalog's `plan_views` section).
    pub(crate) fn live_plan_slots(&self) -> impl Iterator<Item = (u32, &ViewPlan)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Some(Slot::Plan(v)) => Some((i as u32, v.plan())),
            _ => None,
        })
    }

    /// Pad the slot table with dead slots up to `slots` total — recovery
    /// reserves every slot the pre-crash world ever issued before
    /// re-registering the live ones.
    pub(crate) fn reserve_slots(&mut self, slots: u32) {
        while self.slots.len() < slots as usize {
            self.slots.push(None);
        }
    }

    /// Install a single-table view at an exact slot (recovery). The slot
    /// must be dead and within the reserved table; returns `false` when
    /// it is live.
    pub(crate) fn install_at_slot(&mut self, slot: u32, query: Query, initial: Vec<EntityId>) -> bool {
        self.reserve_slots(slot + 1);
        let entry = &mut self.slots[slot as usize];
        if entry.is_some() {
            return false;
        }
        *entry = Some(Slot::Table(StandingView::new(query, initial)));
        self.active += 1;
        true
    }

    /// Install an operator-tree view at an exact slot (recovery).
    pub(crate) fn install_plan_at_slot(&mut self, slot: u32, view: PlanView) -> bool {
        self.reserve_slots(slot + 1);
        let entry = &mut self.slots[slot as usize];
        if entry.is_some() {
            return false;
        }
        *entry = Some(Slot::Plan(Box::new(view)));
        self.active += 1;
        true
    }

    /// The standing query at a slot, if the slot holds a live
    /// single-table view.
    pub(crate) fn query_at_slot(&self, slot: u32) -> Option<&Query> {
        match self.slots.get(slot as usize).and_then(|s| s.as_ref()) {
            Some(Slot::Table(v)) => Some(&v.query),
            _ => None,
        }
    }

    /// The operator tree at a slot, if the slot holds a live plan view.
    pub(crate) fn plan_at_slot(&self, slot: u32) -> Option<&ViewPlan> {
        match self.slots.get(slot as usize).and_then(|s| s.as_ref()) {
            Some(Slot::Plan(v)) => Some(v.plan()),
            _ => None,
        }
    }

    /// Drop every accumulated changelog — recovery re-anchors subscribers
    /// to the recovered materialization instead of replaying pre-crash
    /// history at them.
    pub(crate) fn clear_changelogs(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            match slot {
                Slot::Table(v) => v.log = Changelog::default(),
                Slot::Plan(v) => v.clear_logs(),
            }
        }
    }

    pub(crate) fn drop_view(&mut self, id: ViewId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.active -= 1;
                true
            }
            _ => false,
        }
    }

    fn get(&self, id: ViewId) -> &Slot {
        self.slots
            .get(id.slot as usize)
            .and_then(|s| s.as_ref())
            .unwrap_or_else(|| panic!("view {id:?} is not registered"))
    }

    fn get_mut(&mut self, id: ViewId) -> &mut Slot {
        self.slots
            .get_mut(id.slot as usize)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("view {id:?} is not registered"))
    }

    fn table(&self, id: ViewId) -> &StandingView {
        match self.get(id) {
            Slot::Table(v) => v,
            Slot::Plan(_) => {
                panic!("view {id:?} is an operator-tree view; use the plan-view accessors")
            }
        }
    }

    fn plan_view(&self, id: ViewId) -> &PlanView {
        match self.get(id) {
            Slot::Plan(v) => v,
            Slot::Table(_) => {
                panic!("view {id:?} is a single-table view; use the query-view accessors")
            }
        }
    }

    fn plan_view_mut(&mut self, id: ViewId) -> &mut PlanView {
        match self.get_mut(id) {
            Slot::Plan(v) => v,
            Slot::Table(_) => {
                panic!("view {id:?} is a single-table view; use the query-view accessors")
            }
        }
    }

    pub(crate) fn contains_view(&self, id: ViewId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| s.is_some())
    }

    pub(crate) fn rows(&self, id: ViewId) -> &[EntityId] {
        match self.get(id) {
            Slot::Table(v) => &v.rows,
            Slot::Plan(v) => v
                .rows()
                .unwrap_or_else(|| panic!("view {id:?} does not materialize entity rows")),
        }
    }

    pub(crate) fn contains_row(&self, id: ViewId, e: EntityId) -> bool {
        match self.get(id) {
            Slot::Table(v) => v.rows.binary_search(&e).is_ok(),
            Slot::Plan(v) => v.contains_row(e),
        }
    }

    pub(crate) fn query(&self, id: ViewId) -> &Query {
        &self.table(id).query
    }

    /// The operator tree behind `id`, when it is a plan view.
    pub(crate) fn plan(&self, id: ViewId) -> Option<&ViewPlan> {
        match self.get(id) {
            Slot::Plan(v) => Some(v.plan()),
            Slot::Table(_) => None,
        }
    }

    pub(crate) fn pairs(&self, id: ViewId) -> &[(EntityId, EntityId)] {
        self.plan_view(id)
            .pairs()
            .unwrap_or_else(|| panic!("view {id:?} does not materialize join pairs"))
    }

    pub(crate) fn groups(&self, id: ViewId) -> &[GroupRow] {
        self.plan_view(id)
            .groups()
            .unwrap_or_else(|| panic!("view {id:?} does not materialize group rows"))
    }

    pub(crate) fn retract_recomputes(&self, id: ViewId) -> u64 {
        self.plan_view(id).retract_recomputes()
    }

    pub(crate) fn plan_output(&self, id: ViewId) -> crate::dvm::PlanOutput {
        self.plan_view(id).output()
    }

    pub(crate) fn changelog(&self, id: ViewId) -> &Changelog {
        match self.get(id) {
            Slot::Table(v) => &v.log,
            Slot::Plan(v) => v
                .rows_log()
                .unwrap_or_else(|| panic!("view {id:?} does not produce a row changelog")),
        }
    }

    pub(crate) fn take_changelog(&mut self, id: ViewId) -> Changelog {
        match self.get_mut(id) {
            Slot::Table(v) => std::mem::take(&mut v.log),
            Slot::Plan(v) => v
                .take_rows_log()
                .unwrap_or_else(|| panic!("view {id:?} does not produce a row changelog")),
        }
    }

    pub(crate) fn pair_changelog(&self, id: ViewId) -> &PairChangelog {
        self.plan_view(id)
            .pair_log()
            .unwrap_or_else(|| panic!("view {id:?} does not produce a pair changelog"))
    }

    pub(crate) fn take_pair_changelog(&mut self, id: ViewId) -> PairChangelog {
        self.plan_view_mut(id)
            .take_pair_log()
            .unwrap_or_else(|| panic!("view {id:?} does not produce a pair changelog"))
    }

    pub(crate) fn group_changelog(&self, id: ViewId) -> &GroupChangelog {
        self.plan_view(id)
            .group_log()
            .unwrap_or_else(|| panic!("view {id:?} does not produce a group changelog"))
    }

    pub(crate) fn take_group_changelog(&mut self, id: ViewId) -> GroupChangelog {
        self.plan_view_mut(id)
            .take_group_log()
            .unwrap_or_else(|| panic!("view {id:?} does not produce a group changelog"))
    }

    pub(crate) fn stats(&self, id: ViewId) -> ViewStats {
        match self.get(id) {
            Slot::Table(v) => v.stats,
            Slot::Plan(v) => v.stats(),
        }
    }

    /// Fold one pending change-stream segment into every view. Only row
    /// ops participate (catalog and tick records pass through untouched
    /// — they exist for the stream's other taps). `world` is the
    /// post-segment state (the registry is temporarily moved out of the
    /// world while this runs, which is invisible here: refresh only
    /// reads columns, indexes, and the spatial grid). `metrics` is
    /// threaded in explicitly because the change stream — where the
    /// handle lives — is *also* moved out of the world during the fold,
    /// so `world.core_metrics()` would read `None` here.
    pub(crate) fn apply(
        &mut self,
        world: &World,
        changes: &[Change],
        metrics: Option<&CoreMetrics>,
    ) {
        if changes.is_empty() || self.active == 0 {
            return;
        }
        let mut touched: Vec<EntityId> = Vec::with_capacity(changes.len());
        let mut structural: Vec<EntityId> = Vec::new();
        let mut comp_deltas: Vec<(crate::intern::ComponentId, EntityId)> =
            Vec::with_capacity(changes.len());
        let mut row_ops = 0usize;
        for c in changes {
            match &c.op {
                ChangeOp::Spawned { id } | ChangeOp::Despawned { id, .. } => {
                    touched.push(*id);
                    structural.push(*id);
                    row_ops += 1;
                }
                ChangeOp::Set { id, component, .. }
                | ChangeOp::Removed { id, component, .. } => {
                    touched.push(*id);
                    comp_deltas.push((*component, *id));
                    row_ops += 1;
                }
                _ => {}
            }
        }
        if row_ops == 0 {
            return;
        }
        touched.sort_unstable();
        touched.dedup();
        structural.sort_unstable();
        structural.dedup();
        comp_deltas.sort_unstable();
        comp_deltas.dedup();
        let ctx = FoldCtx {
            touched: &touched,
            structural: &structural,
            comp_deltas: &comp_deltas,
            batch_len: row_ops,
        };
        for (slot, entry) in self.slots.iter_mut().enumerate() {
            match entry {
                Some(Slot::Table(view)) => view.refresh(world, &ctx, slot, metrics),
                Some(Slot::Plan(view)) => view.refresh(world, &ctx, slot, metrics),
                None => {}
            }
        }
    }

    pub(crate) fn retarget(
        &mut self,
        world: &World,
        id: ViewId,
        center: gamedb_spatial::Vec2,
        radius: f32,
    ) {
        // Move the view out of the slot so the rescan can read a
        // registry-free world without aliasing it.
        let slot = self.slots[id.slot as usize]
            .take()
            .unwrap_or_else(|| panic!("view {id:?} is not registered"));
        let mut view = match slot {
            Slot::Table(v) => v,
            Slot::Plan(_) => panic!(
                "view {id:?} is an operator-tree view; spatial joins follow their \
                 anchor's position deltas instead of retargeting"
            ),
        };
        view.retarget(world, center, radius);
        self.slots[id.slot as usize] = Some(Slot::Table(view));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::{Effect, EffectBuffer, SpawnRequest};
    use crate::exec::TickExecutor;
    use crate::index::IndexKind;
    use gamedb_content::{CmpOp, Value, ValueType};
    use gamedb_spatial::Vec2;

    fn world_with(components: &[(&str, ValueType)]) -> World {
        let mut w = World::new();
        for (n, t) in components {
            w.define_component(n, *t).unwrap();
        }
        w
    }

    fn wounded_query() -> Query {
        Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0))
    }

    #[test]
    fn register_materializes_existing_rows() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(b, "hp", 90.0).unwrap();
        let v = w.register_view(wounded_query());
        assert_eq!(w.view_rows(v), &[a]);
        assert!(w.view_contains(v, a));
        assert!(!w.view_contains(v, b));
        assert!(w.view_changelog(v).is_empty(), "initial rows are not events");
    }

    #[test]
    fn writes_enter_and_exit_the_view() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 80.0).unwrap();
        w.set_f32(b, "hp", 80.0).unwrap();
        let v = w.register_view(wounded_query());
        assert!(w.view_rows(v).is_empty());

        w.set_f32(a, "hp", 20.0).unwrap(); // enters
        w.set_f32(b, "hp", 70.0).unwrap(); // stays out
        assert_eq!(w.pending_deltas(), 2);
        w.refresh_views();
        assert_eq!(w.pending_deltas(), 0);
        assert_eq!(w.view_rows(v), &[a]);
        let log = w.take_view_changelog(v);
        assert_eq!(log.entered, vec![a]);
        assert!(log.exited.is_empty());

        w.set_f32(a, "hp", 60.0).unwrap(); // exits
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert_eq!(log.exited, vec![a]);
        assert!(w.view_rows(v).is_empty());
    }

    #[test]
    fn changed_rows_reported_for_any_component() {
        let mut w = world_with(&[("hp", ValueType::Float), ("gold", ValueType::Int)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        let v = w.register_view(wounded_query());
        // a non-predicate component write on a member → changed, not a
        // membership event
        w.set(a, "gold", Value::Int(5)).unwrap();
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert!(log.entered.is_empty() && log.exited.is_empty());
        assert_eq!(log.changed, vec![a]);
        // a predicate write that keeps membership → changed as well
        w.set_f32(a, "hp", 11.0).unwrap();
        w.refresh_views();
        assert_eq!(w.take_view_changelog(v).changed, vec![a]);
    }

    #[test]
    fn removals_despawns_and_spawns_flow_through() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        let v = w.register_view(wounded_query());

        w.remove_component(a, "hp").unwrap();
        w.refresh_views();
        assert_eq!(w.take_view_changelog(v).exited, vec![a]);

        let b = w.spawn_at(Vec2::ZERO);
        w.set_f32(b, "hp", 1.0).unwrap();
        w.refresh_views();
        assert_eq!(w.take_view_changelog(v).entered, vec![b]);

        w.despawn(b);
        w.refresh_views();
        assert_eq!(w.take_view_changelog(v).exited, vec![b]);
        assert!(w.view_rows(v).is_empty());
    }

    #[test]
    fn enter_and_exit_within_one_batch_cancel_out() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 80.0).unwrap();
        let v = w.register_view(wounded_query());
        w.set_f32(a, "hp", 10.0).unwrap();
        w.set_f32(a, "hp", 90.0).unwrap();
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert!(log.entered.is_empty(), "net membership did not change");
        assert!(log.exited.is_empty());
        assert!(w.view_rows(v).is_empty());
    }

    #[test]
    fn spatial_views_track_movement() {
        let mut w = World::new();
        let a = w.spawn_at(Vec2::new(0.0, 0.0));
        let b = w.spawn_at(Vec2::new(100.0, 0.0));
        let v = w.register_view(Query::select().within(Vec2::ZERO, 10.0));
        assert_eq!(w.view_rows(v), &[a]);
        w.set_pos(b, Vec2::new(5.0, 0.0)).unwrap();
        w.set_pos(a, Vec2::new(50.0, 0.0)).unwrap();
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert_eq!(log.entered, vec![b]);
        assert_eq!(log.exited, vec![a]);
        assert_eq!(w.view_rows(v), &[b]);
    }

    #[test]
    fn retarget_rediffs_the_view() {
        let mut w = World::new();
        let a = w.spawn_at(Vec2::new(0.0, 0.0));
        let b = w.spawn_at(Vec2::new(100.0, 0.0));
        let v = w.register_view(Query::select().within(Vec2::ZERO, 10.0));
        assert_eq!(w.view_rows(v), &[a]);
        w.retarget_view(v, Vec2::new(100.0, 0.0), 10.0);
        let log = w.take_view_changelog(v);
        assert_eq!(log.entered, vec![b]);
        assert_eq!(log.exited, vec![a]);
        assert_eq!(log.rescans, 1);
        assert_eq!(w.view_rows(v), &[b]);
    }

    #[test]
    fn ticks_refresh_views_automatically() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 60.0).unwrap();
        let v = w.register_view(wounded_query());
        let drain: &crate::exec::System<'_> = &|id, _w, buf: &mut EffectBuffer| {
            buf.push(id, "hp", Effect::Add(-20.0));
        };
        TickExecutor::sequential().run_tick(&mut w, &[drain]).unwrap();
        // effect applied at tick end, view refreshed by the tick bump
        assert_eq!(w.pending_deltas(), 0);
        assert_eq!(w.take_view_changelog(v).entered, vec![a]);

        // spawns queued through effects land in the view the same tick
        let spawner: &crate::exec::System<'_> = &|_id, _w, buf: &mut EffectBuffer| {
            buf.spawn(SpawnRequest {
                components: vec![("hp".into(), Value::Float(5.0))],
                pos: Vec2::ZERO,
            });
        };
        TickExecutor::sequential().run_tick(&mut w, &[spawner]).unwrap();
        let log = w.take_view_changelog(v);
        assert_eq!(log.entered.len(), 1);
        assert_eq!(w.view_rows(v).len(), 2);
    }

    #[test]
    fn large_batches_fall_back_to_rescan() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let ids: Vec<EntityId> = (0..500)
            .map(|i| {
                let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                w.set_f32(e, "hp", 100.0).unwrap();
                e
            })
            .collect();
        let v = w.register_view(wounded_query());
        // touch every row: incremental would evaluate 500 candidates,
        // the indexed rescan is priced far below that
        for &e in &ids {
            w.set_f32(e, "hp", if e.index() % 100 == 0 { 10.0 } else { 99.0 }).unwrap();
        }
        w.refresh_views();
        let stats = w.view_stats(v);
        assert_eq!(stats.rescans, 1, "write storm must trigger the rescan path");
        let log = w.take_view_changelog(v);
        assert_eq!(log.rescans, 1);
        assert_eq!(log.entered.len(), 5);
        assert_eq!(w.view_rows(v).len(), 5);
        assert_eq!(
            w.view_rows(v).to_vec(),
            wounded_query().run_scan(&w),
            "rescan fallback must agree with the oracle"
        );
    }

    #[test]
    fn small_batches_stay_incremental() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        for i in 0..500 {
            let e = w.spawn_at(Vec2::new(i as f32, 0.0));
            w.set_f32(e, "hp", 100.0).unwrap();
        }
        let v = w.register_view(wounded_query());
        let victim = w.entities().next().unwrap();
        w.set_f32(victim, "hp", 1.0).unwrap();
        w.refresh_views();
        let stats = w.view_stats(v);
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.rescans, 0, "one delta must not rescan 500 rows");
        assert_eq!(w.view_rows(v), &[victim]);
    }

    #[test]
    fn irrelevant_component_writes_do_not_reevaluate() {
        let mut w = world_with(&[("hp", ValueType::Float), ("gold", ValueType::Int)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 90.0).unwrap();
        let v = w.register_view(wounded_query());
        w.set(a, "gold", Value::Int(1)).unwrap();
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert!(log.is_empty(), "non-member touched by irrelevant write: no events");
        let _ = v;
    }

    #[test]
    fn drop_view_stops_recording_and_invalidates_handle() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let v = w.register_view(wounded_query());
        assert!(w.has_view(v));
        assert!(w.drop_view(v));
        assert!(!w.has_view(v));
        assert!(!w.drop_view(v));
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 1.0).unwrap();
        assert_eq!(w.pending_deltas(), 0, "no views ⇒ no delta recording");
        // a second registration gets a fresh id
        let v2 = w.register_view(wounded_query());
        assert_ne!(v, v2);
        assert_eq!(w.view_rows(v2), &[e]);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_membership() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 1.0).unwrap();
        let v = w.register_view(wounded_query());
        assert_eq!(w.view_rows(v), &[a]);
        w.despawn(a);
        let b = w.spawn(); // reuses a's slot, bumped generation
        assert_eq!(b.index(), a.index());
        w.refresh_views();
        let log = w.take_view_changelog(v);
        assert_eq!(log.exited, vec![a]);
        assert!(w.view_rows(v).is_empty(), "new tenant has no hp");
    }

    #[test]
    fn changelog_peek_does_not_consume() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let v = w.register_view(wounded_query());
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 1.0).unwrap();
        w.refresh_views();
        assert_eq!(w.view_changelog(v).entered, vec![a]);
        assert_eq!(w.view_changelog(v).entered, vec![a], "peek is repeatable");
        assert_eq!(w.take_view_changelog(v).entered, vec![a]);
        assert!(w.view_changelog(v).is_empty(), "take clears the log");
    }

    #[test]
    fn foreign_view_handles_are_rejected() {
        let mut w1 = world_with(&[("hp", ValueType::Float)]);
        let mut w2 = world_with(&[("hp", ValueType::Float)]);
        let v1 = w1.register_view(wounded_query());
        // w2 registers a view occupying the same slot index
        let v2 = w2.register_view(Query::select());
        let e = w2.spawn_at(Vec2::ZERO);
        w2.refresh_views();
        assert_eq!(w2.view_rows(v2), &[e]);
        // a w1 handle must never resolve against w2's slot 0
        assert!(!w2.has_view(v1));
        assert!(!w2.drop_view(v1));
        assert!(
            std::panic::catch_unwind(|| w2.view_rows(v1).len()).is_err(),
            "foreign handle must panic, not read an unrelated view"
        );
        // a clone shares the lineage: pre-clone handles read the copy
        let clone = w1.clone();
        assert!(clone.has_view(v1));
    }

    #[test]
    fn view_query_is_inspectable() {
        let mut w = world_with(&[("hp", ValueType::Float)]);
        let q = wounded_query();
        let v = w.register_view(q.clone());
        assert_eq!(w.view_query(v), &q);
    }
}
