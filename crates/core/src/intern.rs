//! Component-name interning: small-int column ids for the hot write
//! path.
//!
//! Before interning, every change record cloned its component name as a
//! `String` — one heap allocation per recorded write, and a 4-byte
//! length prefix plus the name bytes in every WAL frame and replication
//! row. A [`ComponentId`] is the column's position in the world's
//! definition order: records, WAL frames, and replication delta
//! segments all carry the id, and only the schema (snapshot catalog +
//! WAL `Define` records) carries the name once.
//!
//! Ids are **world-lineage-scoped**: a clone shares its origin's
//! interner, so ids recorded before a clone resolve against either
//! copy, and recovery restores the table verbatim (snapshot v3 writes
//! the schema in id order; components defined after the snapshot are
//! re-interned at their exact ids by WAL `Define` redo records).
//! Columns are never undefined, so ids are dense and stable for the
//! life of the lineage. The reserved `pos` column is always id 0
//! ([`ComponentId::POS`]).

use std::collections::BTreeMap;

/// Interned component name — an index into the world's column table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The reserved `pos` column: always the first component interned.
    pub const POS: ComponentId = ComponentId(0);

    /// The raw id (the column's position in definition order).
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuild an id from its raw value (persistence decode). The id is
    /// only meaningful against the interner that issued it.
    #[inline]
    pub fn from_u32(raw: u32) -> ComponentId {
        ComponentId(raw)
    }

    /// The column-table index this id addresses.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The name ↔ id table. Names map to ids through a sorted map (the
/// same O(log n) lookup the old name-keyed column map paid), ids map
/// back through a dense vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct ComponentInterner {
    by_name: BTreeMap<String, ComponentId>,
    names: Vec<String>,
}

impl ComponentInterner {
    /// Assign the next id to `name`. The caller checks for duplicates
    /// (interning is 1:1 with column definition).
    pub fn intern(&mut self, name: &str) -> ComponentId {
        debug_assert!(!self.by_name.contains_key(name));
        let id = ComponentId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Id of a name, if interned.
    #[inline]
    pub fn get(&self, name: &str) -> Option<ComponentId> {
        self.by_name.get(name).copied()
    }

    /// Name of an id, if issued.
    #[inline]
    pub fn name(&self, id: ComponentId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned components (== columns defined).
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Iterate `(name, id)` in name order (schema listings).
    pub fn iter_by_name(&self) -> impl Iterator<Item = (&str, ComponentId)> {
        self.by_name.iter().map(|(n, id)| (n.as_str(), *id))
    }

    /// Iterate `(id, name)` in id (definition) order — the durable table
    /// layout snapshots persist.
    pub fn iter_by_id(&self) -> impl Iterator<Item = (ComponentId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ComponentId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_definition_order() {
        let mut i = ComponentInterner::default();
        let pos = i.intern("pos");
        let hp = i.intern("hp");
        let aa = i.intern("aa");
        assert_eq!(pos, ComponentId::POS);
        assert_eq!(hp.as_u32(), 1);
        assert_eq!(aa.as_u32(), 2);
        assert_eq!(i.get("hp"), Some(hp));
        assert_eq!(i.get("mana"), None);
        assert_eq!(i.name(hp), Some("hp"));
        assert_eq!(i.name(ComponentId(9)), None);
        assert_eq!(i.len(), 3);
        // name order and id order are independent
        let by_name: Vec<&str> = i.iter_by_name().map(|(n, _)| n).collect();
        assert_eq!(by_name, vec!["aa", "hp", "pos"]);
        let by_id: Vec<&str> = i.iter_by_id().map(|(_, n)| n).collect();
        assert_eq!(by_id, vec!["pos", "hp", "aa"]);
    }

    #[test]
    fn roundtrip_raw() {
        let id = ComponentId::from_u32(7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(format!("{id}"), "#7");
    }
}
