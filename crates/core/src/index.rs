//! Secondary attribute indexes over component columns.
//!
//! The paper's thesis — game state is a database, game logic is query
//! processing — makes scan-bound predicates like `hp < 200` over millions
//! of entities the first scaling wall. The seed engine indexed only the
//! reserved `pos` column; this module adds what a database would: per-
//! component secondary indexes, registered with [`World::create_index`]
//! (`crate::World::create_index`), maintained through every write path,
//! and consulted by the planner as a third access path next to full scans
//! and spatial probes.
//!
//! Two physical structures are offered, mirroring the classic hash/B-tree
//! split:
//!
//! * [`IndexKind::Hash`] — `HashMap` buckets; supports equality probes
//!   only, O(1) per lookup. The right choice for high-cardinality
//!   identity-like components (`owner`, `guild`, `class`).
//! * [`IndexKind::Sorted`] — `BTreeMap` buckets; supports equality *and*
//!   range probes (`<`, `<=`, `>`, `>=`), O(log n + k). The right choice
//!   for numeric gameplay attributes (`hp`, `level`, `threat`).
//!
//! ## Key encoding and probe/scan equivalence
//!
//! The correctness contract — relied on by the planner and enforced by
//! property tests — is that a probe returns **exactly** the entities a
//! full scan with [`crate::query::compare`] would keep. Keys are therefore
//! encoded in the comparison domain `compare` uses, not the storage
//! domain:
//!
//! * Numeric columns (float/int) key on the `f64` coercion of the value,
//!   bit-twiddled into a totally ordered integer ([`OrdF64`]). A query
//!   literal `3.5` probes an int column correctly, and `-0.0` folds onto
//!   `0.0` just like `==` does.
//! * `NaN` values compare false under every operator, so they are never
//!   inserted; a `NaN` probe returns nothing.
//! * Strings key lexicographically, booleans as `false < true`, vec2 by
//!   normalized bit pattern (equality only — `compare` refuses to order
//!   vectors).
//! * A probe value whose type cannot match the column (e.g. a string
//!   literal against a float column) yields the empty set, matching the
//!   scan's "mixed non-numeric comparisons are false" rule.
//!
//! ## Maintenance invariants
//!
//! Every mutation of an indexed component keeps postings exact (see
//! `docs/ARCHITECTURE.md` for the full invariant list):
//!
//! 1. [`crate::World::set`] removes the old key (if any) and inserts the
//!    new one after the type check passes.
//! 2. [`crate::World::remove_component`] removes the entity's posting.
//! 3. [`crate::World::despawn`] removes the entity from every index
//!    before clearing its columns.
//! 4. Effects, template spawns, snapshot/delta recovery, and script
//!    writes all funnel through those three entry points, so no other
//!    code path can desynchronize an index.
//! 5. Postings are sorted by [`EntityId`], so probes return deterministic
//!    id-ordered candidate sets without re-sorting equality lookups.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use gamedb_content::{CmpOp, Value, ValueType};

use crate::entity::EntityId;

/// Physical structure of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash buckets: equality probes only, O(1).
    Hash,
    /// Ordered buckets: equality and range probes, O(log n + k).
    Sorted,
}

/// `f64` bits remapped so integer ordering matches float ordering
/// (sign bit flipped for positives, all bits for negatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrdF64(u64);

impl OrdF64 {
    pub(crate) fn new(v: f64) -> Option<OrdF64> {
        if v.is_nan() {
            return None;
        }
        // -0.0 and 0.0 must share a key, like they share equality.
        let v = if v == 0.0 { 0.0 } else { v };
        let bits = v.to_bits();
        Some(OrdF64(if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }))
    }

    pub(crate) fn get(self) -> f64 {
        let bits = self.0;
        f64::from_bits(if bits >> 63 == 1 {
            bits & !(1 << 63)
        } else {
            !bits
        })
    }
}

/// Index key in the comparison domain of [`crate::query::compare`].
///
/// A single index only ever holds one variant (columns are typed), so the
/// cross-variant `Ord` is never exercised within one index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexKey {
    Num(OrdF64),
    Bool(bool),
    Str(String),
    Vec2([u32; 2]),
}

impl IndexKey {
    /// Encode `value` as a key for a column of type `column_ty`.
    ///
    /// `None` means "this value can never satisfy an equality or range
    /// predicate against this column" — NaN, or a type that `compare`
    /// treats as an always-false mixed comparison.
    pub fn encode(column_ty: ValueType, value: &Value) -> Option<IndexKey> {
        match column_ty {
            ValueType::Float | ValueType::Int => {
                value.as_number().and_then(OrdF64::new).map(IndexKey::Num)
            }
            ValueType::Bool => match value {
                Value::Bool(b) => Some(IndexKey::Bool(*b)),
                _ => None,
            },
            ValueType::Str => match value {
                Value::Str(s) => Some(IndexKey::Str(s.clone())),
                _ => None,
            },
            ValueType::Vec2 => match value {
                Value::Vec2(x, y) if !x.is_nan() && !y.is_nan() => {
                    let norm = |v: f32| if v == 0.0 { 0.0f32 } else { v };
                    Some(IndexKey::Vec2([norm(*x).to_bits(), norm(*y).to_bits()]))
                }
                _ => None,
            },
        }
    }
}

/// The support matrix shared by executor ([`SecondaryIndex::supports`])
/// and planner (`planner::plan`) — one source of truth, so the planner
/// can never choose a probe the executor refuses.
pub fn supports(kind: IndexKind, ty: ValueType, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => true,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            kind == IndexKind::Sorted && ty != ValueType::Vec2
        }
        // `Ne` keeps nearly everything; a probe would be a scan in
        // disguise, so the planner never asks for it.
        CmpOp::Ne => false,
    }
}

#[derive(Debug, Clone)]
enum Buckets {
    Hash(HashMap<IndexKey, Vec<EntityId>>),
    Sorted(BTreeMap<IndexKey, Vec<EntityId>>),
}

/// A secondary index over one component column.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    ty: ValueType,
    buckets: Buckets,
    entries: usize,
}

impl SecondaryIndex {
    /// Empty index for a column of type `ty`.
    pub fn new(kind: IndexKind, ty: ValueType) -> Self {
        SecondaryIndex {
            ty,
            buckets: match kind {
                IndexKind::Hash => Buckets::Hash(HashMap::new()),
                IndexKind::Sorted => Buckets::Sorted(BTreeMap::new()),
            },
            entries: 0,
        }
    }

    /// The physical structure.
    pub fn kind(&self) -> IndexKind {
        match self.buckets {
            Buckets::Hash(_) => IndexKind::Hash,
            Buckets::Sorted(_) => IndexKind::Sorted,
        }
    }

    /// Indexed entities (= postings).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys — an *exact* NDV, which the planner's
    /// selectivity model gets for free instead of scanning.
    pub fn ndv(&self) -> usize {
        match &self.buckets {
            Buckets::Hash(m) => m.len(),
            Buckets::Sorted(m) => m.len(),
        }
    }

    /// Exact numeric (min, max) over indexed keys, for sorted numeric
    /// indexes — again free for the planner.
    pub fn numeric_bounds(&self) -> Option<(f64, f64)> {
        let Buckets::Sorted(m) = &self.buckets else {
            return None;
        };
        match (m.keys().next(), m.keys().next_back()) {
            (Some(IndexKey::Num(lo)), Some(IndexKey::Num(hi))) => Some((lo.get(), hi.get())),
            _ => None,
        }
    }

    /// True when this index can serve `op` (on this column's type).
    pub fn supports(&self, op: CmpOp) -> bool {
        supports(self.kind(), self.ty, op)
    }

    /// Insert `(value, id)`. No-op for unkeyable values (NaN).
    pub fn insert(&mut self, value: &Value, id: EntityId) {
        let Some(key) = IndexKey::encode(self.ty, value) else {
            return;
        };
        let posting = match &mut self.buckets {
            Buckets::Hash(m) => m.entry(key).or_default(),
            Buckets::Sorted(m) => m.entry(key).or_default(),
        };
        if let Err(at) = posting.binary_search(&id) {
            posting.insert(at, id);
            self.entries += 1;
        }
    }

    /// Remove `(value, id)`; drops emptied buckets so NDV stays exact.
    pub fn remove(&mut self, value: &Value, id: EntityId) {
        let Some(key) = IndexKey::encode(self.ty, value) else {
            return;
        };
        let emptied = match &mut self.buckets {
            Buckets::Hash(m) => match m.get_mut(&key) {
                Some(p) => {
                    if let Ok(at) = p.binary_search(&id) {
                        p.remove(at);
                        self.entries -= 1;
                    }
                    p.is_empty()
                }
                None => false,
            },
            Buckets::Sorted(m) => match m.get_mut(&key) {
                Some(p) => {
                    if let Ok(at) = p.binary_search(&id) {
                        p.remove(at);
                        self.entries -= 1;
                    }
                    p.is_empty()
                }
                None => false,
            },
        };
        if emptied {
            match &mut self.buckets {
                Buckets::Hash(m) => {
                    m.remove(&key);
                }
                Buckets::Sorted(m) => {
                    m.remove(&key);
                }
            }
        }
    }

    /// Exact posting count for an equality probe. The planner currently
    /// prices equality via presence/NDV (per-literal stats don't fit
    /// `TableStats`); this is for tooling and for a future skew-aware
    /// cost model.
    pub fn eq_count(&self, value: &Value) -> usize {
        IndexKey::encode(self.ty, value)
            .map(|key| match &self.buckets {
                Buckets::Hash(m) => m.get(&key).map_or(0, Vec::len),
                Buckets::Sorted(m) => m.get(&key).map_or(0, Vec::len),
            })
            .unwrap_or(0)
    }

    /// Append every entity whose value satisfies `value_stored op value`
    /// to `out`. Returns `false` (leaving `out` untouched) when the index
    /// cannot serve `op`. Results are id-sorted.
    pub fn probe(&self, op: CmpOp, value: &Value, out: &mut Vec<EntityId>) -> bool {
        if !self.supports(op) {
            return false;
        }
        let Some(key) = IndexKey::encode(self.ty, value) else {
            // Unkeyable probe value: `compare` would reject every row.
            return true;
        };
        match (&self.buckets, op) {
            (Buckets::Hash(m), CmpOp::Eq) => {
                if let Some(p) = m.get(&key) {
                    out.extend_from_slice(p);
                }
            }
            (Buckets::Sorted(m), CmpOp::Eq) => {
                if let Some(p) = m.get(&key) {
                    out.extend_from_slice(p);
                }
            }
            (Buckets::Sorted(m), op) => {
                let range = match op {
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(key)),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(key)),
                    CmpOp::Gt => (Bound::Excluded(key), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Included(key), Bound::Unbounded),
                    _ => unreachable!("supports() filtered Eq/Ne already"),
                };
                let before = out.len();
                for posting in m.range(range).map(|(_, p)| p) {
                    out.extend_from_slice(posting);
                }
                out[before..].sort_unstable();
            }
            (Buckets::Hash(_), _) => unreachable!("supports() rejected ranges on hash"),
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> EntityId {
        EntityId::from_bits(n as u64)
    }

    #[test]
    fn ordf64_total_order_matches_float_order() {
        let vals = [-1e30, -2.5, -0.0, 0.0, 1e-9, 2.5, 1e30];
        for (i, &a) in vals.iter().enumerate() {
            for &b in &vals[i + 1..] {
                let (ka, kb) = (OrdF64::new(a).unwrap(), OrdF64::new(b).unwrap());
                if a == b {
                    assert_eq!(ka, kb, "{a} vs {b}");
                } else {
                    assert!(ka < kb, "{a} vs {b}");
                }
                assert_eq!(ka.get(), if a == 0.0 { 0.0 } else { a });
            }
        }
        assert!(OrdF64::new(f64::NAN).is_none());
    }

    #[test]
    fn hash_index_eq_probe() {
        let mut idx = SecondaryIndex::new(IndexKind::Hash, ValueType::Str);
        idx.insert(&Value::Str("red".into()), id(1));
        idx.insert(&Value::Str("blue".into()), id(2));
        idx.insert(&Value::Str("red".into()), id(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.ndv(), 2);
        let mut out = vec![];
        assert!(idx.probe(CmpOp::Eq, &Value::Str("red".into()), &mut out));
        assert_eq!(out, vec![id(1), id(3)]);
        // ranges unsupported on hash
        assert!(!idx.probe(CmpOp::Lt, &Value::Str("red".into()), &mut out));
        assert_eq!(idx.eq_count(&Value::Str("red".into())), 2);
        assert_eq!(idx.eq_count(&Value::Str("green".into())), 0);
    }

    #[test]
    fn sorted_index_range_probes() {
        let mut idx = SecondaryIndex::new(IndexKind::Sorted, ValueType::Float);
        for (i, hp) in [10.0f32, 20.0, 20.0, 30.0].iter().enumerate() {
            idx.insert(&Value::Float(*hp), id(i as u32));
        }
        let mut out = vec![];
        idx.probe(CmpOp::Lt, &Value::Float(20.0), &mut out);
        assert_eq!(out, vec![id(0)]);
        out.clear();
        idx.probe(CmpOp::Le, &Value::Float(20.0), &mut out);
        assert_eq!(out, vec![id(0), id(1), id(2)]);
        out.clear();
        idx.probe(CmpOp::Gt, &Value::Float(20.0), &mut out);
        assert_eq!(out, vec![id(3)]);
        out.clear();
        // int literal probes a float column through numeric coercion
        idx.probe(CmpOp::Ge, &Value::Int(20), &mut out);
        assert_eq!(out, vec![id(1), id(2), id(3)]);
        assert_eq!(idx.numeric_bounds(), Some((10.0, 30.0)));
    }

    #[test]
    fn remove_and_empty_buckets() {
        let mut idx = SecondaryIndex::new(IndexKind::Sorted, ValueType::Int);
        idx.insert(&Value::Int(5), id(1));
        idx.insert(&Value::Int(5), id(2));
        idx.remove(&Value::Int(5), id(1));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.ndv(), 1);
        idx.remove(&Value::Int(5), id(2));
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.ndv(), 0, "emptied bucket must be dropped");
        // removing something absent is a no-op
        idx.remove(&Value::Int(5), id(2));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn nan_never_stored_nan_probe_empty() {
        let mut idx = SecondaryIndex::new(IndexKind::Sorted, ValueType::Float);
        idx.insert(&Value::Float(f32::NAN), id(1));
        assert_eq!(idx.len(), 0);
        idx.insert(&Value::Float(1.0), id(2));
        let mut out = vec![];
        assert!(idx.probe(CmpOp::Lt, &Value::Float(f32::NAN), &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn mixed_type_probe_is_empty() {
        let mut idx = SecondaryIndex::new(IndexKind::Hash, ValueType::Float);
        idx.insert(&Value::Float(5.0), id(1));
        let mut out = vec![];
        assert!(idx.probe(CmpOp::Eq, &Value::Str("5".into()), &mut out));
        assert!(out.is_empty(), "compare() calls mixed comparisons false");
    }

    #[test]
    fn negative_zero_folds_onto_zero() {
        let mut idx = SecondaryIndex::new(IndexKind::Hash, ValueType::Float);
        idx.insert(&Value::Float(-0.0), id(1));
        let mut out = vec![];
        idx.probe(CmpOp::Eq, &Value::Float(0.0), &mut out);
        assert_eq!(out, vec![id(1)]);
    }

    #[test]
    fn vec2_equality_only() {
        let mut idx = SecondaryIndex::new(IndexKind::Sorted, ValueType::Vec2);
        idx.insert(&Value::Vec2(1.0, 2.0), id(1));
        let mut out = vec![];
        assert!(idx.probe(CmpOp::Eq, &Value::Vec2(1.0, 2.0), &mut out));
        assert_eq!(out, vec![id(1)]);
        assert!(!idx.probe(CmpOp::Lt, &Value::Vec2(1.0, 2.0), &mut out));
    }
}
