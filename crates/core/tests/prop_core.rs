//! Property tests for the core engine:
//! * parallel ticks are bit-identical to sequential ticks (the state–effect
//!   determinism guarantee);
//! * the index join equals the naive nested-loop join;
//! * queries agree with a straightforward reference evaluation;
//! * secondary indexes are pure optimizations: any query over an indexed
//!   world returns exactly the forced-full-scan result, under arbitrary
//!   interleavings of writes, component removals, despawns, and ticks.

use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{Effect, EffectBuffer, EntityId, IndexKind, Query, TickExecutor, World};
use gamedb_spatial::Vec2;
use proptest::prelude::*;

fn build_world(positions: &[(f32, f32)], hps: &[f32]) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let e = w.spawn_at(Vec2::new(x, y));
        w.set_f32(e, "hp", hps[i % hps.len()]).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 4) as f32).unwrap();
    }
    w
}

fn combat(id: EntityId, world: &World, buf: &mut EffectBuffer) {
    let Some(p) = world.pos(id) else { return };
    let dmg = world.get_f32(id, "dmg").unwrap_or(0.0) as f64;
    let mut near = Vec::new();
    world.within(p, 8.0, &mut near);
    for other in near {
        if other != id {
            buf.push(other, "hp", Effect::Add(-dmg));
            buf.push(other, "hp", Effect::Max(0.0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_tick_deterministic(
        positions in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..120),
        hps in proptest::collection::vec(1.0f32..200.0, 1..8),
        threads in 2usize..6,
        ticks in 1usize..4,
    ) {
        let mut w_seq = build_world(&positions, &hps);
        let mut w_par = build_world(&positions, &hps);
        let seq = TickExecutor::sequential();
        let par = TickExecutor::parallel(threads).with_min_chunk(4);
        for _ in 0..ticks {
            seq.run_tick(&mut w_seq, &[&combat]).unwrap();
            par.run_tick(&mut w_par, &[&combat]).unwrap();
        }
        prop_assert_eq!(w_seq.rows(), w_par.rows());
    }

    #[test]
    fn index_join_equals_naive_join(
        positions in proptest::collection::vec((-60.0f32..60.0, -60.0f32..60.0), 0..80),
        radius in 0.0f32..40.0,
    ) {
        let hps = [10.0];
        let w = build_world(&positions, &hps);
        prop_assert_eq!(w.pairs_within(radius), w.pairs_within_naive(radius));
    }

    #[test]
    fn query_matches_reference_scan(
        positions in proptest::collection::vec((-30.0f32..30.0, -30.0f32..30.0), 0..60),
        hps in proptest::collection::vec(0.0f32..100.0, 1..6),
        threshold in 0.0f32..100.0,
        cx in -30.0f32..30.0,
        cy in -30.0f32..30.0,
        r in 0.0f32..50.0,
    ) {
        let w = build_world(&positions, &hps);
        let q = Query::select()
            .filter("hp", CmpOp::Lt, Value::Float(threshold))
            .within(Vec2::new(cx, cy), r);
        let got = q.run(&w);
        // reference: full scan
        let expect: Vec<EntityId> = w.entities().filter(|&id| {
            let hp_ok = w.get_f32(id, "hp").is_some_and(|hp| hp < threshold);
            let pos_ok = w.pos(id).is_some_and(|p| p.dist(Vec2::new(cx, cy)) <= r);
            hp_ok && pos_ok
        }).collect();
        prop_assert_eq!(got, expect);
    }

    /// Spawning from random effect buffers and despawning never corrupts
    /// the world (len matches live iteration, rows never panic).
    #[test]
    fn spawn_despawn_consistency(
        seq in proptest::collection::vec(prop_oneof![
            (0u32..16).prop_map(|i| (true, i)),
            (0u32..16).prop_map(|i| (false, i)),
        ], 0..64),
    ) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let mut spawned: Vec<EntityId> = Vec::new();
        for (is_spawn, i) in seq {
            if is_spawn {
                let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                w.set_f32(e, "hp", i as f32).unwrap();
                spawned.push(e);
            } else if !spawned.is_empty() {
                let idx = (i as usize) % spawned.len();
                let victim = spawned.swap_remove(idx);
                w.despawn(victim);
            }
        }
        prop_assert_eq!(w.len(), spawned.len());
        prop_assert_eq!(w.entities().count(), spawned.len());
        for e in &spawned {
            prop_assert!(w.is_live(*e));
        }
        let _ = w.rows();
    }
}

/// One mutation step of the index-equivalence workload.
#[derive(Debug, Clone)]
enum IndexOp {
    /// Spawn at (x, y) with hp and team picked by the payload.
    Spawn(f32, f32, f32, u8),
    /// Spawn from the shared designer template at (x, y).
    TemplateSpawn(f32, f32),
    /// Overwrite hp of the i-th live entity.
    SetHp(u16, f32),
    /// Overwrite team of the i-th live entity.
    SetTeam(u16, u8),
    /// Remove the hp component from the i-th live entity.
    RemoveHp(u16),
    /// Despawn the i-th live entity.
    Despawn(u16),
    /// Run one combat tick (effects, spawns nothing, may change hp).
    Tick,
}

fn index_op_strategy() -> impl Strategy<Value = IndexOp> {
    prop_oneof![
        (-40.0f32..40.0, -40.0f32..40.0, 0.0f32..100.0, 0u8..4)
            .prop_map(|(x, y, hp, t)| IndexOp::Spawn(x, y, hp, t)),
        (-40.0f32..40.0, -40.0f32..40.0).prop_map(|(x, y)| IndexOp::TemplateSpawn(x, y)),
        (0u16..64, 0.0f32..100.0).prop_map(|(i, hp)| IndexOp::SetHp(i, hp)),
        (0u16..64, 0u8..4).prop_map(|(i, t)| IndexOp::SetTeam(i, t)),
        (0u16..64).prop_map(IndexOp::RemoveHp),
        (0u16..64).prop_map(IndexOp::Despawn),
        Just(IndexOp::Tick),
    ]
}

/// The designer template `TemplateSpawn` instantiates (types match the
/// workload's columns: hp/dmg float, team str).
fn workload_template() -> &'static gamedb_content::ResolvedTemplate {
    use std::sync::OnceLock;
    static TPL: OnceLock<gamedb_content::ResolvedTemplate> = OnceLock::new();
    TPL.get_or_init(|| {
        gamedb_content::TemplateLibrary::from_gdml(
            &gamedb_content::gdml::parse(
                r#"<templates>
                     <template name="imp">
                       <component name="hp" type="float" default="35"/>
                       <component name="dmg" type="float" default="2"/>
                       <component name="team" type="str" default="green"/>
                     </template>
                   </templates>"#,
            )
            .unwrap(),
        )
        .unwrap()
        .resolve("imp")
        .unwrap()
    })
}

fn team_name(t: u8) -> &'static str {
    ["red", "blue", "green", "gold"][t as usize % 4]
}

fn apply_index_op(w: &mut World, live: &mut Vec<EntityId>, op: &IndexOp) {
    match *op {
        IndexOp::Spawn(x, y, hp, t) => {
            let e = w.spawn_at(Vec2::new(x, y));
            w.set_f32(e, "hp", hp).unwrap();
            w.set_f32(e, "dmg", 1.0).unwrap();
            w.set(e, "team", Value::Str(team_name(t).into())).unwrap();
            live.push(e);
        }
        IndexOp::TemplateSpawn(x, y) => {
            let e = w
                .spawn_from_template(workload_template(), Vec2::new(x, y))
                .unwrap();
            live.push(e);
        }
        IndexOp::SetHp(i, hp) if !live.is_empty() => {
            let e = live[i as usize % live.len()];
            w.set_f32(e, "hp", hp).unwrap();
        }
        IndexOp::SetTeam(i, t) if !live.is_empty() => {
            let e = live[i as usize % live.len()];
            w.set(e, "team", Value::Str(team_name(t).into())).unwrap();
        }
        IndexOp::RemoveHp(i) if !live.is_empty() => {
            let e = live[i as usize % live.len()];
            w.remove_component(e, "hp").unwrap();
        }
        IndexOp::Despawn(i) if !live.is_empty() => {
            let idx = i as usize % live.len();
            let e = live.swap_remove(idx);
            w.despawn(e);
        }
        IndexOp::Tick => {
            TickExecutor::sequential().run_tick(w, &[&combat]).unwrap();
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ISSUE-1 acceptance property: with secondary indexes on `hp`
    /// (sorted) and `team` (hash), every query run through the planner's
    /// index machinery returns exactly the entity set a forced full scan
    /// returns — after any interleaving of spawns, overwrites, component
    /// removals, despawns, and ticks.
    #[test]
    fn index_and_scan_agree_under_churn(
        ops in proptest::collection::vec(index_op_strategy(), 1..80),
        hp_bound in 0.0f32..100.0,
        team in 0u8..4,
        cx in -40.0f32..40.0,
        cy in -40.0f32..40.0,
        r in 0.5f32..120.0,
        sorted_team_index in any::<bool>(),
    ) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index(
            "team",
            if sorted_team_index { IndexKind::Sorted } else { IndexKind::Hash },
        )
        .unwrap();
        let mut live = Vec::new();
        for op in &ops {
            apply_index_op(&mut w, &mut live, op);
        }
        let queries = vec![
            Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound)),
            Query::select().filter("hp", CmpOp::Ge, Value::Float(hp_bound)),
            Query::select().filter("hp", CmpOp::Eq, Value::Float(hp_bound.floor())),
            Query::select().filter("team", CmpOp::Eq, Value::Str(team_name(team).into())),
            Query::select()
                .filter("team", CmpOp::Eq, Value::Str(team_name(team).into()))
                .filter("hp", CmpOp::Le, Value::Float(hp_bound)),
            Query::select()
                .within(Vec2::new(cx, cy), r)
                .filter("hp", CmpOp::Gt, Value::Float(hp_bound)),
        ];
        for q in queries {
            prop_assert_eq!(q.run(&w), q.run_scan(&w), "query: {:?}", q);
            prop_assert_eq!(q.count(&w), q.run_scan(&w).len());
        }
    }

    /// Creating an index on live data (backfill) and creating it before
    /// the data existed must produce identical probe behavior.
    #[test]
    fn backfilled_index_equals_incremental_index(
        ops in proptest::collection::vec(index_op_strategy(), 1..60),
        hp_bound in 0.0f32..100.0,
    ) {
        let fresh = || {
            let mut w = World::new();
            w.define_component("hp", ValueType::Float).unwrap();
            w.define_component("dmg", ValueType::Float).unwrap();
            w.define_component("team", ValueType::Str).unwrap();
            w
        };
        // incremental: index exists from the start
        let mut w_inc = fresh();
        w_inc.create_index("hp", IndexKind::Sorted).unwrap();
        let mut live = Vec::new();
        for op in &ops {
            apply_index_op(&mut w_inc, &mut live, op);
        }
        // backfilled: same history, index created at the end
        let mut w_back = fresh();
        let mut live2 = Vec::new();
        for op in &ops {
            apply_index_op(&mut w_back, &mut live2, op);
        }
        w_back.create_index("hp", IndexKind::Sorted).unwrap();

        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound));
        prop_assert_eq!(q.run(&w_inc), q.run(&w_back));
        prop_assert_eq!(
            w_inc.index_on("hp").unwrap().len(),
            w_back.index_on("hp").unwrap().len()
        );
        prop_assert_eq!(
            w_inc.index_on("hp").unwrap().ndv(),
            w_back.index_on("hp").unwrap().ndv()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// ISSUE-2 acceptance property: every registered standing view's
    /// materialized rows equal the `Query::run_scan` oracle after each
    /// tick (and at the end, after a final refresh), for random
    /// interleavings of writes, component removals, despawns, template
    /// spawns, and ticks. The changelog is simultaneously checked for
    /// coherence: replaying entered/exited over the previous membership
    /// set must reproduce the current one.
    #[test]
    fn views_track_scan_oracle_under_churn(
        ops in proptest::collection::vec(index_op_strategy(), 1..80),
        hp_bound in 0.0f32..100.0,
        team in 0u8..4,
        cx in -40.0f32..40.0,
        cy in -40.0f32..40.0,
        r in 0.5f32..120.0,
        index_hp in any::<bool>(),
    ) {
        use std::collections::BTreeSet;
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        if index_hp {
            // an index changes which refresh strategy the cost model
            // picks (rescans get cheap); equivalence must hold either way
            w.create_index("hp", IndexKind::Sorted).unwrap();
        }
        let queries = vec![
            Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound)),
            Query::select().filter("team", CmpOp::Eq, Value::Str(team_name(team).into())),
            Query::select()
                .within(Vec2::new(cx, cy), r)
                .filter("hp", CmpOp::Ge, Value::Float(hp_bound)),
            Query::select(), // membership = liveness (spawn/despawn stream)
        ];
        let views: Vec<_> = queries
            .iter()
            .map(|q| w.register_view(q.clone()))
            .collect();
        let mut shadows: Vec<BTreeSet<EntityId>> = views
            .iter()
            .map(|&v| w.view_rows(v).iter().copied().collect())
            .collect();

        let mut live = Vec::new();
        let check = |w: &mut World,
                         shadows: &mut Vec<BTreeSet<EntityId>>|
         -> Result<(), TestCaseError> {
            for ((&v, q), shadow) in views.iter().zip(&queries).zip(shadows.iter_mut()) {
                let oracle = q.run_scan(w);
                prop_assert_eq!(w.view_rows(v), oracle.as_slice(), "query: {:?}", q);
                let log = w.take_view_changelog(v);
                for e in &log.exited {
                    shadow.remove(e);
                }
                for e in &log.entered {
                    prop_assert!(shadow.insert(*e), "duplicate enter for {e:?}");
                }
                prop_assert_eq!(
                    shadow.iter().copied().collect::<Vec<_>>(),
                    oracle,
                    "changelog replay diverged for {:?}", q
                );
            }
            Ok(())
        };

        for op in &ops {
            apply_index_op(&mut w, &mut live, op);
            if matches!(op, IndexOp::Tick) {
                // bump_tick refreshed the views already
                prop_assert_eq!(w.pending_deltas(), 0);
                check(&mut w, &mut shadows)?;
            }
        }
        w.refresh_views();
        check(&mut w, &mut shadows)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ISSUE-10 acceptance property: operator-tree views — equi-join,
    /// spatial join, and group-by aggregates — maintained from Z-set
    /// deltas equal a forced `ViewPlan::evaluate` recompute after every
    /// tick (and at the end, after a final refresh), for random
    /// interleavings of writes, component removals, despawns, template
    /// spawns, and ticks. Pair and group changelogs are simultaneously
    /// checked for coherence: replaying them over the previous
    /// materialized state must reproduce the current one.
    #[test]
    fn operator_views_track_scan_oracle_under_churn(
        ops in proptest::collection::vec(index_op_strategy(), 1..80),
        hp_bound in 0.0f32..100.0,
        r in 0.5f32..60.0,
        index_hp in any::<bool>(),
    ) {
        use gamedb_core::{AggFn, JoinOn, PlanNode, ViewPlan};
        use std::collections::{BTreeMap, BTreeSet};
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        if index_hp {
            w.create_index("hp", IndexKind::Sorted).unwrap();
        }
        // healthy×anyone teammate pairs, proximity pairs, and per-team
        // head-counts + weakest member — one view per operator family
        let equi = w.register_view_plan(ViewPlan::join(
            PlanNode::scan(Query::select().filter("hp", CmpOp::Ge, Value::Float(hp_bound))),
            PlanNode::scan(Query::select()),
            JoinOn::Eq { left: "team".into(), right: "team".into() },
        )).unwrap();
        let spatial = w.register_view_plan(ViewPlan::join(
            PlanNode::scan(Query::select()),
            PlanNode::scan(Query::select()),
            JoinOn::Within { radius: r },
        )).unwrap();
        let count = w.register_view_plan(
            Query::select().into_grouped_plan("team", AggFn::Count).unwrap(),
        ).unwrap();
        let weakest = w.register_view_plan(
            Query::select().into_grouped_plan("team", AggFn::Min("hp".into())).unwrap(),
        ).unwrap();

        let pair_views = [equi, spatial];
        let group_views = [count, weakest];
        let mut pair_shadows: Vec<BTreeSet<(EntityId, EntityId)>> = pair_views
            .iter()
            .map(|&v| w.view_pairs(v).iter().copied().collect())
            .collect();
        // group keys shadowed by their debug form: `Value` is not `Ord`
        let mut group_shadows: Vec<BTreeMap<String, f64>> = group_views
            .iter()
            .map(|&v| {
                w.view_groups(v)
                    .iter()
                    .map(|g| (format!("{:?}", g.key), g.value))
                    .collect()
            })
            .collect();

        let mut live = Vec::new();
        let check = |w: &mut World,
                     pair_shadows: &mut [BTreeSet<(EntityId, EntityId)>],
                     group_shadows: &mut [BTreeMap<String, f64>]|
         -> Result<(), TestCaseError> {
            for (&v, shadow) in pair_views.iter().zip(pair_shadows.iter_mut()) {
                let forced = w.view_plan(v).unwrap().evaluate(w).unwrap();
                prop_assert_eq!(w.view_output(v), forced, "pair view {:?}", v);
                let log = w.take_view_pair_changelog(v);
                for p in &log.exited {
                    prop_assert!(shadow.remove(p), "exit without enter for {p:?}");
                }
                for p in &log.entered {
                    prop_assert!(shadow.insert(*p), "duplicate enter for {p:?}");
                }
                prop_assert_eq!(
                    shadow.iter().copied().collect::<Vec<_>>(),
                    w.view_pairs(v),
                    "pair changelog replay diverged for {:?}", v
                );
            }
            for (&v, shadow) in group_views.iter().zip(group_shadows.iter_mut()) {
                let forced = w.view_plan(v).unwrap().evaluate(w).unwrap();
                prop_assert_eq!(w.view_output(v), forced, "group view {:?}", v);
                let log = w.take_view_group_changelog(v);
                for g in &log.exited {
                    prop_assert!(
                        shadow.remove(&format!("{:?}", g.key)).is_some(),
                        "exit of unknown group {:?}", g.key
                    );
                }
                for g in &log.entered {
                    prop_assert!(
                        shadow.insert(format!("{:?}", g.key), g.value).is_none(),
                        "duplicate enter for group {:?}", g.key
                    );
                }
                for g in &log.changed {
                    prop_assert!(
                        shadow.insert(format!("{:?}", g.key), g.value).is_some(),
                        "change of unknown group {:?}", g.key
                    );
                }
                let replayed: Vec<(String, f64)> =
                    shadow.iter().map(|(k, &x)| (k.clone(), x)).collect();
                let actual: Vec<(String, f64)> = w
                    .view_groups(v)
                    .iter()
                    .map(|g| (format!("{:?}", g.key), g.value))
                    .collect();
                prop_assert_eq!(replayed, actual, "group changelog replay diverged for {:?}", v);
            }
            Ok(())
        };

        for op in &ops {
            apply_index_op(&mut w, &mut live, op);
            if matches!(op, IndexOp::Tick) {
                prop_assert_eq!(w.pending_deltas(), 0);
                check(&mut w, &mut pair_shadows, &mut group_shadows)?;
            }
        }
        w.refresh_views();
        check(&mut w, &mut pair_shadows, &mut group_shadows)?;
    }
}

/// Rebuild a world from its public recovery surface: schema + rows
/// restored entity-by-entity, then the catalog import that recovery
/// uses (indexes backfilled, views re-materialized at their original
/// slots, lineage + tick adopted). This is the core-level shape of what
/// the persistence layer does after a crash.
fn restore_via_catalog(w: &World) -> World {
    let mut r = World::new();
    for (name, ty) in w.schema().map(|(n, t)| (n.to_string(), t)).collect::<Vec<_>>() {
        if name != gamedb_core::POS {
            r.define_component(&name, ty).unwrap();
        }
    }
    for e in w.entity_vec() {
        r.restore_entity(e).unwrap();
    }
    for (e, comp, val) in w.rows() {
        r.set(e, &comp, val).unwrap();
    }
    r.import_catalog(&w.export_catalog()).unwrap();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ISSUE-3 satellite: standing views survive a restore and keep
    /// tracking the `run_scan` oracle when the workload *resumes* on the
    /// recovered world — random writes, component removals, despawns,
    /// template spawns, and ticks split at an arbitrary crash point,
    /// with and without a secondary index (the index changes which
    /// maintenance strategy the cost model picks post-restore).
    #[test]
    fn restored_views_track_scan_oracle_when_workload_resumes(
        ops in proptest::collection::vec(index_op_strategy(), 2..70),
        split_at in 0usize..70,
        hp_bound in 0.0f32..100.0,
        team in 0u8..4,
        cx in -40.0f32..40.0,
        cy in -40.0f32..40.0,
        r in 0.5f32..120.0,
        index_hp in any::<bool>(),
    ) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        if index_hp {
            w.create_index("hp", IndexKind::Sorted).unwrap();
        }
        let queries = vec![
            Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound)),
            Query::select().filter("team", CmpOp::Eq, Value::Str(team_name(team).into())),
            Query::select()
                .within(Vec2::new(cx, cy), r)
                .filter("hp", CmpOp::Ge, Value::Float(hp_bound)),
        ];
        let views: Vec<_> = queries.iter().map(|q| w.register_view(q.clone())).collect();

        let split = split_at.min(ops.len());
        let mut live = Vec::new();
        for op in &ops[..split] {
            apply_index_op(&mut w, &mut live, op);
        }
        w.refresh_views();

        // "crash": rebuild from rows + catalog, then resume the
        // remaining workload on the restored world
        let mut rw = restore_via_catalog(&w);
        prop_assert_eq!(rw.tick(), w.tick());
        for (&v, q) in views.iter().zip(&queries) {
            // pre-restore handles resolve, rows carried over exactly
            prop_assert!(rw.has_view(v));
            prop_assert_eq!(rw.view_rows(v), w.view_rows(v), "at restore: {:?}", q);
            prop_assert!(rw.view_changelog(v).is_empty(), "changelogs re-anchor");
        }

        // resuming entity bookkeeping: the live list must be rebuilt
        // from the restored world, exactly as a restarted process would
        let mut live = rw.entity_vec();
        for op in &ops[split..] {
            apply_index_op(&mut rw, &mut live, op);
            if matches!(op, IndexOp::Tick) {
                for (&v, q) in views.iter().zip(&queries) {
                    let oracle = q.run_scan(&rw);
                    prop_assert_eq!(
                        rw.view_rows(v),
                        oracle.as_slice(),
                        "post-restore tick: {:?}", q
                    );
                }
            }
        }
        rw.refresh_views();
        for (&v, q) in views.iter().zip(&queries) {
            let oracle = q.run_scan(&rw);
            prop_assert_eq!(rw.view_rows(v), oracle.as_slice(), "final: {:?}", q);
        }
        // the restored index (if any) stayed a pure optimization
        let probe = Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound));
        prop_assert_eq!(probe.run(&rw), probe.run_scan(&rw));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cost-based planner must be a pure optimization: whatever
    /// access path and predicate order it picks, the result set equals
    /// the reference Query evaluation.
    #[test]
    fn planned_query_equals_reference(
        positions in proptest::collection::vec((-60.0f32..60.0, -60.0f32..60.0), 1..60),
        hps in proptest::collection::vec(0.0f32..100.0, 1..8),
        center in (-60.0f32..60.0, -60.0f32..60.0),
        radius in 0.5f32..200.0,
        hp_bound in 0.0f32..100.0,
        use_within in any::<bool>(),
        exclude_first in any::<bool>(),
    ) {
        use gamedb_core::{plan, TableStats};
        let w = build_world(&positions, &hps);
        let stats = TableStats::build(&w);
        let first = w.entities().next();
        let mut q = Query::select()
            .filter("hp", CmpOp::Le, Value::Float(hp_bound))
            .filter("dmg", CmpOp::Ge, Value::Float(2.0));
        if use_within {
            q = q.within(Vec2::new(center.0, center.1), radius);
        }
        if exclude_first {
            if let Some(e) = first {
                q = q.excluding(e);
            }
        }
        let p = plan(&q, &stats);
        prop_assert_eq!(p.run(&w), q.run(&w), "plan: {}", p.explain());
    }
}

/// Replay one change-stream record onto a world — the core-level shape
/// of what every stream consumer (WAL redo, stream-shipped replication)
/// does with a recorded segment.
fn replay_change(w: &mut World, op: &gamedb_core::ChangeOp) {
    use gamedb_core::ChangeOp;
    match op {
        ChangeOp::Set {
            id,
            component,
            new,
            ..
        } => {
            // records carry interned ids; a `ComponentDefined` record
            // always precedes the first use of a new id, so resolution
            // against the replay world cannot fail
            let name = w.component_name(*component).unwrap().to_string();
            w.set(*id, &name, new.clone()).unwrap();
        }
        ChangeOp::Removed { id, component, .. } => {
            let name = w.component_name(*component).unwrap().to_string();
            let _ = w.remove_component(*id, &name);
        }
        ChangeOp::Spawned { id } => {
            w.restore_entity(*id).unwrap();
        }
        ChangeOp::Despawned { id, .. } => {
            w.despawn(*id);
        }
        ChangeOp::ComponentDefined {
            component,
            name,
            ty,
        } => {
            w.ensure_component_at(*component, name, *ty).unwrap();
        }
        ChangeOp::CreateIndex { component, kind } => {
            let name = w.component_name(*component).unwrap().to_string();
            w.ensure_index(&name, *kind).unwrap();
        }
        ChangeOp::DropIndex { component } => {
            let name = w.component_name(*component).unwrap().to_string();
            w.drop_index(&name);
        }
        ChangeOp::RegisterView { slot, query } => {
            w.import_view_at_slot(*slot, query.clone()).unwrap();
        }
        ChangeOp::RegisterPlanView { slot, plan } => {
            w.import_plan_view_at_slot(*slot, plan.clone()).unwrap();
        }
        ChangeOp::DropView { slot } => {
            w.drop_view_slot(*slot);
        }
        ChangeOp::RetargetView { slot, x, y, radius } => {
            w.retarget_view_slot(*slot, Vec2::new(*x, *y), *radius);
        }
        ChangeOp::TickTo { tick } => {
            w.advance_tick_to(*tick);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ISSUE-4 acceptance property: the change stream is a **complete**
    /// record of mutation — replaying a recorded stream onto the base
    /// state reconstructs rows, secondary indexes, standing views (at
    /// their slots), and the tick counter exactly, under random
    /// interleavings of writes, component removals, despawns, template
    /// spawns, ticks (whole effect batches), spatial-view retargets,
    /// and catalog churn.
    #[test]
    fn change_stream_replay_reconstructs_world(
        ops in proptest::collection::vec(index_op_strategy(), 1..70),
        hp_bound in 0.0f32..100.0,
        retarget_every in 2usize..7,
        index_hp in any::<bool>(),
    ) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        if index_hp {
            w.create_index("hp", IndexKind::Sorted).unwrap();
        }
        let bubble = w.register_view(Query::select().within(Vec2::ZERO, 25.0));
        w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound)));
        let mut live = Vec::new();
        for i in 0..5 {
            let e = w.spawn_at(Vec2::new(i as f32 * 6.0 - 12.0, 0.0));
            w.set_f32(e, "hp", 10.0 + i as f32 * 20.0).unwrap();
            w.set_f32(e, "dmg", 1.0).unwrap();
            live.push(e);
        }
        w.refresh_views();

        // the "base snapshot" the stream replays onto
        let base = w.clone();
        let tap = w.attach_tap();

        let mut extra_views: Vec<gamedb_core::ViewId> = Vec::new();
        for (k, op) in ops.iter().enumerate() {
            apply_index_op(&mut w, &mut live, op);
            if k % retarget_every == 1 {
                w.retarget_view(
                    bubble,
                    Vec2::new(k as f32 - 20.0, 3.0),
                    8.0 + (k % 30) as f32,
                );
            }
            // catalog churn mid-stream: index toggles, view lifecycle
            if k % 7 == 3 {
                if w.index_on("team").is_none() {
                    w.create_index("team", IndexKind::Hash).unwrap();
                } else {
                    w.drop_index("team");
                }
            }
            if k % 11 == 5 {
                extra_views.push(w.register_view(Query::select()));
            }
            if k % 13 == 7 {
                if let Some(v) = extra_views.pop() {
                    w.drop_view(v);
                }
            }
        }
        w.refresh_views();

        let changes: Vec<gamedb_core::Change> = w.tap_pending(tap).to_vec();
        // seq is gap-free and ordered — consumers rely on it
        for (i, c) in changes.iter().enumerate() {
            prop_assert_eq!(c.seq, changes[0].seq + i as u64);
        }

        let mut r = base;
        for c in &changes {
            replay_change(&mut r, &c.op);
        }
        r.refresh_views();

        prop_assert_eq!(r.rows(), w.rows(), "row dumps must match");
        prop_assert_eq!(r.tick(), w.tick(), "tick must match");
        prop_assert_eq!(r.export_catalog(), w.export_catalog(), "catalogs must match");
        for id in w.view_ids() {
            prop_assert_eq!(r.view_rows(id), w.view_rows(id), "view {:?}", id);
            let oracle = w.view_query(id).run_scan(&r);
            prop_assert_eq!(
                r.view_rows(id),
                oracle.as_slice(),
                "replayed view {:?} vs scan oracle", id
            );
        }
        // replayed indexes stay pure optimizations
        let probe = Query::select().filter("hp", CmpOp::Lt, Value::Float(hp_bound));
        prop_assert_eq!(probe.run(&r), probe.run_scan(&r));
    }
}
