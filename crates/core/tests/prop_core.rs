//! Property tests for the core engine:
//! * parallel ticks are bit-identical to sequential ticks (the state–effect
//!   determinism guarantee);
//! * the index join equals the naive nested-loop join;
//! * queries agree with a straightforward reference evaluation.

use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{Effect, EffectBuffer, EntityId, Query, TickExecutor, World};
use gamedb_spatial::Vec2;
use proptest::prelude::*;

fn build_world(positions: &[(f32, f32)], hps: &[f32]) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let e = w.spawn_at(Vec2::new(x, y));
        w.set_f32(e, "hp", hps[i % hps.len()]).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 4) as f32).unwrap();
    }
    w
}

fn combat(id: EntityId, world: &World, buf: &mut EffectBuffer) {
    let Some(p) = world.pos(id) else { return };
    let dmg = world.get_f32(id, "dmg").unwrap_or(0.0) as f64;
    let mut near = Vec::new();
    world.within(p, 8.0, &mut near);
    for other in near {
        if other != id {
            buf.push(other, "hp", Effect::Add(-dmg));
            buf.push(other, "hp", Effect::Max(0.0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_tick_deterministic(
        positions in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..120),
        hps in proptest::collection::vec(1.0f32..200.0, 1..8),
        threads in 2usize..6,
        ticks in 1usize..4,
    ) {
        let mut w_seq = build_world(&positions, &hps);
        let mut w_par = build_world(&positions, &hps);
        let seq = TickExecutor::sequential();
        let par = TickExecutor::parallel(threads).with_min_chunk(4);
        for _ in 0..ticks {
            seq.run_tick(&mut w_seq, &[&combat]).unwrap();
            par.run_tick(&mut w_par, &[&combat]).unwrap();
        }
        prop_assert_eq!(w_seq.rows(), w_par.rows());
    }

    #[test]
    fn index_join_equals_naive_join(
        positions in proptest::collection::vec((-60.0f32..60.0, -60.0f32..60.0), 0..80),
        radius in 0.0f32..40.0,
    ) {
        let hps = [10.0];
        let w = build_world(&positions, &hps);
        prop_assert_eq!(w.pairs_within(radius), w.pairs_within_naive(radius));
    }

    #[test]
    fn query_matches_reference_scan(
        positions in proptest::collection::vec((-30.0f32..30.0, -30.0f32..30.0), 0..60),
        hps in proptest::collection::vec(0.0f32..100.0, 1..6),
        threshold in 0.0f32..100.0,
        cx in -30.0f32..30.0,
        cy in -30.0f32..30.0,
        r in 0.0f32..50.0,
    ) {
        let w = build_world(&positions, &hps);
        let q = Query::select()
            .filter("hp", CmpOp::Lt, Value::Float(threshold))
            .within(Vec2::new(cx, cy), r);
        let got = q.run(&w);
        // reference: full scan
        let expect: Vec<EntityId> = w.entities().filter(|&id| {
            let hp_ok = w.get_f32(id, "hp").is_some_and(|hp| hp < threshold);
            let pos_ok = w.pos(id).is_some_and(|p| p.dist(Vec2::new(cx, cy)) <= r);
            hp_ok && pos_ok
        }).collect();
        prop_assert_eq!(got, expect);
    }

    /// Spawning from random effect buffers and despawning never corrupts
    /// the world (len matches live iteration, rows never panic).
    #[test]
    fn spawn_despawn_consistency(
        seq in proptest::collection::vec(prop_oneof![
            (0u32..16).prop_map(|i| (true, i)),
            (0u32..16).prop_map(|i| (false, i)),
        ], 0..64),
    ) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let mut spawned: Vec<EntityId> = Vec::new();
        for (is_spawn, i) in seq {
            if is_spawn {
                let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                w.set_f32(e, "hp", i as f32).unwrap();
                spawned.push(e);
            } else if !spawned.is_empty() {
                let idx = (i as usize) % spawned.len();
                let victim = spawned.swap_remove(idx);
                w.despawn(victim);
            }
        }
        prop_assert_eq!(w.len(), spawned.len());
        prop_assert_eq!(w.entities().count(), spawned.len());
        for e in &spawned {
            prop_assert!(w.is_live(*e));
        }
        let _ = w.rows();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cost-based planner must be a pure optimization: whatever
    /// access path and predicate order it picks, the result set equals
    /// the reference Query evaluation.
    #[test]
    fn planned_query_equals_reference(
        positions in proptest::collection::vec((-60.0f32..60.0, -60.0f32..60.0), 1..60),
        hps in proptest::collection::vec(0.0f32..100.0, 1..8),
        center in (-60.0f32..60.0, -60.0f32..60.0),
        radius in 0.5f32..200.0,
        hp_bound in 0.0f32..100.0,
        use_within in any::<bool>(),
        exclude_first in any::<bool>(),
    ) {
        use gamedb_core::{plan, TableStats};
        let w = build_world(&positions, &hps);
        let stats = TableStats::build(&w);
        let first = w.entities().next();
        let mut q = Query::select()
            .filter("hp", CmpOp::Le, Value::Float(hp_bound))
            .filter("dmg", CmpOp::Ge, Value::Float(2.0));
        if use_within {
            q = q.within(Vec2::new(center.0, center.1), radius);
        }
        if exclude_first {
            if let Some(e) = first {
                q = q.excluding(e);
            }
        }
        let p = plan(&q, &stats);
        prop_assert_eq!(p.run(&w), q.run(&w), "plan: {}", p.explain());
    }
}
