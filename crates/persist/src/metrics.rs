//! Durability-pipeline instrumentation: the cached metric handles a
//! [`crate::walstore::WalStore`] reports through when a
//! [`gamedb_metrics::MetricsRegistry`] is attached
//! ([`crate::walstore::WalStore::attach_metrics`]).
//!
//! The store side (commit/checkpoint, on the mutating thread) and the
//! background writer (flushes, on the `wal-writer` thread) both hold a
//! clone; every handle is an `Arc`'d atomic, so cross-thread reporting
//! needs no lock beyond the one installation mutex in `WriterShared`.

use gamedb_metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_US_BUCKETS, SIZE_BUCKETS};

/// Cached handles for one WAL store. Metric catalog in ARCHITECTURE.md
/// § Observability; operational meanings in docs/RUNBOOK.md.
#[derive(Debug, Clone)]
pub(crate) struct WalMetrics {
    /// `wal.commits`: non-empty commit boundaries handed to the
    /// pipeline.
    pub commits: Counter,
    /// `wal.commit_ops`: mutation ops across all committed frames.
    pub commit_ops: Counter,
    /// `wal.commit_batch_ops`: ops per commit frame (the group-commit
    /// batch size the change stream accumulated between commits).
    pub commit_batch_ops: Histogram,
    /// `wal.enqueue_to_durable_us`: microseconds from commit enqueue to
    /// the durable flush covering that commit.
    pub enqueue_to_durable_us: Histogram,
    /// `wal.queue_depth`: frames waiting in the writer hand-off queue
    /// at the last commit (async mode; 0 in sync mode).
    pub queue_depth: Gauge,
    /// `wal.watermark_lag`: commits enqueued but not yet durable at the
    /// last commit (the ack-tracked crash-loss window).
    pub watermark_lag: Gauge,
    /// `wal.flushes`: durable flushes, both caller-thread and writer.
    pub flushes: Counter,
    /// `wal.flush_commits`: commit boundaries made durable per flush
    /// (how much each group commit coalesced).
    pub flush_commits: Histogram,
    /// `wal.checkpoints`: snapshots written.
    pub checkpoints: Counter,
    /// `wal.writer_errors`: writer-side failures (I/O error or backend
    /// crash). Anything above 0 means the pipeline is dead.
    pub writer_errors: Counter,
}

impl WalMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            commits: registry.counter("wal.commits"),
            commit_ops: registry.counter("wal.commit_ops"),
            commit_batch_ops: registry.histogram("wal.commit_batch_ops", SIZE_BUCKETS),
            enqueue_to_durable_us: registry
                .histogram("wal.enqueue_to_durable_us", LATENCY_US_BUCKETS),
            queue_depth: registry.gauge("wal.queue_depth"),
            watermark_lag: registry.gauge("wal.watermark_lag"),
            flushes: registry.counter("wal.flushes"),
            flush_commits: registry.histogram("wal.flush_commits", SIZE_BUCKETS),
            checkpoints: registry.counter("wal.checkpoints"),
            writer_errors: registry.counter("wal.writer_errors"),
        }
    }
}
