//! The durable backend — our stand-in for the "commercial database" the
//! paper's MMOs checkpoint into.
//!
//! A directory-based store with atomic snapshot installation (write to a
//! temp file, then rename) and an append-only event log. Crash injection
//! is built in: [`Backend::crash`] drops everything that was not yet
//! flushed, exactly what power loss does to page caches — the recovery
//! experiments (E9) rely on it.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;

/// Errors from the backend.
#[derive(Debug)]
pub enum BackendError {
    Io(std::io::Error),
    NoSnapshot,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io(e) => write!(f, "io error: {e}"),
            BackendError::NoSnapshot => write!(f, "no snapshot in backend"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<std::io::Error> for BackendError {
    fn from(e: std::io::Error) -> Self {
        BackendError::Io(e)
    }
}

/// How a scheduled crash corrupts the durable log write it lands in —
/// the failure modes the crash-point sweep ([`crate::crashpoint`])
/// drives through every byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The append tears at the scheduled byte: a prefix of the record
    /// reaches the platter, nothing after it does.
    Torn,
    /// The append completes its record but one bit at the scheduled
    /// byte is flipped — the half-written-sector garbage a power cut
    /// leaves behind.
    BitFlip {
        /// Which bit of the byte flips (0–7).
        bit: u8,
    },
    /// The append is retried after a timeout and lands twice — the
    /// checksum-valid duplicated tail of an at-least-once appender.
    DuplicatedTail,
}

/// A directory-backed durable store with crash injection.
#[derive(Debug)]
pub struct Backend {
    dir: PathBuf,
    /// writes buffered since the last flush (crash discards these)
    unflushed: Vec<PendingWrite>,
    /// scheduled log fault: `(byte offset into the durable log, kind)`
    log_fault: Option<(u64, FaultKind)>,
    /// a scheduled fault fired: all subsequent writes vanish until
    /// [`Backend::crash`] acknowledges the crash
    crashed: bool,
    /// total bytes durably written (the DB-load metric of E9)
    pub bytes_written: u64,
    /// snapshots durably installed
    pub snapshots_written: u64,
}

#[derive(Debug)]
enum PendingWrite {
    Snapshot { seq: u64, data: Bytes },
    Delta { seq: u64, data: Bytes },
    LogAppend { data: Vec<u8> },
    LogReplace { data: Vec<u8> },
}

impl Backend {
    /// Open (or create) a backend in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, BackendError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Backend {
            dir,
            unflushed: Vec::new(),
            log_fault: None,
            crashed: false,
            bytes_written: 0,
            snapshots_written: 0,
        })
    }

    /// Schedule a crash on the durable log write containing byte
    /// `offset` (0-based, counted over the whole log's lifetime). When
    /// an append crosses that byte, the fault corrupts it as `kind`
    /// dictates and the backend stops accepting writes — exactly a
    /// machine dying mid-I/O — until [`Backend::crash`] acknowledges
    /// the crash and recovery begins.
    pub fn schedule_log_fault(&mut self, offset: u64, kind: FaultKind) {
        self.log_fault = Some((offset, kind));
    }

    /// True once a scheduled fault has fired.
    pub fn fault_fired(&self) -> bool {
        self.crashed
    }

    /// Directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queue a snapshot write (durable only after [`Backend::flush`]).
    pub fn put_snapshot(&mut self, seq: u64, data: Bytes) {
        self.unflushed.push(PendingWrite::Snapshot { seq, data });
    }

    /// Queue a delta (incremental snapshot) write.
    pub fn put_delta(&mut self, seq: u64, data: Bytes) {
        self.unflushed.push(PendingWrite::Delta { seq, data });
    }

    /// Queue an event-log append.
    pub fn append_log(&mut self, data: &[u8]) {
        self.unflushed.push(PendingWrite::LogAppend {
            data: data.to_vec(),
        });
    }

    /// Queue an atomic rewrite of the event log (WAL compaction: the
    /// prefix before the last checkpoint mark is dead weight).
    pub fn replace_log(&mut self, data: &[u8]) {
        self.unflushed.push(PendingWrite::LogReplace {
            data: data.to_vec(),
        });
    }

    /// Flush all queued writes durably (temp-file + rename for snapshots,
    /// append for the log). Writes queued after a scheduled fault fires
    /// are lost, like everything else a dead machine was about to do.
    ///
    /// Consecutive log appends **coalesce into one write + fsync** —
    /// this is what makes group commit (and the async WAL writer's
    /// time/size flush policy) actually amortize the sync cost instead
    /// of paying one fsync per buffered frame. The bytes on disk, and
    /// the byte-offset fault semantics, are identical to flushing each
    /// append separately.
    pub fn flush(&mut self) -> Result<(), BackendError> {
        let pending: Vec<PendingWrite> = self.unflushed.drain(..).collect();
        // coalesced run of consecutive log appends, and the durable log
        // length the run starts at (so per-append fault offsets resolve
        // exactly as they would have one append at a time)
        let mut run: Vec<u8> = Vec::new();
        let mut log_len: Option<u64> = None;
        for w in pending {
            if self.crashed {
                break;
            }
            match w {
                PendingWrite::LogAppend { mut data } => {
                    let durable = match log_len {
                        Some(l) => l,
                        None => match fs::metadata(self.dir.join("events.log")) {
                            Ok(m) => m.len(),
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
                            Err(e) => return Err(e.into()),
                        },
                    };
                    // scheduled fault: does this append contain the
                    // scheduled byte?
                    if let Some((offset, kind)) = self.log_fault {
                        if offset >= durable && offset < durable + data.len() as u64 {
                            let at = (offset - durable) as usize;
                            match kind {
                                FaultKind::Torn => data.truncate(at),
                                FaultKind::BitFlip { bit } => data[at] ^= 1 << (bit % 8),
                                FaultKind::DuplicatedTail => {
                                    let copy = data.clone();
                                    data.extend_from_slice(&copy);
                                }
                            }
                            self.crashed = true;
                        }
                    }
                    log_len = Some(durable + data.len() as u64);
                    run.extend_from_slice(&data);
                }
                PendingWrite::Snapshot { seq, data } => {
                    self.flush_log_run(&mut run)?;
                    let tmp = self.dir.join(format!("snapshot-{seq}.tmp"));
                    let fin = self.dir.join(format!("snapshot-{seq}.db"));
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&data)?;
                    f.sync_all()?;
                    fs::rename(&tmp, &fin)?;
                    self.bytes_written += data.len() as u64;
                    self.snapshots_written += 1;
                }
                PendingWrite::Delta { seq, data } => {
                    self.flush_log_run(&mut run)?;
                    let tmp = self.dir.join(format!("delta-{seq}.tmp"));
                    let fin = self.dir.join(format!("delta-{seq}.db"));
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&data)?;
                    f.sync_all()?;
                    fs::rename(&tmp, &fin)?;
                    self.bytes_written += data.len() as u64;
                }
                PendingWrite::LogReplace { data } => {
                    self.flush_log_run(&mut run)?;
                    let tmp = self.dir.join("events.log.tmp");
                    let fin = self.dir.join("events.log");
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&data)?;
                    f.sync_all()?;
                    fs::rename(&tmp, &fin)?;
                    self.bytes_written += data.len() as u64;
                    log_len = Some(data.len() as u64);
                }
            }
        }
        self.flush_log_run(&mut run)
    }

    /// Land a coalesced append run: one open, one write, one fsync.
    fn flush_log_run(&mut self, run: &mut Vec<u8>) -> Result<(), BackendError> {
        if run.is_empty() {
            return Ok(());
        }
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("events.log"))?;
        f.write_all(run)?;
        f.sync_all()?;
        self.bytes_written += run.len() as u64;
        run.clear();
        Ok(())
    }

    /// Simulate a crash: all unflushed writes vanish. Also acknowledges
    /// a fired scheduled fault, so recovery can read what survived.
    pub fn crash(&mut self) {
        self.unflushed.clear();
        self.log_fault = None;
        self.crashed = false;
    }

    /// Read one durable snapshot.
    pub fn read_snapshot(&self, seq: u64) -> Result<Vec<u8>, BackendError> {
        Ok(fs::read(self.dir.join(format!("snapshot-{seq}.db")))?)
    }

    fn seqs_with_prefix(&self, prefix: &str) -> Result<Vec<u64>, BackendError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Some(num) = rest.strip_suffix(".db") {
                    if let Ok(seq) = num.parse::<u64>() {
                        seqs.push(seq);
                    }
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Sequence numbers of durably installed snapshots, ascending.
    pub fn snapshot_seqs(&self) -> Result<Vec<u64>, BackendError> {
        self.seqs_with_prefix("snapshot-")
    }

    /// Sequence numbers of durably installed deltas, ascending.
    pub fn delta_seqs(&self) -> Result<Vec<u64>, BackendError> {
        self.seqs_with_prefix("delta-")
    }

    /// Read one durable delta.
    pub fn read_delta(&self, seq: u64) -> Result<Vec<u8>, BackendError> {
        Ok(fs::read(self.dir.join(format!("delta-{seq}.db")))?)
    }

    /// Delete durable deltas with sequence <= `upto` (they are subsumed
    /// once a newer full snapshot lands).
    pub fn prune_deltas_upto(&mut self, upto: u64) -> Result<usize, BackendError> {
        let mut removed = 0;
        for seq in self.delta_seqs()? {
            if seq <= upto {
                fs::remove_file(self.dir.join(format!("delta-{seq}.db")))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Durable size of the event log in bytes.
    pub fn log_len(&self) -> Result<u64, BackendError> {
        match fs::metadata(self.dir.join("events.log")) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Load the latest durable snapshot.
    pub fn latest_snapshot(&self) -> Result<(u64, Vec<u8>), BackendError> {
        let seq = *self
            .snapshot_seqs()?
            .last()
            .ok_or(BackendError::NoSnapshot)?;
        let data = fs::read(self.dir.join(format!("snapshot-{seq}.db")))?;
        Ok((seq, data))
    }

    /// Delete durable snapshots older than the newest `keep` (retention).
    pub fn prune_snapshots(&mut self, keep: usize) -> Result<usize, BackendError> {
        let seqs = self.snapshot_seqs()?;
        let mut removed = 0;
        if seqs.len() > keep {
            for seq in &seqs[..seqs.len() - keep] {
                fs::remove_file(self.dir.join(format!("snapshot-{seq}.db")))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Read the whole event log (empty when none).
    pub fn read_log(&self) -> Result<Vec<u8>, BackendError> {
        match fs::read(self.dir.join("events.log")) {
            Ok(v) => Ok(v),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Create a unique temp directory for tests and experiments.
pub fn temp_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("gamedb-{label}-{pid}-{n}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_flush_and_reload() {
        let mut b = Backend::open(temp_dir("backend1")).unwrap();
        b.put_snapshot(1, Bytes::from_static(b"alpha"));
        b.put_snapshot(2, Bytes::from_static(b"beta"));
        b.flush().unwrap();
        let (seq, data) = b.latest_snapshot().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(data, b"beta");
        assert_eq!(b.snapshots_written, 2);
        assert_eq!(b.snapshot_seqs().unwrap(), vec![1, 2]);
    }

    #[test]
    fn crash_discards_unflushed() {
        let mut b = Backend::open(temp_dir("backend2")).unwrap();
        b.put_snapshot(1, Bytes::from_static(b"first"));
        b.flush().unwrap();
        b.put_snapshot(2, Bytes::from_static(b"second"));
        b.crash();
        let (seq, data) = b.latest_snapshot().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(data, b"first");
    }

    #[test]
    fn empty_backend_has_no_snapshot() {
        let b = Backend::open(temp_dir("backend3")).unwrap();
        assert!(matches!(
            b.latest_snapshot(),
            Err(BackendError::NoSnapshot)
        ));
    }

    #[test]
    fn log_appends_accumulate() {
        let mut b = Backend::open(temp_dir("backend4")).unwrap();
        b.append_log(b"one|");
        b.append_log(b"two|");
        b.flush().unwrap();
        b.append_log(b"lost");
        b.crash();
        assert_eq!(b.read_log().unwrap(), b"one|two|");
    }

    #[test]
    fn prune_keeps_newest() {
        let mut b = Backend::open(temp_dir("backend5")).unwrap();
        for seq in 1..=5 {
            b.put_snapshot(seq, Bytes::from(vec![seq as u8]));
        }
        b.flush().unwrap();
        let removed = b.prune_snapshots(2).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(b.snapshot_seqs().unwrap(), vec![4, 5]);
    }

    #[test]
    fn torn_fault_cuts_mid_append_and_kills_later_writes() {
        let mut b = Backend::open(temp_dir("backend-fault1")).unwrap();
        b.append_log(b"aaaa");
        b.flush().unwrap();
        // byte 6 is inside the second append
        b.schedule_log_fault(6, FaultKind::Torn);
        b.append_log(b"bbbb");
        b.flush().unwrap();
        assert!(b.fault_fired());
        b.append_log(b"cccc");
        b.put_snapshot(9, Bytes::from_static(b"late"));
        b.flush().unwrap();
        b.crash();
        assert_eq!(b.read_log().unwrap(), b"aaaabb", "torn at byte 6");
        assert!(
            !b.snapshot_seqs().unwrap().contains(&9),
            "post-crash snapshot writes must vanish"
        );
    }

    #[test]
    fn bit_flip_fault_corrupts_exactly_one_bit() {
        let mut b = Backend::open(temp_dir("backend-fault2")).unwrap();
        b.schedule_log_fault(2, FaultKind::BitFlip { bit: 0 });
        b.append_log(&[0u8, 0, 0, 0]);
        b.flush().unwrap();
        b.crash();
        assert_eq!(b.read_log().unwrap(), vec![0u8, 0, 1, 0]);
    }

    #[test]
    fn duplicated_tail_fault_appends_twice() {
        let mut b = Backend::open(temp_dir("backend-fault3")).unwrap();
        b.append_log(b"head|");
        b.flush().unwrap();
        b.schedule_log_fault(5, FaultKind::DuplicatedTail);
        b.append_log(b"tail|");
        b.flush().unwrap();
        b.crash();
        assert_eq!(b.read_log().unwrap(), b"head|tail|tail|");
    }

    #[test]
    fn fault_before_offset_leaves_writes_intact() {
        let mut b = Backend::open(temp_dir("backend-fault4")).unwrap();
        b.schedule_log_fault(100, FaultKind::Torn);
        b.append_log(b"safe");
        b.flush().unwrap();
        assert!(!b.fault_fired());
        assert_eq!(b.read_log().unwrap(), b"safe");
    }

    #[test]
    fn bytes_written_tracks_durable_volume() {
        let mut b = Backend::open(temp_dir("backend6")).unwrap();
        b.put_snapshot(1, Bytes::from_static(b"0123456789"));
        b.append_log(b"abcde");
        assert_eq!(b.bytes_written, 0, "nothing durable before flush");
        b.flush().unwrap();
        assert_eq!(b.bytes_written, 15);
    }
}
