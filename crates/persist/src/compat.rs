//! Backward-compatibility fixtures: pre-interning durable artifacts
//! must keep recovering bit-identically.
//!
//! The interned framing (ISSUE-5) changed what *new* snapshots and WAL
//! frames look like — v3 snapshots write the schema in id order, row
//! records carry varint column ids. Logs and snapshots written before
//! that (v2 snapshots with a name-ordered schema, string-named WAL
//! records under the legacy tags) still exist on disk in deployed
//! stores; recovery must decode them to the exact same world the old
//! code would have produced. These tests pin that contract with
//! byte-level fixtures:
//!
//! * a v2 snapshot assembled by a local copy of the v2 encoder,
//! * legacy WAL frames assembled both through [`CompRef::Name`]
//!   encoding (which preserves the old tags by design) and — for the
//!   hot `Set` record — from raw hand-written bytes, so the exact old
//!   layout is pinned independent of the encoder,
//! * a mixed log (legacy prefix, interned tail) — what a store looks
//!   like after an in-place upgrade without a fresh checkpoint.

#![cfg(test)]

use bytes::{BufMut, BytesMut};
use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{ComponentId, EntityId, IndexKind, Query, World};
use gamedb_spatial::Vec2;

use crate::snapshot::{checksum, decode, put_catalog, put_str, put_value};
use crate::wal::{decode_log, CompRef, WalRecord};
use crate::walstore::recover_from_parts;

/// The pre-interning snapshot encoder, verbatim: magic v2, schema in
/// **name** order, entities, rows by schema index, catalog, checksum.
fn encode_v2(world: &World) -> Vec<u8> {
    const MAGIC_V2: u32 = 0x6744_4202;
    let type_tag = |ty: ValueType| -> u8 {
        match ty {
            ValueType::Float => 0,
            ValueType::Int => 1,
            ValueType::Bool => 2,
            ValueType::Str => 3,
            ValueType::Vec2 => 4,
        }
    };
    let mut body = BytesMut::new();
    let schema: Vec<(String, ValueType)> = world
        .schema()
        .map(|(n, t)| (n.to_string(), t))
        .collect();
    body.put_u32_le(schema.len() as u32);
    for (name, ty) in &schema {
        put_str(&mut body, name);
        body.put_u8(type_tag(*ty));
    }
    let entities: Vec<EntityId> = world.entities().collect();
    body.put_u32_le(entities.len() as u32);
    for e in &entities {
        body.put_u64_le(e.to_bits());
    }
    for &e in &entities {
        let rows: Vec<(usize, Value)> = schema
            .iter()
            .enumerate()
            .filter_map(|(i, (name, _))| world.get(e, name).map(|v| (i, v)))
            .collect();
        body.put_u32_le(rows.len() as u32);
        for (i, v) in rows {
            body.put_u32_le(i as u32);
            put_value(&mut body, &v);
        }
    }
    put_catalog(&mut body, &world.export_catalog(), false);
    let mut out = BytesMut::with_capacity(body.len() + 28);
    out.put_u32_le(MAGIC_V2);
    out.put_u64_le(world.tick());
    out.put_u64_le(world.lineage());
    out.put_u32_le(body.len() as u32);
    let cksum = checksum(&body);
    out.put_slice(&body);
    out.put_u32_le(cksum);
    out.to_vec()
}

/// A raw legacy `Set` frame, byte-by-byte from the old wire spec:
/// `len | tag=1 | entity | name_len | name | value_tag | value | cksum`.
fn raw_legacy_set_frame(entity: EntityId, name: &str, hp: f32) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u8(1); // TAG_SET
    payload.put_u64_le(entity.to_bits());
    payload.put_u32_le(name.len() as u32);
    payload.put_slice(name.as_bytes());
    payload.put_u8(0); // value tag: Float
    payload.put_f32_le(hp);
    let mut framed = BytesMut::new();
    framed.put_u32_le(payload.len() as u32);
    let sum = checksum(&payload);
    framed.put_slice(&payload);
    framed.put_u32_le(sum);
    framed.to_vec()
}

fn sample_world() -> (World, Vec<EntityId>) {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    let mut ids = Vec::new();
    for i in 0..6 {
        let e = w.spawn_at(Vec2::new(i as f32 * 3.0, -(i as f32)));
        w.set_f32(e, "hp", 10.0 * i as f32).unwrap();
        w.set(e, "team", Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()))
            .unwrap();
        w.set(e, "gold", Value::Int(i as i64 * 7)).unwrap();
        ids.push(e);
    }
    w.despawn(ids[3]);
    w.create_index("hp", IndexKind::Sorted).unwrap();
    w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(35.0)));
    w.advance_tick_to(9);
    (w, ids)
}

/// A v2 snapshot (name-ordered schema, no interner table) decodes to
/// the same database the old decoder produced: rows, ids, tick,
/// catalog, index probes, views.
#[test]
fn v2_snapshot_decodes_bit_identically() {
    let (w, _) = sample_world();
    let v2 = encode_v2(&w);
    let (decoded, tick) = decode(&v2).unwrap();
    assert_eq!(tick, w.tick());
    assert_eq!(decoded.rows(), w.rows());
    assert_eq!(decoded.tick(), w.tick());
    assert_eq!(decoded.lineage(), w.lineage());
    assert_eq!(decoded.export_catalog(), w.export_catalog());
    crate::crashpoint::assert_equivalent(&decoded, &w).unwrap();
}

/// v2 and v3 snapshots of one world decode to equal databases — the
/// format bump changes bytes, never meaning. (The interner tables may
/// assign different ids — v2 re-interns in name order — which is
/// invisible to every name-keyed surface and only matters to *new*
/// id-keyed WAL tails, which always follow a v3 snapshot.)
#[test]
fn v2_and_v3_snapshots_agree() {
    let (w, _) = sample_world();
    let (from_v2, _) = decode(&encode_v2(&w)).unwrap();
    let (from_v3, _) = decode(&crate::snapshot::encode(&w)).unwrap();
    assert_eq!(from_v2.rows(), from_v3.rows());
    assert_eq!(from_v2.export_catalog(), from_v3.export_catalog());
    // v3 restores the source interner verbatim
    for (id, name, ty) in w.schema_by_id() {
        assert_eq!(from_v3.component_id(name), Some(id));
        assert_eq!(from_v3.component_type(name), Some(ty));
    }
}

/// Pre-interning WAL frames — string-named records under the legacy
/// tags, including a raw hand-assembled `Set` frame — replay onto a v2
/// snapshot to the exact world the old code recovered.
#[test]
fn legacy_wal_frames_recover_bit_identically() {
    // the durable state: a v2 snapshot of the base, then legacy frames
    let mut base = World::new();
    base.define_component("hp", ValueType::Float).unwrap();
    let e0 = base.spawn_at(Vec2::ZERO);
    base.set_f32(e0, "hp", 50.0).unwrap();
    let snapshot = encode_v2(&base);

    let mut log: Vec<u8> = Vec::new();
    log.extend_from_slice(&WalRecord::CheckpointMark { seq: 0 }.encode());
    // a raw byte-level legacy Set frame (pins the old layout exactly)
    log.extend_from_slice(&raw_legacy_set_frame(e0, "hp", 12.5));
    // the rest of the legacy record family via CompRef::Name encoding
    let e1 = EntityId::from_bits(1);
    for r in [
        WalRecord::Spawn { entity: e1, x: 3.0, y: 4.0 },
        WalRecord::Set {
            entity: e1,
            component: "mana".into(), // legacy auto-define on replay
            value: Value::Float(9.0),
        },
        WalRecord::CreateIndex { component: "hp".into(), kind: IndexKind::Sorted },
        WalRecord::RegisterView {
            slot: 0,
            query: Query::select().filter("hp", CmpOp::Lt, Value::Float(20.0)),
        },
        WalRecord::RemoveComponent { entity: e1, component: "mana".into() },
        WalRecord::TickTo { tick: 4 },
        WalRecord::DropIndex { component: "hp".into() },
    ] {
        // legacy-form records must round-trip through the current codec
        // in legacy form (compaction re-frames decoded records)
        let bytes = r.encode();
        let (decoded, used) = decode_log(&bytes);
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, vec![r.clone()]);
        log.extend_from_slice(&bytes);
    }

    let (recovered, seq, replayed) =
        recover_from_parts(&[(0u64, snapshot.as_slice())], &log).unwrap();
    assert_eq!((seq, replayed), (0, 8));

    // the oracle: the same history through the live write API
    let mut oracle = base;
    oracle.set_f32(e0, "hp", 12.5).unwrap();
    oracle.restore_entity(e1).unwrap();
    oracle.set_pos(e1, Vec2::new(3.0, 4.0)).unwrap();
    oracle.define_component("mana", ValueType::Float).unwrap();
    oracle.set_f32(e1, "mana", 9.0).unwrap();
    oracle.create_index("hp", IndexKind::Sorted).unwrap();
    oracle
        .import_view_at_slot(0, Query::select().filter("hp", CmpOp::Lt, Value::Float(20.0)))
        .unwrap();
    oracle.remove_component(e1, "mana").unwrap();
    oracle.advance_tick_to(4);
    oracle.drop_index("hp");
    oracle.refresh_views();
    oracle.reset_view_changelogs();

    crate::crashpoint::assert_equivalent(&recovered, &oracle).unwrap();
}

/// The in-place-upgrade shape: a legacy log tail continued by the new
/// code (interned frames with `Define` records) after recovery from a
/// v2 snapshot. The mixed log must replay end-to-end.
#[test]
fn mixed_legacy_and_interned_log_replays() {
    let mut base = World::new();
    base.define_component("hp", ValueType::Float).unwrap();
    let e = base.spawn_at(Vec2::ZERO);
    base.set_f32(e, "hp", 1.0).unwrap();
    let snapshot = encode_v2(&base);

    // what the upgraded process's interner looks like after recovering
    // that v2 snapshot: name-order re-interning
    let (upgraded, _) = decode(&snapshot).unwrap();
    let hp = upgraded.component_id("hp").unwrap();
    let next = ComponentId::from_u32(upgraded.component_count() as u32);

    let mut log: Vec<u8> = Vec::new();
    log.extend_from_slice(&WalRecord::CheckpointMark { seq: 0 }.encode());
    // legacy prefix (written before the upgrade)
    log.extend_from_slice(&raw_legacy_set_frame(e, "hp", 33.0));
    // interned tail (written after): Define precedes first id use
    for r in [
        WalRecord::Set {
            entity: e,
            component: CompRef::Id(hp),
            value: Value::Float(44.0),
        },
        WalRecord::Define {
            component: next,
            name: "rage".into(),
            ty: ValueType::Int,
        },
        WalRecord::Set {
            entity: e,
            component: CompRef::Id(next),
            value: Value::Int(7),
        },
    ] {
        log.extend_from_slice(&r.encode());
    }

    let (recovered, _, replayed) =
        recover_from_parts(&[(0u64, snapshot.as_slice())], &log).unwrap();
    assert_eq!(replayed, 4);
    assert_eq!(recovered.get_f32(e, "hp"), Some(44.0));
    assert_eq!(recovered.get_i64(e, "rage"), Some(7));
    assert_eq!(recovered.component_id("rage"), Some(next));
}

/// Interned frames are strictly smaller than their legacy string
/// counterparts — the record-size claim at the wire level.
#[test]
fn interned_frames_shrink_encoded_records() {
    let e = EntityId::from_bits(5);
    let hp = ComponentId::from_u32(1);
    for (interned, legacy) in [
        (
            WalRecord::Set { entity: e, component: CompRef::Id(hp), value: Value::Float(1.0) },
            WalRecord::Set { entity: e, component: "hp".into(), value: Value::Float(1.0) },
        ),
        (
            WalRecord::RemoveComponent { entity: e, component: CompRef::Id(hp) },
            WalRecord::RemoveComponent { entity: e, component: "hp".into() },
        ),
        (
            WalRecord::CreateIndex { component: CompRef::Id(hp), kind: IndexKind::Sorted },
            WalRecord::CreateIndex { component: "hp".into(), kind: IndexKind::Sorted },
        ),
        (
            WalRecord::DropIndex { component: CompRef::Id(hp) },
            WalRecord::DropIndex { component: "hp".into() },
        ),
    ] {
        assert!(
            interned.encode().len() < legacy.encode().len(),
            "{interned:?} must encode smaller than {legacy:?}"
        );
    }
}
