//! # gamedb-persist
//!
//! The engineering layer of *Database Research in Computer Games*
//! (SIGMOD 2009): an in-memory write-behind store over a durable backend,
//! checkpoint policies (periodic versus the paper's "intelligent"
//! event-driven checkpointing), crash/recovery with loss accounting, and
//! schema evolution — live migrations versus the legacy-preserving blob
//! strategy.
//!
//! ## Contents
//!
//! * [`snapshot`] — checksummed binary world snapshots.
//! * [`backend`] — the stand-in "commercial database": atomic snapshot
//!   installation, append-only log, crash injection ([`Backend`]).
//! * [`checkpoint`] — [`GameStore`] + [`CheckpointPolicy`] +
//!   [`RecoveryReport`].
//! * [`delta`] — incremental checkpoints: content-hashed dirty rows,
//!   snapshot + delta-chain recovery ([`encode_delta`]).
//! * [`schema`] — [`StructuredStore`] vs [`BlobStore`] migrations.
//! * [`wal`] / [`walstore`] — redo logging between checkpoints: the
//!   zero-loss recovery mode ([`WalStore`] with group commit).
//!
//! ```no_run
//! use gamedb_persist::{Backend, CheckpointPolicy, GameStore};
//! use gamedb_core::World;
//!
//! let backend = Backend::open("/tmp/gamedb-demo").unwrap();
//! let mut store = GameStore::new(
//!     World::new(),
//!     backend,
//!     CheckpointPolicy::Hybrid { period: 600.0, threshold: 50.0 },
//! ).unwrap();
//! // game loop: report events with importance; boss kills flush early
//! store.observe(1.0, 0.1).unwrap();
//! store.observe(1.0, 100.0).unwrap(); // boss kill -> checkpoint now
//! let (recovered, report) = store.crash_and_recover().unwrap();
//! assert_eq!(report.lost_importance, 0.0);
//! # let _ = recovered;
//! ```

pub mod backend;
pub mod checkpoint;
#[cfg(test)]
mod compat;
pub mod crashpoint;
pub mod delta;
pub(crate) mod metrics;
pub mod schema;
pub mod snapshot;
pub mod wal;
pub mod walstore;

pub use backend::{temp_dir, Backend, BackendError, FaultKind};
pub use checkpoint::{
    CheckpointPolicy, GameStore, Importance, RecoveryReport, SnapshotMode, StoreStats,
};
pub use crashpoint::{
    assert_equivalent, run_live_torn, run_live_torn_async, run_sweep, SweepConfig, SweepReport,
};
pub use delta::{apply_delta, encode_delta, row_hashes, RowHashes};
pub use schema::{
    BlobStore, Migration, MigrationError, MigrationStats, SchemaVersion, StructuredStore,
};
pub use snapshot::{checksum, decode, encode, SnapshotError};
pub use wal::{decode_log, replay_after_checkpoint, varint_len, CompRef, WalRecord};
pub use walstore::{
    recover_from_parts, CommitSeq, FlushPolicy, StoreError, WalStats, WalStore, WalWatermark,
};
