//! Incremental (delta) checkpoints.
//!
//! A full snapshot of a 100k-entity world every few seconds is most of an
//! MMO's database bill — and almost all of it re-writes rows that did not
//! change. A delta checkpoint ships only the rows whose content changed
//! since the previous checkpoint, plus the ids that disappeared.
//!
//! Dirty rows are found by *content hashing* ([`row_hashes`]): the store
//! keeps one 64-bit FNV hash per row from the last checkpoint and
//! re-hashes at checkpoint time. This needs no write-tracking hooks in
//! the engine (scripts and executors mutate the world freely) at the cost
//! of an O(rows) hash pass — the same trade real games make when bolting
//! persistence onto an engine that never heard of it.
//!
//! Recovery composes: latest full snapshot, then every delta after it in
//! sequence order ([`apply_delta`]).

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gamedb_content::{Value, ValueType};
use gamedb_core::{EntityId, World, POS};

use crate::snapshot::{checksum, get_value, put_value, SnapshotError};

/// Delta format magic + version. v2 appends the world catalog
/// (indexes, standing views, lineage, tick) to every delta: derived-
/// state definitions and the tick counter change between checkpoints
/// too, and an incremental recovery that replayed rows but restored
/// the *base snapshot's* catalog would silently lose an index or view
/// registered (or keep one dropped) after the last full snapshot.
/// v3 extends the catalog with the operator-tree (plan) views.
const DELTA_MAGIC: u32 = 0x6744_4403;

/// Content hash of every live row, keyed by entity id bits.
pub type RowHashes = HashMap<u64, u64>;

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| {
        (h ^ b as u64).wrapping_mul(1099511628211)
    })
}

fn hash_row(world: &World, schema: &[(String, ValueType)], e: EntityId) -> u64 {
    let mut buf = BytesMut::new();
    for (name, _) in schema {
        if let Some(v) = world.get(e, name) {
            buf.put_u8(1);
            put_value(&mut buf, &v);
        } else {
            buf.put_u8(0);
        }
    }
    if let Some(p) = world.pos(e) {
        buf.put_f32_le(p.x);
        buf.put_f32_le(p.y);
    }
    fnv(1469598103934665603, &buf)
}

fn non_pos_schema(world: &World) -> Vec<(String, ValueType)> {
    world
        .schema()
        .filter(|(n, _)| *n != POS)
        .map(|(n, t)| (n.to_string(), t))
        .collect()
}

/// Hash every live row (the baseline the next delta diffs against).
pub fn row_hashes(world: &World) -> RowHashes {
    let schema = non_pos_schema(world);
    world
        .entities()
        .map(|e| (e.to_bits(), hash_row(world, &schema, e)))
        .collect()
}

/// Encode the rows that changed since `prev`, returning the delta bytes
/// and the fresh hash baseline. The delta carries the full schema (new
/// components appear in deltas too), upserted rows, and removed ids.
pub fn encode_delta(world: &World, prev: &RowHashes) -> (Bytes, RowHashes) {
    let schema = non_pos_schema(world);
    let mut fresh = RowHashes::with_capacity(prev.len());
    let mut upserts: Vec<EntityId> = Vec::new();
    for e in world.entities() {
        let h = hash_row(world, &schema, e);
        if prev.get(&e.to_bits()) != Some(&h) {
            upserts.push(e);
        }
        fresh.insert(e.to_bits(), h);
    }
    let removed: Vec<u64> = prev
        .keys()
        .filter(|bits| !fresh.contains_key(*bits))
        .copied()
        .collect();

    let mut body = BytesMut::new();
    body.put_u32_le(schema.len() as u32);
    for (name, ty) in &schema {
        body.put_u32_le(name.len() as u32);
        body.put_slice(name.as_bytes());
        body.put_u8(crate::snapshot::type_tag_pub(*ty));
    }
    // removals first: a freed slot may be re-used by an upserted entity
    // with a newer generation
    body.put_u32_le(removed.len() as u32);
    for bits in removed {
        body.put_u64_le(bits);
    }
    body.put_u32_le(upserts.len() as u32);
    for &e in &upserts {
        body.put_u64_le(e.to_bits());
        // position first (optional), then present components
        match world.pos(e) {
            Some(p) => {
                body.put_u8(1);
                body.put_f32_le(p.x);
                body.put_f32_le(p.y);
            }
            None => body.put_u8(0),
        }
        let present: Vec<(usize, Value)> = schema
            .iter()
            .enumerate()
            .filter_map(|(i, (name, _))| world.get(e, name).map(|v| (i, v)))
            .collect();
        body.put_u32_le(present.len() as u32);
        for (i, v) in present {
            body.put_u32_le(i as u32);
            put_value(&mut body, &v);
        }
    }
    // catalog + identity: carried wholesale (definitions are tiny next
    // to rows) so recovery lands on this checkpoint's derived state and
    // tick, not the base snapshot's
    body.put_u64_le(world.lineage());
    body.put_u64_le(world.tick());
    crate::snapshot::put_catalog(&mut body, &world.export_catalog(), true);
    let mut out = BytesMut::with_capacity(body.len() + 16);
    out.put_u32_le(DELTA_MAGIC);
    out.put_u32_le(body.len() as u32);
    let cksum = checksum(&body);
    out.put_slice(&body);
    out.put_u32_le(cksum);
    (out.freeze(), fresh)
}

/// Apply one delta to a world recovered from the preceding snapshot (or
/// earlier deltas). Upserted rows replace the entity's components
/// entirely; removed ids despawn.
pub fn apply_delta(world: &mut World, data: &[u8]) -> Result<(), SnapshotError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len + 4 {
        return Err(SnapshotError::Truncated);
    }
    let body = buf.copy_to_bytes(len);
    let expected = buf.get_u32_le();
    let got = checksum(&body);
    if expected != got {
        return Err(SnapshotError::ChecksumMismatch { expected, got });
    }

    let mut buf = body;
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(SnapshotError::Truncated);
            }
        };
    }
    need!(4);
    let n_schema = buf.get_u32_le() as usize;
    let mut schema = Vec::with_capacity(n_schema);
    for _ in 0..n_schema {
        need!(4);
        let name_len = buf.get_u32_le() as usize;
        need!(name_len + 1);
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-utf8 component name".into()))?;
        let ty = crate::snapshot::tag_type_pub(buf.get_u8())?;
        match world.component_type(&name) {
            Some(existing) if existing != ty => {
                return Err(SnapshotError::Corrupt(format!(
                    "component {name} type changed across delta"
                )))
            }
            Some(_) => {}
            None => world
                .define_component(&name, ty)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        }
        schema.push((name, ty));
    }

    need!(4);
    let n_removed = buf.get_u32_le() as usize;
    for _ in 0..n_removed {
        need!(8);
        let id = EntityId::from_bits(buf.get_u64_le());
        world.despawn(id);
    }

    need!(4);
    let n_upserts = buf.get_u32_le() as usize;
    for _ in 0..n_upserts {
        need!(9);
        let id = EntityId::from_bits(buf.get_u64_le());
        if !world.is_live(id) {
            world
                .restore_entity(id)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        }
        let has_pos = buf.get_u8() != 0;
        if has_pos {
            need!(8);
            let x = buf.get_f32_le();
            let y = buf.get_f32_le();
            world
                .set(id, POS, Value::Vec2(x, y))
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        }
        need!(4);
        let n_present = buf.get_u32_le() as usize;
        let mut present = vec![false; schema.len()];
        for _ in 0..n_present {
            need!(4);
            let idx = buf.get_u32_le() as usize;
            let (name, ty) = schema
                .get(idx)
                .ok_or_else(|| SnapshotError::Corrupt(format!("schema index {idx}")))?;
            let value = get_value(&mut buf, *ty)?;
            world
                .set(id, name, value)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
            present[idx] = true;
        }
        // the upsert is the whole row: components absent from it were
        // cleared between checkpoints
        for (idx, (name, _)) in schema.iter().enumerate() {
            if !present[idx] && world.get(id, name).is_some() {
                world
                    .remove_component(id, name)
                    .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
            }
        }
    }

    // catalog + identity: make derived state exactly match this
    // checkpoint (drops included), adopt its lineage and tick
    need!(16);
    let lineage = buf.get_u64_le();
    let tick = buf.get_u64_le();
    let catalog = crate::snapshot::get_catalog(&mut buf, lineage, tick, true)?;
    world
        .reconcile_catalog(&catalog)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_spatial::Vec2;

    fn world(n: usize) -> (World, Vec<EntityId>) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        let mut ids = Vec::new();
        for i in 0..n {
            let e = w.spawn_at(Vec2::new(i as f32, 0.0));
            w.set_f32(e, "hp", 100.0).unwrap();
            w.set(e, "gold", Value::Int(10 * i as i64)).unwrap();
            ids.push(e);
        }
        (w, ids)
    }

    #[test]
    fn unchanged_world_produces_empty_delta() {
        let (w, _) = world(20);
        let base = row_hashes(&w);
        let (delta, fresh) = encode_delta(&w, &base);
        assert_eq!(base, fresh);
        // header + schema only — far smaller than a full snapshot
        assert!(delta.len() < crate::snapshot::encode(&w).len() / 2);
        let mut w2 = w.clone();
        apply_delta(&mut w2, &delta).unwrap();
        assert_eq!(w.rows(), w2.rows());
    }

    #[test]
    fn changed_rows_round_trip() {
        let (mut w, ids) = world(20);
        let recovered_base = w.clone();
        let base = row_hashes(&w);
        w.set_f32(ids[3], "hp", 55.0).unwrap();
        w.set_pos(ids[7], Vec2::new(99.0, 99.0)).unwrap();
        let (delta, _) = encode_delta(&w, &base);
        let mut recovered = recovered_base;
        apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(recovered.rows(), w.rows());
    }

    #[test]
    fn spawn_and_despawn_round_trip() {
        let (mut w, ids) = world(10);
        let base_world = w.clone();
        let base = row_hashes(&w);
        w.despawn(ids[2]);
        let newbie = w.spawn_at(Vec2::new(50.0, 50.0));
        w.set_f32(newbie, "hp", 1.0).unwrap();
        let (delta, _) = encode_delta(&w, &base);
        let mut recovered = base_world;
        apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(recovered.rows(), w.rows());
        assert!(!recovered.is_live(ids[2]));
        assert!(recovered.is_live(newbie));
    }

    #[test]
    fn cleared_component_round_trips() {
        let (mut w, ids) = world(5);
        let base_world = w.clone();
        let base = row_hashes(&w);
        w.remove_component(ids[1], "gold").unwrap();
        let (delta, _) = encode_delta(&w, &base);
        let mut recovered = base_world;
        apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(recovered.get(ids[1], "gold"), None);
        assert_eq!(recovered.rows(), w.rows());
    }

    #[test]
    fn new_component_defined_by_delta() {
        let (mut w, ids) = world(5);
        let base_world = w.clone();
        let base = row_hashes(&w);
        w.define_component("mana", ValueType::Float).unwrap();
        w.set_f32(ids[0], "mana", 30.0).unwrap();
        let (delta, _) = encode_delta(&w, &base);
        let mut recovered = base_world;
        apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(recovered.get_f32(ids[0], "mana"), Some(30.0));
    }

    #[test]
    fn chained_deltas_compose() {
        let (mut w, ids) = world(10);
        let mut recovered = w.clone();
        let mut hashes = row_hashes(&w);
        for step in 0..5 {
            w.set_f32(ids[step], "hp", step as f32).unwrap();
            if step == 2 {
                w.despawn(ids[9]);
            }
            let (delta, fresh) = encode_delta(&w, &hashes);
            hashes = fresh;
            apply_delta(&mut recovered, &delta).unwrap();
        }
        assert_eq!(recovered.rows(), w.rows());
    }

    #[test]
    fn delta_size_scales_with_change_not_world() {
        let (mut w, ids) = world(1000);
        let base = row_hashes(&w);
        w.set_f32(ids[0], "hp", 1.0).unwrap();
        let (small, _) = encode_delta(&w, &base);
        for &e in ids.iter().take(500) {
            w.set_f32(e, "hp", 2.0).unwrap();
        }
        let (big, _) = encode_delta(&w, &base);
        let full = crate::snapshot::encode(&w);
        assert!(small.len() * 20 < big.len(), "1 vs 500 rows");
        assert!(big.len() < full.len(), "500 rows < 1000 rows");
    }

    #[test]
    fn corruption_detected() {
        let (mut w, ids) = world(5);
        let base = row_hashes(&w);
        w.set_f32(ids[0], "hp", 1.0).unwrap();
        let (delta, _) = encode_delta(&w, &base);
        let mut bad = delta.to_vec();
        let n = bad.len();
        bad[n / 2] ^= 0xff;
        let mut w2 = World::new();
        assert!(apply_delta(&mut w2, &bad).is_err());
        assert!(matches!(
            apply_delta(&mut w2, b"notadelta......."),
            Err(SnapshotError::BadMagic(_))
        ));
    }
}
