//! A write-through store: every mutation is WAL-logged, recovery replays
//! the tail — the zero-loss alternative the checkpoint experiment (E9)
//! prices against snapshot-only policies.
//!
//! The knob is `group_commit`: how many records may sit in the OS buffer
//! before a durable flush. 1 = synchronous logging (lose nothing, pay a
//! flush per mutation); N = group commit (lose at most N-1 records, the
//! standard database trade).

use gamedb_content::Value;
use gamedb_core::{CoreError, EntityId, IndexKind, Query, ViewId, World};
use gamedb_spatial::Vec2;

use crate::backend::{Backend, BackendError};
use crate::snapshot;
use crate::wal::{decode_log, replay_after_checkpoint, WalRecord};

/// Recover a world from raw durable parts: `(seq, bytes)` snapshots in
/// ascending sequence order and the raw event log. This is the one
/// recovery algorithm — [`WalStore::crash_and_recover`] and the
/// crash-point sweep ([`crate::crashpoint`]) both run it:
///
/// 1. Decode the log into records, stopping cleanly at the first torn
///    or corrupt frame.
/// 2. Take the newest snapshot that decodes; fall back to older ones if
///    a snapshot itself is unreadable.
/// 3. Replay the record tail after that snapshot's checkpoint mark —
///    nothing when the mark is absent (see
///    [`replay_after_checkpoint`]); catalog records rebuild indexes and
///    views along the way.
/// 4. Fold outstanding view deltas and reset every changelog, so
///    subscribers re-anchor at the recovery tick instead of receiving
///    pre-crash churn twice.
///
/// Returns `(world, snapshot seq used, records replayed)`.
pub fn recover_from_parts<S: AsRef<[u8]>>(
    snapshots: &[(u64, S)],
    log: &[u8],
) -> Result<(World, u64, usize), StoreError> {
    let (records, _) = decode_log(log);
    let mut last_err: Option<StoreError> = None;
    for (seq, data) in snapshots.iter().rev() {
        let mut world = match snapshot::decode(data.as_ref()) {
            Ok((world, _tick)) => world,
            Err(e) => {
                last_err = Some(StoreError::Backend(BackendError::Io(
                    std::io::Error::other(e.to_string()),
                )));
                continue;
            }
        };
        let replayed = replay_after_checkpoint(&mut world, &records, *seq)?;
        world.refresh_views();
        world.reset_view_changelogs();
        return Ok((world, *seq, replayed));
    }
    Err(last_err.unwrap_or(StoreError::Backend(BackendError::NoSnapshot)))
}

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// Records logged.
    pub records: u64,
    /// Durable flushes issued.
    pub flushes: u64,
    /// Snapshots written.
    pub checkpoints: u64,
}

/// A world whose mutations are all redo-logged.
pub struct WalStore {
    /// The live world. Mutate only through the store's methods — direct
    /// mutation bypasses the log and will not survive a crash.
    world: World,
    backend: Backend,
    snapshot_seq: u64,
    group_commit: usize,
    pending: usize,
    /// stats
    pub stats: WalStats,
}

impl WalStore {
    /// Wrap a world. Writes the base snapshot immediately.
    pub fn new(
        world: World,
        mut backend: Backend,
        group_commit: usize,
    ) -> Result<Self, BackendError> {
        backend.put_snapshot(0, snapshot::encode(&world));
        backend.append_log(&WalRecord::CheckpointMark { seq: 0 }.encode());
        backend.flush()?;
        Ok(WalStore {
            world,
            backend,
            snapshot_seq: 0,
            group_commit: group_commit.max(1),
            pending: 0,
            stats: WalStats::default(),
        })
    }

    /// Read access to the world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access for **view maintenance only**: subscribers
    /// (threshold watchers, auditors, replicators) need `&mut World` to
    /// fold pending deltas and consume changelogs between ticks —
    /// bookkeeping that never changes row state, so the log stays
    /// truthful. Row mutations through this reference bypass the WAL
    /// and will not survive a crash — use the store's logged methods,
    /// and register subscriber views via [`WalStore::ensure_view`] so
    /// the subscriptions themselves are durable.
    pub fn world_for_subscribers(&mut self) -> &mut World {
        &mut self.world
    }

    /// Backend access (write-volume metrics).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable backend access — the crash-point sweep schedules byte-
    /// offset faults on the live backend through this.
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    fn log(&mut self, record: WalRecord) -> Result<(), BackendError> {
        self.backend.append_log(&record.encode());
        self.stats.records += 1;
        self.pending += 1;
        if self.pending >= self.group_commit {
            self.backend.flush()?;
            self.stats.flushes += 1;
            self.pending = 0;
        }
        Ok(())
    }

    /// Logged component write.
    pub fn set(
        &mut self,
        id: EntityId,
        component: &str,
        value: Value,
    ) -> Result<(), StoreError> {
        self.world.set(id, component, value.clone())?;
        self.log(WalRecord::Set {
            entity: id,
            component: component.to_string(),
            value,
        })?;
        Ok(())
    }

    /// Logged position write.
    pub fn set_pos(&mut self, id: EntityId, pos: Vec2) -> Result<(), StoreError> {
        self.world.set_pos(id, pos)?;
        self.log(WalRecord::Set {
            entity: id,
            component: gamedb_core::POS.to_string(),
            value: Value::Vec2(pos.x, pos.y),
        })?;
        Ok(())
    }

    /// Logged spawn.
    pub fn spawn_at(&mut self, pos: Vec2) -> Result<EntityId, StoreError> {
        let id = self.world.spawn_at(pos);
        self.log(WalRecord::Spawn {
            entity: id,
            x: pos.x,
            y: pos.y,
        })?;
        Ok(id)
    }

    /// Logged despawn.
    pub fn despawn(&mut self, id: EntityId) -> Result<bool, StoreError> {
        let was_live = self.world.despawn(id);
        if was_live {
            self.log(WalRecord::Despawn { entity: id })?;
        }
        Ok(was_live)
    }

    /// Logged component removal.
    pub fn remove_component(
        &mut self,
        id: EntityId,
        component: &str,
    ) -> Result<bool, StoreError> {
        let removed = self.world.remove_component(id, component)?;
        if removed {
            self.log(WalRecord::RemoveComponent {
                entity: id,
                component: component.to_string(),
            })?;
        }
        Ok(removed)
    }

    // ---- logged catalog operations ----
    //
    // Index and view lifecycle is state too: a recovered world without
    // its access paths and subscriptions is a different database. Each
    // operation mutates the live world and logs a catalog redo record;
    // checkpoints capture the current catalog inside the snapshot, so
    // recovery composes either way.

    /// Logged secondary-index creation.
    pub fn create_index(&mut self, component: &str, kind: IndexKind) -> Result<(), StoreError> {
        self.world.create_index(component, kind)?;
        self.log(WalRecord::CreateIndex {
            component: component.to_string(),
            kind,
        })?;
        Ok(())
    }

    /// Logged secondary-index drop.
    pub fn drop_index(&mut self, component: &str) -> Result<bool, StoreError> {
        let existed = self.world.drop_index(component);
        if existed {
            self.log(WalRecord::DropIndex {
                component: component.to_string(),
            })?;
        }
        Ok(existed)
    }

    /// Logged standing-view registration.
    pub fn register_view(&mut self, query: Query) -> Result<ViewId, StoreError> {
        let id = self.world.register_view(query.clone());
        self.log(WalRecord::RegisterView {
            slot: id.slot(),
            query,
        })?;
        Ok(id)
    }

    /// The subscriber attach point: adopt the live view already
    /// maintaining `query` (first boot registered it, or recovery
    /// re-materialized it), or register — and log — a fresh one.
    /// Subscribers that take a query (threshold watchers, auditors,
    /// interest bubbles) should route their registration through this
    /// rather than `world_for_subscribers().register_view(..)`, which
    /// would bypass the log and leave the subscription behind on the
    /// next crash.
    pub fn ensure_view(&mut self, query: Query) -> Result<ViewId, StoreError> {
        match self.world.find_view(&query) {
            Some(id) => Ok(id),
            None => self.register_view(query),
        }
    }

    /// Logged standing-view drop.
    pub fn drop_view(&mut self, id: ViewId) -> Result<bool, StoreError> {
        let dropped = self.world.drop_view(id);
        if dropped {
            self.log(WalRecord::DropView { slot: id.slot() })?;
        }
        Ok(dropped)
    }

    /// Logged spatial-view retarget.
    pub fn retarget_view(
        &mut self,
        id: ViewId,
        center: Vec2,
        radius: f32,
    ) -> Result<(), StoreError> {
        self.world.retarget_view(id, center, radius);
        self.log(WalRecord::RetargetView {
            slot: id.slot(),
            x: center.x,
            y: center.y,
            radius,
        })?;
        Ok(())
    }

    /// Logged tick advance: views refresh and publish their changelog
    /// batch, and recovery restores the counter so post-restart worlds
    /// agree with the oracle on *when* they are.
    pub fn advance_tick(&mut self) -> Result<u64, StoreError> {
        let next = self.world.tick() + 1;
        self.world.advance_tick_to(next);
        self.log(WalRecord::TickTo { tick: next })?;
        Ok(next)
    }

    /// Write a checkpoint: snapshot + mark. The log logically truncates
    /// at the mark (replay skips everything before it).
    pub fn checkpoint(&mut self) -> Result<(), BackendError> {
        self.snapshot_seq += 1;
        self.backend
            .put_snapshot(self.snapshot_seq, snapshot::encode(&self.world));
        self.backend
            .append_log(&WalRecord::CheckpointMark {
                seq: self.snapshot_seq,
            }
            .encode());
        self.backend.flush()?;
        self.stats.checkpoints += 1;
        self.stats.flushes += 1;
        self.pending = 0;
        Ok(())
    }

    /// Compact the event log: drop every record before the last
    /// checkpoint mark (replay never looks at them) and atomically
    /// rewrite the log as just that tail. Returns (bytes before, bytes
    /// after). Without compaction the log grows without bound — this is
    /// the maintenance task a live MMO schedules alongside checkpoints.
    pub fn compact_log(&mut self) -> Result<(u64, u64), StoreError> {
        let before = self.backend.log_len()?;
        let log = self.backend.read_log()?;
        let (records, _) = decode_log(&log);
        let cut = records
            .iter()
            .rposition(
                |r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == self.snapshot_seq),
            )
            .unwrap_or(0); // keep the mark itself: recovery anchors on it
        let mut tail = Vec::new();
        for r in &records[cut..] {
            tail.extend_from_slice(&r.encode());
        }
        self.backend.replace_log(&tail);
        self.backend.flush()?;
        self.stats.flushes += 1;
        Ok((before, self.backend.log_len()?))
    }

    /// Crash (unflushed writes vanish) then recover: load the latest
    /// decodable durable snapshot — catalog included — and replay the
    /// durable log tail through [`recover_from_parts`]. The recovered
    /// world carries its indexes, its standing views at their original
    /// slots (pre-crash [`ViewId`] handles keep resolving), its lineage,
    /// and its tick counter; view changelogs restart empty at the
    /// recovery tick. Returns the recovered store and the number of
    /// records replayed.
    pub fn crash_and_recover(mut self) -> Result<(WalStore, usize), StoreError> {
        self.backend.crash();
        let mut snapshots = Vec::new();
        for seq in self.backend.snapshot_seqs()? {
            snapshots.push((seq, self.backend.read_snapshot(seq)?));
        }
        let log = self.backend.read_log()?;
        let (world, seq, replayed) = recover_from_parts(&snapshots, &log)?;
        Ok((
            WalStore {
                world,
                backend: self.backend,
                snapshot_seq: seq,
                group_commit: self.group_commit,
                pending: 0,
                stats: self.stats,
            },
            replayed,
        ))
    }
}

/// Errors from the WAL store.
#[derive(Debug)]
pub enum StoreError {
    Core(CoreError),
    Backend(BackendError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "world: {e}"),
            StoreError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<BackendError> for StoreError {
    fn from(e: BackendError) -> Self {
        StoreError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::temp_dir;
    use gamedb_content::ValueType;

    fn fresh(group_commit: usize, label: &str) -> WalStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        WalStore::new(w, backend, group_commit).unwrap()
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_recovery() {
        let mut s = fresh(1, "wal-compact");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        for i in 0..200 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        // post-checkpoint writes must survive compaction
        s.set(e, "hp", Value::Float(777.0)).unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert!(after < before / 4, "before={before} after={after}");
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(777.0));
        assert_eq!(replayed, 1, "only the post-checkpoint record replays");
    }

    #[test]
    fn compaction_without_checkpoint_is_safe() {
        let mut s = fresh(1, "wal-compact2");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        s.set(e, "hp", Value::Float(5.0)).unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert_eq!(before, after, "nothing before the base mark to drop");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(5.0));
    }

    #[test]
    fn repeated_compaction_is_idempotent() {
        let mut s = fresh(1, "wal-compact3");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        for i in 0..50 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        let (_, first) = s.compact_log().unwrap();
        let (before2, second) = s.compact_log().unwrap();
        assert_eq!(first, before2);
        assert_eq!(first, second);
    }

    #[test]
    fn synchronous_logging_loses_nothing() {
        let mut s = fresh(1, "wal-sync");
        let e = s.spawn_at(Vec2::new(1.0, 2.0)).unwrap();
        s.set(e, "hp", Value::Float(33.0)).unwrap();
        s.set_pos(e, Vec2::new(5.0, 5.0)).unwrap();
        let live_rows = s.world().rows();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live_rows);
        assert_eq!(replayed, 3);
    }

    #[test]
    fn group_commit_bounds_loss() {
        let mut s = fresh(10, "wal-group");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        // 9 more records => exactly one flush of 10 fires
        for i in 0..9 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        // 3 unflushed records follow
        for i in 100..103 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 10, "only the flushed group survives");
        assert_eq!(
            recovered.world().get_f32(e, "hp"),
            Some(8.0),
            "last durable write wins; the 3 unflushed are lost"
        );
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let mut s = fresh(1, "wal-cp");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        for i in 0..50 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        s.set(e, "hp", Value::Float(999.0)).unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(999.0));
    }

    #[test]
    fn despawn_survives_recovery() {
        let mut s = fresh(1, "wal-despawn");
        let a = s.spawn_at(Vec2::ZERO).unwrap();
        let b = s.spawn_at(Vec2::new(1.0, 0.0)).unwrap();
        s.despawn(a).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(!recovered.world().is_live(a));
        assert!(recovered.world().is_live(b));
        assert_eq!(recovered.world().len(), 1);
    }

    #[test]
    fn recovery_then_continue_then_recover_again() {
        let mut s = fresh(1, "wal-twice");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(e, "hp", Value::Float(1.0)).unwrap();
        let (mut s, _) = s.crash_and_recover().unwrap();
        s.set(e, "hp", Value::Float(2.0)).unwrap();
        let f = s.spawn_at(Vec2::new(9.0, 9.0)).unwrap();
        let (s, _) = s.crash_and_recover().unwrap();
        assert_eq!(s.world().get_f32(e, "hp"), Some(2.0));
        assert!(s.world().is_live(f));
    }

    #[test]
    fn catalog_operations_survive_recovery() {
        use gamedb_content::CmpOp;
        let mut s = fresh(1, "wal-catalog");
        let a = s.spawn_at(Vec2::ZERO).unwrap();
        let b = s.spawn_at(Vec2::new(50.0, 0.0)).unwrap();
        s.set(a, "hp", Value::Float(5.0)).unwrap();
        s.set(b, "hp", Value::Float(80.0)).unwrap();
        s.create_index("hp", IndexKind::Sorted).unwrap();
        let wounded = s
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)))
            .unwrap();
        let near = s
            .register_view(Query::select().within(Vec2::ZERO, 10.0))
            .unwrap();
        s.retarget_view(near, Vec2::new(50.0, 0.0), 10.0).unwrap();
        s.advance_tick().unwrap();
        s.remove_component(a, "hp").unwrap();
        s.advance_tick().unwrap();

        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(w.tick(), 2, "tick counter recovers");
        // pre-crash handles resolve against the recovered world
        assert!(w.has_view(wounded));
        assert!(w.has_view(near));
        assert_eq!(w.view_rows(wounded), w.view_query(wounded).run_scan(w));
        assert!(w.view_rows(wounded).is_empty(), "a lost its hp component");
        assert_eq!(w.view_rows(near), &[b], "retarget survived");
        assert!(
            w.view_changelog(wounded).is_empty() && w.view_changelog(near).is_empty(),
            "changelogs re-anchor at the recovery tick"
        );
        // the rebuilt index answers probes exactly
        let mut out = vec![];
        assert!(w.index_probe("hp", CmpOp::Ge, &Value::Float(0.0), &mut out));
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn dropped_catalog_entries_stay_dropped_after_recovery() {
        let mut s = fresh(1, "wal-catalog-drop");
        s.create_index("hp", IndexKind::Hash).unwrap();
        let v = s.register_view(Query::select()).unwrap();
        s.checkpoint().unwrap();
        s.drop_view(v).unwrap();
        s.drop_index("hp").unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 2);
        let w = recovered.world();
        assert!(!w.has_view(v), "dropped view stays dropped");
        assert!(w.index_on("hp").is_none(), "dropped index stays dropped");
        // the burned slot is not reused
        let cat = w.export_catalog();
        assert_eq!(cat.view_slots, 1);
        assert!(cat.views.is_empty());
    }

    #[test]
    fn catalog_in_snapshot_and_in_tail_compose() {
        use gamedb_content::CmpOp;
        let mut s = fresh(1, "wal-catalog-compose");
        let a = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(a, "hp", Value::Float(5.0)).unwrap();
        // index before the checkpoint (arrives via snapshot catalog)
        s.create_index("hp", IndexKind::Sorted).unwrap();
        s.checkpoint().unwrap();
        // view after the checkpoint (arrives via WAL replay)
        let v = s
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)))
            .unwrap();
        let b = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(b, "hp", Value::Float(1.0)).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(w.indexed_components().collect::<Vec<_>>(), vec![("hp", IndexKind::Sorted)]);
        assert_eq!(w.view_rows(v), &[a, b]);
        assert_eq!(w.view_rows(v), w.view_query(v).run_scan(w));
    }

    #[test]
    fn recovery_tolerates_a_corrupt_latest_snapshot() {
        use std::io::Write;
        let mut s = fresh(1, "wal-snap-fallback");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(e, "hp", Value::Float(3.0)).unwrap();
        s.checkpoint().unwrap();
        s.set(e, "hp", Value::Float(9.0)).unwrap();
        // scribble over snapshot 1: recovery must fall back to snapshot 0
        // and replay the full tail (whose mark-1 record is a no-op)
        let path = s.backend().dir().join("snapshot-1.db");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"scribble").unwrap();
        drop(f);
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(9.0));
    }

    #[test]
    fn stats_track_activity() {
        let mut s = fresh(2, "wal-stats");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(e, "hp", Value::Float(1.0)).unwrap();
        s.set(e, "hp", Value::Float(2.0)).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(s.stats.records, 3);
        assert!(s.stats.flushes >= 2);
        assert_eq!(s.stats.checkpoints, 1);
    }
}
