//! The durability tap: a WAL-backed store whose world is mutated
//! through the ordinary [`World`] write API — every mutation is captured
//! by the change stream and group-committed as one WAL frame per batch.
//!
//! Before the unified change pipeline this module mirrored the entire
//! `World` mutation API method-by-method, which meant any mutation that
//! *didn't* go through the mirror — a `ScriptEngine::tick`, an effect
//! batch, a subsystem holding `&mut World` — was silently not durable.
//! Now [`WalStore`] attaches a change-stream tap
//! ([`World::attach_tap`]): callers mutate [`WalStore::world_mut`]
//! however they like (individual writes, `World::apply_batch`, whole
//! scripted ticks) and [`WalStore::commit`] turns the pending stream
//! segment into **one** WAL frame ([`WalRecord::Batch`] when the
//! segment holds more than one op) and flushes per the group-commit
//! policy.
//!
//! The knob is `group_commit`: how many logged ops may sit in the OS
//! buffer before a durable flush. 1 = synchronous logging (lose nothing
//! committed, pay a flush per commit); N = group commit (lose at most
//! the unflushed ops, the standard database trade). Mutations not yet
//! [`WalStore::commit`]ted are lost by a crash outright — commit is the
//! durability boundary.

use gamedb_core::{CoreError, Query, TapId, ViewId, World};

use crate::backend::{Backend, BackendError};
use crate::snapshot;
use crate::wal::{decode_log, replay_after_checkpoint, WalRecord};

/// Recover a world from raw durable parts: `(seq, bytes)` snapshots in
/// ascending sequence order and the raw event log. This is the one
/// recovery algorithm — [`WalStore::crash_and_recover`] and the
/// crash-point sweep ([`crate::crashpoint`]) both run it:
///
/// 1. Decode the log into records, stopping cleanly at the first torn
///    or corrupt frame (a torn batch frame drops the whole batch —
///    batch commits are atomic).
/// 2. Take the newest snapshot that decodes; fall back to older ones if
///    a snapshot itself is unreadable.
/// 3. Replay the record tail after that snapshot's checkpoint mark —
///    nothing when the mark is absent (see
///    [`replay_after_checkpoint`]); catalog records rebuild indexes and
///    views along the way.
/// 4. Fold outstanding view changes and reset every changelog, so
///    subscribers re-anchor at the recovery tick instead of receiving
///    pre-crash churn twice.
///
/// Returns `(world, snapshot seq used, records replayed)`.
pub fn recover_from_parts<S: AsRef<[u8]>>(
    snapshots: &[(u64, S)],
    log: &[u8],
) -> Result<(World, u64, usize), StoreError> {
    let (records, _) = decode_log(log);
    let mut last_err: Option<StoreError> = None;
    for (seq, data) in snapshots.iter().rev() {
        let mut world = match snapshot::decode(data.as_ref()) {
            Ok((world, _tick)) => world,
            Err(e) => {
                last_err = Some(StoreError::Backend(BackendError::Io(
                    std::io::Error::other(e.to_string()),
                )));
                continue;
            }
        };
        let replayed = replay_after_checkpoint(&mut world, &records, *seq)?;
        world.refresh_views();
        world.reset_view_changelogs();
        return Ok((world, *seq, replayed));
    }
    Err(last_err.unwrap_or(StoreError::Backend(BackendError::NoSnapshot)))
}

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// WAL frames appended by commits (one per non-empty commit;
    /// checkpoint-mark frames are counted by `checkpoints`, not here).
    pub records: u64,
    /// Mutation ops captured across all committed frames.
    pub ops: u64,
    /// Durable flushes issued.
    pub flushes: u64,
    /// Snapshots written.
    pub checkpoints: u64,
}

/// A world whose mutations are redo-logged through a change-stream tap.
pub struct WalStore {
    /// The live world. Mutate it freely through [`WalStore::world_mut`];
    /// the tap captures every write path.
    world: World,
    tap: TapId,
    backend: Backend,
    snapshot_seq: u64,
    group_commit: usize,
    /// ops appended to the OS buffer since the last durable flush
    pending: usize,
    /// stats
    pub stats: WalStats,
}

impl WalStore {
    /// Wrap a world: attaches the durability tap and writes the base
    /// snapshot immediately.
    pub fn new(
        mut world: World,
        mut backend: Backend,
        group_commit: usize,
    ) -> Result<Self, BackendError> {
        let tap = world.attach_tap();
        backend.put_snapshot(0, snapshot::encode(&world));
        backend.append_log(&WalRecord::CheckpointMark { seq: 0 }.encode());
        backend.flush()?;
        Ok(WalStore {
            world,
            tap,
            backend,
            snapshot_seq: 0,
            group_commit: group_commit.max(1),
            pending: 0,
            stats: WalStats::default(),
        })
    }

    /// Read access to the world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access — the **only** mutation surface the store
    /// needs. Every write path (individual sets, `World::apply_batch`,
    /// effect application, scripted ticks, catalog operations) is
    /// captured by the attached tap; call [`WalStore::commit`] to make
    /// the accumulated mutations durable as one WAL frame. Mutations
    /// never committed are lost by a crash — that is the commit
    /// boundary, not a bypass.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Backend access (write-volume metrics).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable backend access — the crash-point sweep schedules byte-
    /// offset faults on the live backend through this.
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// Ops mutated since the last [`WalStore::commit`] (the exposure a
    /// crash right now would lose beyond the group-commit window).
    pub fn uncommitted(&self) -> usize {
        self.world.tap_pending(self.tap).len()
    }

    /// Group-commit the pending change-stream segment: every op
    /// captured since the last commit lands in **one** WAL frame (a
    /// [`WalRecord::Batch`] when there is more than one), and a durable
    /// flush is issued once `group_commit` ops have accumulated.
    /// Returns the number of ops committed (0 = nothing pending).
    pub fn commit(&mut self) -> Result<usize, StoreError> {
        if self.world.tap_evicted(self.tap) {
            // a retention limit on the store's world evicted the
            // durability tap: records were dropped unlogged, and every
            // later mutation is silently non-durable. That must never
            // look like success — the caller set a policy incompatible
            // with WAL durability (leave retention unset, or ack within
            // the window, for a world a WalStore owns).
            return Err(StoreError::DurabilityTapEvicted);
        }
        let mut ops: Vec<WalRecord> = self
            .world
            .tap_pending(self.tap)
            .iter()
            .map(WalRecord::from_change)
            .collect();
        if ops.is_empty() {
            return Ok(0);
        }
        self.world.ack_tap(self.tap);
        let n = ops.len();
        let record = if n == 1 {
            ops.pop().expect("len checked")
        } else {
            WalRecord::Batch { ops }
        };
        self.backend.append_log(&record.encode());
        self.stats.records += 1;
        self.stats.ops += n as u64;
        self.pending += n;
        if self.pending >= self.group_commit {
            self.backend.flush()?;
            self.stats.flushes += 1;
            self.pending = 0;
        }
        Ok(n)
    }

    /// The subscriber attach point: adopt the live view already
    /// maintaining `query` (first boot registered it, or recovery
    /// re-materialized it), or register — and commit — a fresh one.
    /// Subscribers that take a query (threshold watchers, auditors,
    /// interest bubbles) route their registration through this so the
    /// subscription itself is durable without registering duplicates
    /// after a restart.
    pub fn ensure_view(&mut self, query: Query) -> Result<ViewId, StoreError> {
        match self.world.find_view(&query) {
            Some(id) => Ok(id),
            None => {
                let id = self.world.register_view(query);
                self.commit()?;
                Ok(id)
            }
        }
    }

    /// Write a checkpoint: pending mutations are committed first, then
    /// snapshot + mark. The log logically truncates at the mark (replay
    /// skips everything before it).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.commit()?;
        self.snapshot_seq += 1;
        self.backend
            .put_snapshot(self.snapshot_seq, snapshot::encode(&self.world));
        self.backend
            .append_log(
                &WalRecord::CheckpointMark {
                    seq: self.snapshot_seq,
                }
                .encode(),
            );
        self.backend.flush()?;
        self.stats.checkpoints += 1;
        self.stats.flushes += 1;
        self.pending = 0;
        Ok(())
    }

    /// Compact the event log: drop every record before the last
    /// checkpoint mark (replay never looks at them) and atomically
    /// rewrite the log as just that tail. Returns (bytes before, bytes
    /// after). Without compaction the log grows without bound — this is
    /// the maintenance task a live MMO schedules alongside checkpoints.
    pub fn compact_log(&mut self) -> Result<(u64, u64), StoreError> {
        self.commit()?;
        let before = self.backend.log_len()?;
        let log = self.backend.read_log()?;
        let (records, _) = decode_log(&log);
        let cut = records
            .iter()
            .rposition(
                |r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == self.snapshot_seq),
            )
            .unwrap_or(0); // keep the mark itself: recovery anchors on it
        let mut tail = Vec::new();
        for r in &records[cut..] {
            tail.extend_from_slice(&r.encode());
        }
        self.backend.replace_log(&tail);
        self.backend.flush()?;
        self.stats.flushes += 1;
        Ok((before, self.backend.log_len()?))
    }

    /// Crash (unflushed writes — and uncommitted mutations — vanish)
    /// then recover: load the latest decodable durable snapshot —
    /// catalog included — and replay the durable log tail through
    /// [`recover_from_parts`]. The recovered world carries its indexes,
    /// its standing views at their original slots (pre-crash [`ViewId`]
    /// handles keep resolving), its lineage, and its tick counter; view
    /// changelogs restart empty at the recovery tick, and a fresh
    /// durability tap is attached. Returns the recovered store and the
    /// number of records replayed.
    pub fn crash_and_recover(mut self) -> Result<(WalStore, usize), StoreError> {
        self.backend.crash();
        let mut snapshots = Vec::new();
        for seq in self.backend.snapshot_seqs()? {
            snapshots.push((seq, self.backend.read_snapshot(seq)?));
        }
        let log = self.backend.read_log()?;
        let (mut world, seq, replayed) = recover_from_parts(&snapshots, &log)?;
        let tap = world.attach_tap();
        Ok((
            WalStore {
                world,
                tap,
                backend: self.backend,
                snapshot_seq: seq,
                group_commit: self.group_commit,
                pending: 0,
                stats: self.stats,
            },
            replayed,
        ))
    }
}

/// Errors from the WAL store.
#[derive(Debug)]
pub enum StoreError {
    Core(CoreError),
    Backend(BackendError),
    /// The world's tap-retention policy evicted the durability tap:
    /// mutations were dropped unlogged, so commits can no longer claim
    /// durability. Recover by checkpointing a fresh store; prevent by
    /// not setting a retention limit on a world a [`WalStore`] owns.
    DurabilityTapEvicted,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "world: {e}"),
            StoreError::Backend(e) => write!(f, "backend: {e}"),
            StoreError::DurabilityTapEvicted => write!(
                f,
                "durability tap evicted by the tap-retention policy: \
                 mutations were dropped unlogged"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<BackendError> for StoreError {
    fn from(e: BackendError) -> Self {
        StoreError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::temp_dir;
    use gamedb_content::{CmpOp, Value, ValueType};
    use gamedb_core::{Effect, EffectBuffer, IndexKind, TickExecutor, WriteBatch};
    use gamedb_spatial::Vec2;

    fn fresh(group_commit: usize, label: &str) -> WalStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        WalStore::new(w, backend, group_commit).unwrap()
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_recovery() {
        let mut s = fresh(1, "wal-compact");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        s.commit().unwrap();
        for i in 0..200 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        // post-checkpoint writes must survive compaction
        s.world_mut().set(e, "hp", Value::Float(777.0)).unwrap();
        s.commit().unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert!(after < before / 4, "before={before} after={after}");
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(777.0));
        assert_eq!(replayed, 1, "only the post-checkpoint record replays");
    }

    /// A retention policy that evicts the durability tap must surface
    /// as a loud commit error, never as silent data loss.
    #[test]
    fn evicted_durability_tap_fails_commit_loudly() {
        let mut s = fresh(1, "wal-evicted");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        // a policy incompatible with WAL durability, set on the store's
        // own world, with far more churn than the window holds
        s.world_mut().set_tap_retention(Some(8));
        for i in 0..64 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        assert!(matches!(
            s.commit(),
            Err(StoreError::DurabilityTapEvicted)
        ));
        // checkpoint commits first, so it refuses too
        assert!(s.checkpoint().is_err());
    }

    #[test]
    fn compaction_without_checkpoint_is_safe() {
        let mut s = fresh(1, "wal-compact2");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        s.world_mut().set(e, "hp", Value::Float(5.0)).unwrap();
        s.commit().unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert_eq!(before, after, "nothing before the base mark to drop");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(5.0));
    }

    #[test]
    fn repeated_compaction_is_idempotent() {
        let mut s = fresh(1, "wal-compact3");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        for i in 0..50 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        let (_, first) = s.compact_log().unwrap();
        let (before2, second) = s.compact_log().unwrap();
        assert_eq!(first, before2);
        assert_eq!(first, second);
    }

    #[test]
    fn synchronous_logging_loses_nothing() {
        let mut s = fresh(1, "wal-sync");
        let e = s.world_mut().spawn_at(Vec2::new(1.0, 2.0));
        s.commit().unwrap();
        s.world_mut().set(e, "hp", Value::Float(33.0)).unwrap();
        s.commit().unwrap();
        s.world_mut().set_pos(e, Vec2::new(5.0, 5.0)).unwrap();
        s.commit().unwrap();
        let live_rows = s.world().rows();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live_rows);
        assert_eq!(replayed, 3, "one frame per commit");
    }

    #[test]
    fn uncommitted_mutations_are_lost_committed_ones_are_not() {
        let mut s = fresh(1, "wal-uncommitted");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        assert_eq!(s.uncommitted(), 3, "spawn + pos + hp captured");
        s.commit().unwrap();
        assert_eq!(s.uncommitted(), 0);
        // mutated but never committed: the crash eats it
        s.world_mut().set(e, "hp", Value::Float(99.0)).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(1.0));
    }

    #[test]
    fn group_commit_bounds_loss() {
        let mut s = fresh(10, "wal-group");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap(); // 2 ops buffered (spawn + pos)
        // 8 more single-op commits => exactly one flush of 10 fires
        for i in 0..8 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        // 3 committed-but-unflushed frames follow
        for i in 100..103 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 9, "only the flushed group survives");
        assert_eq!(
            recovered.world().get_f32(e, "hp"),
            Some(7.0),
            "last durable write wins; the 3 unflushed are lost"
        );
    }

    #[test]
    fn batch_commit_is_one_frame_and_atomic() {
        let mut s = fresh(1, "wal-batchframe");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        let frames_before = s.stats.records;
        // a multi-op mutation burst commits as one frame
        let mut batch = WriteBatch::new();
        for i in 0..10 {
            batch.set(e, "hp", Value::Float(i as f32));
        }
        s.world_mut().apply_batch(batch).unwrap();
        let n = s.commit().unwrap();
        assert_eq!(n, 10);
        assert_eq!(s.stats.records, frames_before + 1, "one frame per batch");
        // a torn batch frame drops the whole batch, not half of it
        let log = s.backend().read_log().unwrap();
        let (full, _) = decode_log(&log);
        let (torn, _) = decode_log(&log[..log.len() - 1]);
        assert_eq!(torn.len(), full.len() - 1, "batch frames are atomic");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(9.0));
    }

    /// The durability hole the pipeline closes: an effect batch applied
    /// straight to `world_mut()` — the path the old mirrored API could
    /// not see — survives crash and recovery bit-identically.
    #[test]
    fn effect_batches_through_world_mut_are_durable() {
        let mut s = fresh(1, "wal-effects");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(1.0, 0.0));
        s.world_mut().set(a, "hp", Value::Float(50.0)).unwrap();
        s.world_mut().set(b, "hp", Value::Float(50.0)).unwrap();
        s.commit().unwrap();

        let mut buf = EffectBuffer::new();
        buf.push(a, "hp", Effect::Add(-10.0));
        buf.push(b, "hp", Effect::Add(5.0));
        buf.push(b, "pos", Effect::AddVec2(2.0, 0.0));
        buf.apply(s.world_mut()).unwrap();
        s.commit().unwrap();

        let live = s.world().rows();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live);
        assert_eq!(recovered.world().get_f32(a, "hp"), Some(40.0));
    }

    /// A whole executor tick against the store's world — systems,
    /// merged effects, tick bump — is durable with one commit.
    #[test]
    fn executor_ticks_through_world_mut_are_durable() {
        let mut s = fresh(1, "wal-tick");
        for i in 0..4 {
            let e = s.world_mut().spawn_at(Vec2::new(i as f32, 0.0));
            s.world_mut().set(e, "hp", Value::Float(100.0)).unwrap();
        }
        s.commit().unwrap();
        let drain: &gamedb_core::System<'_> = &|id, _w, buf: &mut EffectBuffer| {
            buf.push(id, "hp", Effect::Add(-7.0));
        };
        for _ in 0..3 {
            TickExecutor::sequential()
                .run_tick(s.world_mut(), &[drain])
                .unwrap();
            s.commit().unwrap();
        }
        let live = s.world().rows();
        let tick = s.world().tick();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live);
        assert_eq!(recovered.world().tick(), tick, "tick counter recovers");
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let mut s = fresh(1, "wal-cp");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        for i in 0..50 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        s.world_mut().set(e, "hp", Value::Float(999.0)).unwrap();
        s.commit().unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(999.0));
    }

    #[test]
    fn checkpoint_commits_pending_mutations_first() {
        let mut s = fresh(1, "wal-cp-pending");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(41.0)).unwrap();
        // no explicit commit: checkpoint must not strand these
        s.checkpoint().unwrap();
        assert_eq!(s.uncommitted(), 0);
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(41.0));
    }

    #[test]
    fn despawn_survives_recovery() {
        let mut s = fresh(1, "wal-despawn");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(1.0, 0.0));
        s.world_mut().despawn(a);
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(!recovered.world().is_live(a));
        assert!(recovered.world().is_live(b));
        assert_eq!(recovered.world().len(), 1);
    }

    #[test]
    fn unpositioned_spawns_are_durable() {
        // spawn() (no position) was unloggable under the mirrored API
        let mut s = fresh(1, "wal-flag");
        let flag = s.world_mut().spawn();
        s.world_mut()
            .define_component("armed", ValueType::Bool)
            .unwrap();
        s.world_mut().set(flag, "armed", Value::Bool(true)).unwrap();
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(recovered.world().is_live(flag));
        assert_eq!(recovered.world().pos(flag), None);
        assert_eq!(recovered.world().get_bool(flag, "armed"), Some(true));
    }

    #[test]
    fn recovery_then_continue_then_recover_again() {
        let mut s = fresh(1, "wal-twice");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        let (mut s, _) = s.crash_and_recover().unwrap();
        s.world_mut().set(e, "hp", Value::Float(2.0)).unwrap();
        let f = s.world_mut().spawn_at(Vec2::new(9.0, 9.0));
        s.commit().unwrap();
        let (s, _) = s.crash_and_recover().unwrap();
        assert_eq!(s.world().get_f32(e, "hp"), Some(2.0));
        assert!(s.world().is_live(f));
    }

    #[test]
    fn catalog_operations_survive_recovery() {
        let mut s = fresh(1, "wal-catalog");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(50.0, 0.0));
        s.world_mut().set(a, "hp", Value::Float(5.0)).unwrap();
        s.world_mut().set(b, "hp", Value::Float(80.0)).unwrap();
        s.world_mut().create_index("hp", IndexKind::Sorted).unwrap();
        let wounded = s
            .world_mut()
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let near = s
            .world_mut()
            .register_view(Query::select().within(Vec2::ZERO, 10.0));
        s.world_mut()
            .retarget_view(near, Vec2::new(50.0, 0.0), 10.0);
        let t = s.world().tick();
        s.world_mut().advance_tick_to(t + 1);
        s.world_mut().remove_component(a, "hp").unwrap();
        let t = s.world().tick();
        s.world_mut().advance_tick_to(t + 1);
        s.commit().unwrap();

        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(w.tick(), 2, "tick counter recovers");
        // pre-crash handles resolve against the recovered world
        assert!(w.has_view(wounded));
        assert!(w.has_view(near));
        assert_eq!(w.view_rows(wounded), w.view_query(wounded).run_scan(w));
        assert!(w.view_rows(wounded).is_empty(), "a lost its hp component");
        assert_eq!(w.view_rows(near), &[b], "retarget survived");
        assert!(
            w.view_changelog(wounded).is_empty() && w.view_changelog(near).is_empty(),
            "changelogs re-anchor at the recovery tick"
        );
        // the rebuilt index answers probes exactly
        let mut out = vec![];
        assert!(w.index_probe("hp", CmpOp::Ge, &Value::Float(0.0), &mut out));
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn dropped_catalog_entries_stay_dropped_after_recovery() {
        let mut s = fresh(1, "wal-catalog-drop");
        s.world_mut().create_index("hp", IndexKind::Hash).unwrap();
        let v = s.world_mut().register_view(Query::select());
        s.checkpoint().unwrap();
        s.world_mut().drop_view(v);
        s.world_mut().drop_index("hp");
        s.commit().unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "both drops share one batch frame");
        let w = recovered.world();
        assert!(!w.has_view(v), "dropped view stays dropped");
        assert!(w.index_on("hp").is_none(), "dropped index stays dropped");
        // the burned slot is not reused
        let cat = w.export_catalog();
        assert_eq!(cat.view_slots, 1);
        assert!(cat.views.is_empty());
    }

    #[test]
    fn catalog_in_snapshot_and_in_tail_compose() {
        let mut s = fresh(1, "wal-catalog-compose");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(a, "hp", Value::Float(5.0)).unwrap();
        // index before the checkpoint (arrives via snapshot catalog)
        s.world_mut().create_index("hp", IndexKind::Sorted).unwrap();
        s.checkpoint().unwrap();
        // view after the checkpoint (arrives via WAL replay)
        let v = s
            .world_mut()
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let b = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(b, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(
            w.indexed_components().collect::<Vec<_>>(),
            vec![("hp", IndexKind::Sorted)]
        );
        assert_eq!(w.view_rows(v), &[a, b]);
        assert_eq!(w.view_rows(v), w.view_query(v).run_scan(w));
    }

    #[test]
    fn recovery_tolerates_a_corrupt_latest_snapshot() {
        use std::io::Write;
        let mut s = fresh(1, "wal-snap-fallback");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(3.0)).unwrap();
        s.checkpoint().unwrap();
        s.world_mut().set(e, "hp", Value::Float(9.0)).unwrap();
        s.commit().unwrap();
        // scribble over snapshot 1: recovery must fall back to snapshot 0
        // and replay the full tail (whose mark-1 record is a no-op)
        let path = s.backend().dir().join("snapshot-1.db");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"scribble").unwrap();
        drop(f);
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(9.0));
    }

    #[test]
    fn stats_track_activity() {
        let mut s = fresh(2, "wal-stats");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap(); // 1 frame, 2 ops
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        s.world_mut().set(e, "hp", Value::Float(2.0)).unwrap();
        s.commit().unwrap();
        s.checkpoint().unwrap();
        assert_eq!(s.stats.records, 3);
        assert_eq!(s.stats.ops, 4);
        assert!(s.stats.flushes >= 2);
        assert_eq!(s.stats.checkpoints, 1);
    }
}
