//! A write-through store: every mutation is WAL-logged, recovery replays
//! the tail — the zero-loss alternative the checkpoint experiment (E9)
//! prices against snapshot-only policies.
//!
//! The knob is `group_commit`: how many records may sit in the OS buffer
//! before a durable flush. 1 = synchronous logging (lose nothing, pay a
//! flush per mutation); N = group commit (lose at most N-1 records, the
//! standard database trade).

use gamedb_content::Value;
use gamedb_core::{CoreError, EntityId, World};
use gamedb_spatial::Vec2;

use crate::backend::{Backend, BackendError};
use crate::snapshot;
use crate::wal::{decode_log, replay_after_checkpoint, WalRecord};

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// Records logged.
    pub records: u64,
    /// Durable flushes issued.
    pub flushes: u64,
    /// Snapshots written.
    pub checkpoints: u64,
}

/// A world whose mutations are all redo-logged.
pub struct WalStore {
    /// The live world. Mutate only through the store's methods — direct
    /// mutation bypasses the log and will not survive a crash.
    world: World,
    backend: Backend,
    snapshot_seq: u64,
    group_commit: usize,
    pending: usize,
    /// stats
    pub stats: WalStats,
}

impl WalStore {
    /// Wrap a world. Writes the base snapshot immediately.
    pub fn new(
        world: World,
        mut backend: Backend,
        group_commit: usize,
    ) -> Result<Self, BackendError> {
        backend.put_snapshot(0, snapshot::encode(&world));
        backend.append_log(&WalRecord::CheckpointMark { seq: 0 }.encode());
        backend.flush()?;
        Ok(WalStore {
            world,
            backend,
            snapshot_seq: 0,
            group_commit: group_commit.max(1),
            pending: 0,
            stats: WalStats::default(),
        })
    }

    /// Read access to the world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Backend access (write-volume metrics).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    fn log(&mut self, record: WalRecord) -> Result<(), BackendError> {
        self.backend.append_log(&record.encode());
        self.stats.records += 1;
        self.pending += 1;
        if self.pending >= self.group_commit {
            self.backend.flush()?;
            self.stats.flushes += 1;
            self.pending = 0;
        }
        Ok(())
    }

    /// Logged component write.
    pub fn set(
        &mut self,
        id: EntityId,
        component: &str,
        value: Value,
    ) -> Result<(), StoreError> {
        self.world.set(id, component, value.clone())?;
        self.log(WalRecord::Set {
            entity: id,
            component: component.to_string(),
            value,
        })?;
        Ok(())
    }

    /// Logged position write.
    pub fn set_pos(&mut self, id: EntityId, pos: Vec2) -> Result<(), StoreError> {
        self.world.set_pos(id, pos)?;
        self.log(WalRecord::Set {
            entity: id,
            component: gamedb_core::POS.to_string(),
            value: Value::Vec2(pos.x, pos.y),
        })?;
        Ok(())
    }

    /// Logged spawn.
    pub fn spawn_at(&mut self, pos: Vec2) -> Result<EntityId, StoreError> {
        let id = self.world.spawn_at(pos);
        self.log(WalRecord::Spawn {
            entity: id,
            x: pos.x,
            y: pos.y,
        })?;
        Ok(id)
    }

    /// Logged despawn.
    pub fn despawn(&mut self, id: EntityId) -> Result<bool, StoreError> {
        let was_live = self.world.despawn(id);
        if was_live {
            self.log(WalRecord::Despawn { entity: id })?;
        }
        Ok(was_live)
    }

    /// Write a checkpoint: snapshot + mark. The log logically truncates
    /// at the mark (replay skips everything before it).
    pub fn checkpoint(&mut self) -> Result<(), BackendError> {
        self.snapshot_seq += 1;
        self.backend
            .put_snapshot(self.snapshot_seq, snapshot::encode(&self.world));
        self.backend
            .append_log(&WalRecord::CheckpointMark {
                seq: self.snapshot_seq,
            }
            .encode());
        self.backend.flush()?;
        self.stats.checkpoints += 1;
        self.stats.flushes += 1;
        self.pending = 0;
        Ok(())
    }

    /// Compact the event log: drop every record before the last
    /// checkpoint mark (replay never looks at them) and atomically
    /// rewrite the log as just that tail. Returns (bytes before, bytes
    /// after). Without compaction the log grows without bound — this is
    /// the maintenance task a live MMO schedules alongside checkpoints.
    pub fn compact_log(&mut self) -> Result<(u64, u64), StoreError> {
        let before = self.backend.log_len()?;
        let log = self.backend.read_log()?;
        let (records, _) = decode_log(&log);
        let cut = records
            .iter()
            .rposition(
                |r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == self.snapshot_seq),
            )
            .unwrap_or(0); // keep the mark itself: recovery anchors on it
        let mut tail = Vec::new();
        for r in &records[cut..] {
            tail.extend_from_slice(&r.encode());
        }
        self.backend.replace_log(&tail);
        self.backend.flush()?;
        self.stats.flushes += 1;
        Ok((before, self.backend.log_len()?))
    }

    /// Crash (unflushed writes vanish) then recover: load the latest
    /// durable snapshot and replay the durable log tail. Returns the
    /// recovered store and the number of records replayed.
    pub fn crash_and_recover(mut self) -> Result<(WalStore, usize), StoreError> {
        self.backend.crash();
        let (seq, snap) = self.backend.latest_snapshot()?;
        let (mut world, _) = snapshot::decode(&snap)
            .map_err(|e| StoreError::Backend(BackendError::Io(std::io::Error::other(e.to_string()))))?;
        let log = self.backend.read_log()?;
        let (records, _) = decode_log(&log);
        let replayed = replay_after_checkpoint(&mut world, &records, seq)?;
        Ok((
            WalStore {
                world,
                backend: self.backend,
                snapshot_seq: seq,
                group_commit: self.group_commit,
                pending: 0,
                stats: self.stats,
            },
            replayed,
        ))
    }
}

/// Errors from the WAL store.
#[derive(Debug)]
pub enum StoreError {
    Core(CoreError),
    Backend(BackendError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "world: {e}"),
            StoreError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<BackendError> for StoreError {
    fn from(e: BackendError) -> Self {
        StoreError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::temp_dir;
    use gamedb_content::ValueType;

    fn fresh(group_commit: usize, label: &str) -> WalStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        WalStore::new(w, backend, group_commit).unwrap()
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_recovery() {
        let mut s = fresh(1, "wal-compact");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        for i in 0..200 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        // post-checkpoint writes must survive compaction
        s.set(e, "hp", Value::Float(777.0)).unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert!(after < before / 4, "before={before} after={after}");
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(777.0));
        assert_eq!(replayed, 1, "only the post-checkpoint record replays");
    }

    #[test]
    fn compaction_without_checkpoint_is_safe() {
        let mut s = fresh(1, "wal-compact2");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        s.set(e, "hp", Value::Float(5.0)).unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert_eq!(before, after, "nothing before the base mark to drop");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(5.0));
    }

    #[test]
    fn repeated_compaction_is_idempotent() {
        let mut s = fresh(1, "wal-compact3");
        let e = s.spawn_at(Vec2::new(0.0, 0.0)).unwrap();
        for i in 0..50 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        let (_, first) = s.compact_log().unwrap();
        let (before2, second) = s.compact_log().unwrap();
        assert_eq!(first, before2);
        assert_eq!(first, second);
    }

    #[test]
    fn synchronous_logging_loses_nothing() {
        let mut s = fresh(1, "wal-sync");
        let e = s.spawn_at(Vec2::new(1.0, 2.0)).unwrap();
        s.set(e, "hp", Value::Float(33.0)).unwrap();
        s.set_pos(e, Vec2::new(5.0, 5.0)).unwrap();
        let live_rows = s.world().rows();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live_rows);
        assert_eq!(replayed, 3);
    }

    #[test]
    fn group_commit_bounds_loss() {
        let mut s = fresh(10, "wal-group");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        // 9 more records => exactly one flush of 10 fires
        for i in 0..9 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        // 3 unflushed records follow
        for i in 100..103 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 10, "only the flushed group survives");
        assert_eq!(
            recovered.world().get_f32(e, "hp"),
            Some(8.0),
            "last durable write wins; the 3 unflushed are lost"
        );
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let mut s = fresh(1, "wal-cp");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        for i in 0..50 {
            s.set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        s.checkpoint().unwrap();
        s.set(e, "hp", Value::Float(999.0)).unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(999.0));
    }

    #[test]
    fn despawn_survives_recovery() {
        let mut s = fresh(1, "wal-despawn");
        let a = s.spawn_at(Vec2::ZERO).unwrap();
        let b = s.spawn_at(Vec2::new(1.0, 0.0)).unwrap();
        s.despawn(a).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(!recovered.world().is_live(a));
        assert!(recovered.world().is_live(b));
        assert_eq!(recovered.world().len(), 1);
    }

    #[test]
    fn recovery_then_continue_then_recover_again() {
        let mut s = fresh(1, "wal-twice");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(e, "hp", Value::Float(1.0)).unwrap();
        let (mut s, _) = s.crash_and_recover().unwrap();
        s.set(e, "hp", Value::Float(2.0)).unwrap();
        let f = s.spawn_at(Vec2::new(9.0, 9.0)).unwrap();
        let (s, _) = s.crash_and_recover().unwrap();
        assert_eq!(s.world().get_f32(e, "hp"), Some(2.0));
        assert!(s.world().is_live(f));
    }

    #[test]
    fn stats_track_activity() {
        let mut s = fresh(2, "wal-stats");
        let e = s.spawn_at(Vec2::ZERO).unwrap();
        s.set(e, "hp", Value::Float(1.0)).unwrap();
        s.set(e, "hp", Value::Float(2.0)).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(s.stats.records, 3);
        assert!(s.stats.flushes >= 2);
        assert_eq!(s.stats.checkpoints, 1);
    }
}
